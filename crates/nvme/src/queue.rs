//! Lock-free NVMe queue rings.
//!
//! Each queue is a lockless single-producer/single-consumer ring buffer, as
//! in the NVMe specification ("each queue is a lockless producer-consumer
//! ring buffer", §II-A): the producer owns the tail doorbell, the consumer
//! owns the head doorbell, and no synchronization beyond one release store
//! and one acquire load per operation is needed. Completion queues
//! additionally carry the spec's *phase tag*: a bit that flips on every ring
//! wrap, letting a poller detect new entries without reading the doorbell.
//!
//! The same ring type backs every queue in the system: guest-visible
//! VSQ/VCQ, device-facing HSQ/HCQ, and the notify-path NSQ/NCQ mapped into
//! UIF address space.

use crate::cmd::SubmissionEntry;
use crate::status::CompletionEntry;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Pads a value out to its own cache line (128 bytes covers the spatial
/// prefetcher pairing lines on modern x86) so the head and tail doorbells
/// never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line-aligned padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

struct Ring<T> {
    entries: Box<[UnsafeCell<T>]>,
    /// Consumer index (free-running); the "head doorbell".
    head: CachePadded<AtomicU32>,
    /// Producer index (free-running); the "tail doorbell".
    tail: CachePadded<AtomicU32>,
    mask: u32,
}

// SAFETY: the ring is SPSC by construction — the producer handle is the only
// writer of `tail` and of entries in `[head, tail)`'s complement, and the
// consumer handle is the only writer of `head`. Entry slots are handed off
// with release/acquire pairs on the indices, so a slot is never accessed
// concurrently from both sides.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T: Default + Copy> Ring<T> {
    fn new(depth: usize) -> Arc<Self> {
        assert!(
            depth.is_power_of_two() && (2..=crate::MAX_QUEUE_ENTRIES).contains(&depth),
            "queue depth must be a power of two in [2, 64K]"
        );
        let entries: Vec<UnsafeCell<T>> =
            (0..depth).map(|_| UnsafeCell::new(T::default())).collect();
        Arc::new(Ring {
            entries: entries.into_boxed_slice(),
            head: CachePadded::new(AtomicU32::new(0)),
            tail: CachePadded::new(AtomicU32::new(0)),
            mask: (depth - 1) as u32,
        })
    }

    fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) as usize
    }

    /// Producer side: push one entry; `Err` when full.
    fn push(&self, value: T) -> Result<u32, T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) as usize == self.capacity() {
            return Err(value);
        }
        // SAFETY: slot `tail` is not visible to the consumer until the
        // release store below, and only this (single) producer writes it.
        unsafe {
            *self.entries[(tail & self.mask) as usize].get() = value;
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(tail)
    }

    /// Consumer side: pop one entry with its ring index; `None` when empty.
    fn pop(&self) -> Option<(T, u32)> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the acquire load of `tail` synchronizes with the
        // producer's release store, making slot `head` readable; only this
        // (single) consumer reads-and-releases slots.
        let value = unsafe { *self.entries[(head & self.mask) as usize].get() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some((value, head))
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// Submission queues
// ---------------------------------------------------------------------------

/// Creates a submission queue of `depth` entries, returning its two ends.
pub struct SqPair;

impl SqPair {
    /// Builds the producer/consumer handle pair for a new SQ. Returns the
    /// two ends rather than `Self` by design, like a channel constructor.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(depth: usize) -> (SqProducer, SqConsumer) {
        let ring = Ring::<SubmissionEntry>::new(depth);
        (SqProducer { ring: ring.clone() }, SqConsumer { ring })
    }
}

/// The host-side (or guest-side) writer of a submission queue.
pub struct SqProducer {
    ring: Arc<Ring<SubmissionEntry>>,
}

impl SqProducer {
    /// Submits a command; `Err(cmd)` when the queue is full.
    pub fn push(&self, cmd: SubmissionEntry) -> Result<(), SubmissionEntry> {
        self.ring.push(cmd).map(|_| ())
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no commands are queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Queue capacity in entries.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

/// The consumer end of a submission queue (the router for VSQs, the device
/// for HSQs, a UIF for NSQs).
pub struct SqConsumer {
    ring: Arc<Ring<SubmissionEntry>>,
}

impl SqConsumer {
    /// Takes the next command, with the SQ head index it occupied.
    pub fn pop(&self) -> Option<(SubmissionEntry, u16)> {
        self.ring.pop().map(|(e, idx)| (e, idx as u16))
    }

    /// True when no commands are waiting — the router's idle check.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }
}

// ---------------------------------------------------------------------------
// Completion queues
// ---------------------------------------------------------------------------

/// Creates a completion queue of `depth` entries, returning its two ends.
pub struct CqPair;

impl CqPair {
    /// Builds the producer/consumer handle pair for a new CQ. Returns the
    /// two ends rather than `Self` by design, like a channel constructor.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(depth: usize) -> (CqProducer, CqConsumer) {
        let ring = Ring::<CompletionEntry>::new(depth);
        (CqProducer { ring: ring.clone() }, CqConsumer { ring })
    }
}

/// The completion-posting end (device, router, or UIF).
pub struct CqProducer {
    ring: Arc<Ring<CompletionEntry>>,
}

impl CqProducer {
    /// Posts a completion, stamping the spec's phase tag from the ring
    /// position; `Err(entry)` when the CQ is full.
    pub fn push(&self, mut entry: CompletionEntry) -> Result<(), CompletionEntry> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        // Phase starts at 1 on the first pass and flips every wrap.
        let pass = tail / (self.ring.capacity() as u32);
        entry.set_phase(pass.is_multiple_of(2));
        self.ring.push(entry).map(|_| ()).map_err(|mut e| {
            e.set_phase(false);
            e
        })
    }

    /// Entries currently posted but not yet reaped.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when every posted completion has been reaped.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// The completion-reaping end (guest driver for VCQs, router for HCQ/NCQ).
pub struct CqConsumer {
    ring: Arc<Ring<CompletionEntry>>,
}

impl CqConsumer {
    /// Reaps the next completion, if any.
    pub fn pop(&self) -> Option<CompletionEntry> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let expected_phase = (head / (self.ring.capacity() as u32)).is_multiple_of(2);
        let (entry, _) = self.ring.pop()?;
        // Protocol invariant: the posted phase must match what a pure
        // phase-polling consumer would expect at this position.
        debug_assert_eq!(
            entry.phase(),
            expected_phase,
            "completion phase tag out of sync"
        );
        Some(entry)
    }

    /// True when no completions are pending — used by pollers.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Entries currently pending.
    pub fn len(&self) -> usize {
        self.ring.len()
    }
}

/// A submission/completion queue pair as created by the admin
/// `CreateSq`/`CreateCq` commands — the unit NVMetro shadows per guest queue.
pub struct QueuePair {
    /// Producer end of the SQ (kept by the submitter).
    pub sq_prod: SqProducer,
    /// Consumer end of the SQ (kept by the servicer).
    pub sq_cons: SqConsumer,
    /// Producer end of the CQ (kept by the servicer).
    pub cq_prod: CqProducer,
    /// Consumer end of the CQ (kept by the submitter).
    pub cq_cons: CqConsumer,
}

impl QueuePair {
    /// Creates a queue pair with SQ and CQ of the same depth.
    pub fn new(depth: usize) -> Self {
        let (sq_prod, sq_cons) = SqPair::new(depth);
        let (cq_prod, cq_cons) = CqPair::new(depth);
        QueuePair {
            sq_prod,
            sq_cons,
            cq_prod,
            cq_cons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::Status;

    #[test]
    fn sq_push_pop_round_trip() {
        let (prod, cons) = SqPair::new(8);
        let cmd = SubmissionEntry::read(1, 100, 4, 0x1000, 0);
        prod.push(cmd).unwrap();
        assert_eq!(prod.len(), 1);
        let (got, idx) = cons.pop().unwrap();
        assert_eq!(got, cmd);
        assert_eq!(idx, 0);
        assert!(cons.pop().is_none());
    }

    #[test]
    fn sq_rejects_when_full() {
        let (prod, cons) = SqPair::new(4);
        for i in 0..4 {
            prod.push(SubmissionEntry::read(1, i, 1, 0, 0)).unwrap();
        }
        assert!(prod.push(SubmissionEntry::flush(1)).is_err());
        cons.pop().unwrap();
        // One slot freed: push succeeds again.
        prod.push(SubmissionEntry::flush(1)).unwrap();
    }

    #[test]
    fn fifo_order_across_wraps() {
        let (prod, cons) = SqPair::new(4);
        let mut expect = 0u64;
        for round in 0..10u64 {
            for i in 0..3 {
                prod.push(SubmissionEntry::read(1, round * 3 + i, 1, 0, 0))
                    .unwrap();
            }
            for _ in 0..3 {
                let (e, _) = cons.pop().unwrap();
                assert_eq!(e.slba(), expect);
                expect += 1;
            }
        }
    }

    #[test]
    fn cq_phase_flips_on_wrap() {
        let (prod, cons) = CqPair::new(4);
        // First pass: phase 1.
        for i in 0..4 {
            prod.push(CompletionEntry::new(i, Status::SUCCESS)).unwrap();
        }
        for _ in 0..4 {
            assert!(cons.pop().unwrap().phase());
        }
        // Second pass: phase 0.
        for i in 0..4 {
            prod.push(CompletionEntry::new(i, Status::SUCCESS)).unwrap();
        }
        for _ in 0..4 {
            assert!(!cons.pop().unwrap().phase());
        }
        // Third pass: phase 1 again.
        prod.push(CompletionEntry::new(0, Status::SUCCESS)).unwrap();
        assert!(cons.pop().unwrap().phase());
    }

    #[test]
    fn cq_preserves_status() {
        let (prod, cons) = CqPair::new(8);
        prod.push(CompletionEntry::new(3, Status::LBA_OUT_OF_RANGE))
            .unwrap();
        let e = cons.pop().unwrap();
        assert_eq!(e.cid, 3);
        assert_eq!(e.status(), Status::LBA_OUT_OF_RANGE);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_depth_panics() {
        let _ = SqPair::new(3);
    }

    #[test]
    fn cross_thread_spsc_stress() {
        let (prod, cons) = SqPair::new(64);
        const N: u64 = 20_000;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            while sent < N {
                let cmd = SubmissionEntry::read(1, sent, 1, 0, 0);
                if prod.push(cmd).is_ok() {
                    sent += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some((e, _)) = cons.pop() {
                assert_eq!(e.slba(), expect, "order violated");
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn cross_thread_cq_stress_keeps_phase_consistent() {
        let (prod, cons) = CqPair::new(32);
        const N: u32 = 20_000;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u32;
            while sent < N {
                let e = CompletionEntry::new((sent % 65_536) as u16, Status::SUCCESS);
                if prod.push(e).is_ok() {
                    sent += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        let mut got = 0u32;
        while got < N {
            if let Some(e) = cons.pop() {
                assert_eq!(e.cid as u32, got % 65_536);
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn queue_pair_bundles_working_ends() {
        let qp = QueuePair::new(16);
        qp.sq_prod.push(SubmissionEntry::flush(1)).unwrap();
        let (cmd, _) = qp.sq_cons.pop().unwrap();
        qp.cq_prod
            .push(CompletionEntry::new(cmd.cid, Status::SUCCESS))
            .unwrap();
        assert_eq!(qp.cq_cons.pop().unwrap().status(), Status::SUCCESS);
    }
}
