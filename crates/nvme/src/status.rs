//! Completion entries and status codes.

/// Status code type (CQE DW3 bits 27:25 in the spec; bits 11:9 here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StatusCodeType {
    /// Generic command status.
    Generic = 0,
    /// Command-specific status.
    CommandSpecific = 1,
    /// Media and data integrity errors.
    MediaError = 2,
    /// Path-related status (used by our router for routing failures).
    Path = 3,
}

/// An NVMe status value: status code type + status code, packed the way it
/// travels in the completion entry's status field (phase bit excluded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// Successful completion.
    pub const SUCCESS: Status = Status(0);
    /// Generic: invalid opcode.
    pub const INVALID_OPCODE: Status = Status::new(StatusCodeType::Generic, 0x01);
    /// Generic: invalid field in command.
    pub const INVALID_FIELD: Status = Status::new(StatusCodeType::Generic, 0x02);
    /// Generic: internal device error.
    pub const INTERNAL: Status = Status::new(StatusCodeType::Generic, 0x06);
    /// Generic: command abort requested.
    pub const ABORTED: Status = Status::new(StatusCodeType::Generic, 0x07);
    /// Generic: LBA out of range.
    pub const LBA_OUT_OF_RANGE: Status = Status::new(StatusCodeType::Generic, 0x80);
    /// Generic: capacity exceeded.
    pub const CAPACITY_EXCEEDED: Status = Status::new(StatusCodeType::Generic, 0x81);
    /// Media: unrecovered read error.
    pub const UNRECOVERED_READ: Status = Status::new(StatusCodeType::MediaError, 0x81);
    /// Media: write fault.
    pub const WRITE_FAULT: Status = Status::new(StatusCodeType::MediaError, 0x80);
    /// Media: end-to-end guard check error (detected payload corruption).
    pub const GUARD_CHECK: Status = Status::new(StatusCodeType::MediaError, 0x82);
    /// Path: internal path error (router could not reach a target).
    pub const PATH_ERROR: Status = Status::new(StatusCodeType::Path, 0x00);

    /// Do Not Retry. The spec carries DNR in bit 14 of the 15-bit status
    /// field; the field occupies bits 15:1 here (bit 0 is the phase bit),
    /// so DNR lands in bit 15.
    pub const DNR: u16 = 1 << 15;

    /// Packs a status from its type and code.
    pub const fn new(sct: StatusCodeType, sc: u8) -> Status {
        Status(((sct as u16) << 9) | ((sc as u16) << 1))
    }

    /// Status code type.
    pub fn sct(self) -> StatusCodeType {
        match (self.0 >> 9) & 0x7 {
            0 => StatusCodeType::Generic,
            1 => StatusCodeType::CommandSpecific,
            2 => StatusCodeType::MediaError,
            _ => StatusCodeType::Path,
        }
    }

    /// Status code within the type.
    pub fn sc(self) -> u8 {
        ((self.0 >> 1) & 0xFF) as u8
    }

    /// True when the command failed.
    pub fn is_error(self) -> bool {
        self.0 != 0
    }

    /// Whether the Do Not Retry bit is set.
    pub fn dnr(self) -> bool {
        self.0 & Self::DNR != 0
    }

    /// This status with the Do Not Retry bit set.
    pub fn with_dnr(self) -> Status {
        Status(self.0 | Self::DNR)
    }

    /// This status with the Do Not Retry bit cleared (classification of
    /// the underlying code).
    pub fn without_dnr(self) -> Status {
        Status(self.0 & !Self::DNR)
    }

    /// Whether a failed command may be retried by the host. DNR
    /// short-circuits everything; otherwise transient classes (media
    /// errors, internal errors, aborts, path errors) are retryable while
    /// protocol violations (invalid opcode/field, LBA out of range,
    /// capacity exceeded) are terminal.
    pub fn is_retryable(self) -> bool {
        if !self.is_error() || self.dnr() {
            return false;
        }
        match self.sct() {
            StatusCodeType::MediaError | StatusCodeType::Path => true,
            StatusCodeType::Generic => matches!(self.sc(), 0x06 | 0x07),
            StatusCodeType::CommandSpecific => false,
        }
    }
}

/// A 16-byte NVMe completion queue entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C)]
pub struct CompletionEntry {
    /// Command-specific result (DW0).
    pub result: u32,
    /// Reserved (DW1).
    pub rsvd: u32,
    /// Submission queue head pointer at completion time.
    pub sq_head: u16,
    /// Submission queue the command came from.
    pub sq_id: u16,
    /// Command identifier being completed.
    pub cid: u16,
    /// Phase bit (bit 0) + status field (bits 15:1).
    pub status_phase: u16,
}

const _: () = assert!(std::mem::size_of::<CompletionEntry>() == 16);

impl CompletionEntry {
    /// Builds a completion for `cid` with the given status (phase set later
    /// by the queue when the entry is posted).
    pub fn new(cid: u16, status: Status) -> Self {
        CompletionEntry {
            cid,
            status_phase: status.0,
            ..Default::default()
        }
    }

    /// The status, with the phase bit stripped.
    pub fn status(&self) -> Status {
        Status(self.status_phase & !1)
    }

    /// The phase bit as posted.
    pub fn phase(&self) -> bool {
        self.status_phase & 1 != 0
    }

    /// Sets the phase bit (used by the completion queue producer).
    pub fn set_phase(&mut self, phase: bool) {
        if phase {
            self.status_phase |= 1;
        } else {
            self.status_phase &= !1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_entry_is_16_bytes() {
        assert_eq!(std::mem::size_of::<CompletionEntry>(), 16);
    }

    #[test]
    fn success_is_not_error() {
        assert!(!Status::SUCCESS.is_error());
        assert!(Status::INVALID_OPCODE.is_error());
        assert!(Status::LBA_OUT_OF_RANGE.is_error());
    }

    #[test]
    fn status_packing_round_trips() {
        for (sct, sc) in [
            (StatusCodeType::Generic, 0x80u8),
            (StatusCodeType::MediaError, 0x81),
            (StatusCodeType::Path, 0x00),
            (StatusCodeType::CommandSpecific, 0x10),
        ] {
            let s = Status::new(sct, sc);
            assert_eq!(s.sct(), sct);
            assert_eq!(s.sc(), sc);
        }
    }

    #[test]
    fn phase_bit_does_not_disturb_status() {
        let mut e = CompletionEntry::new(7, Status::LBA_OUT_OF_RANGE);
        e.set_phase(true);
        assert!(e.phase());
        assert_eq!(e.status(), Status::LBA_OUT_OF_RANGE);
        e.set_phase(false);
        assert!(!e.phase());
        assert_eq!(e.status(), Status::LBA_OUT_OF_RANGE);
    }

    #[test]
    fn transient_statuses_are_retryable() {
        for s in [
            Status::UNRECOVERED_READ,
            Status::WRITE_FAULT,
            Status::GUARD_CHECK,
            Status::INTERNAL,
            Status::ABORTED,
            Status::PATH_ERROR,
        ] {
            assert!(s.is_retryable(), "{s:?} must be retryable");
        }
    }

    #[test]
    fn protocol_violations_are_terminal() {
        for s in [
            Status::INVALID_OPCODE,
            Status::INVALID_FIELD,
            Status::LBA_OUT_OF_RANGE,
            Status::CAPACITY_EXCEEDED,
            Status::new(StatusCodeType::CommandSpecific, 0x10),
        ] {
            assert!(!s.is_retryable(), "{s:?} must be terminal");
        }
        assert!(!Status::SUCCESS.is_retryable(), "success needs no retry");
    }

    #[test]
    fn dnr_short_circuits_retry() {
        let s = Status::UNRECOVERED_READ;
        assert!(s.is_retryable());
        let d = s.with_dnr();
        assert!(d.dnr());
        assert!(d.is_error());
        assert!(!d.is_retryable(), "DNR must defeat retry");
        // DNR does not disturb the code classification.
        assert_eq!(d.without_dnr(), s);
        assert_eq!(d.sct(), StatusCodeType::MediaError);
        assert_eq!(d.sc(), 0x81);
    }

    #[test]
    fn dnr_survives_completion_entry_round_trip() {
        let mut e = CompletionEntry::new(3, Status::WRITE_FAULT.with_dnr());
        e.set_phase(true);
        assert!(e.status().dnr());
        assert!(!e.status().is_retryable());
        assert_eq!(e.status().without_dnr(), Status::WRITE_FAULT);
    }

    #[test]
    fn status_never_collides_with_phase_bit() {
        // Status values occupy bits 15:1 only, so posting can own bit 0.
        for s in [
            Status::SUCCESS,
            Status::INVALID_OPCODE,
            Status::INTERNAL,
            Status::UNRECOVERED_READ,
            Status::PATH_ERROR,
        ] {
            assert_eq!(s.0 & 1, 0);
        }
    }
}
