//! Calibration constants for the virtual-time evaluation.
//!
//! This module is the **single home** of every modeled cost in the
//! reproduction. The paper's testbed (Dell R420, Samsung 970 EVO Plus,
//! Xeon E5-2420 v2, Infiniband link) is replaced by the constants below;
//! `EXPERIMENTS.md` records how well the resulting *relative* results track
//! the paper's figures. All times are virtual nanoseconds.
//!
//! Calibration anchors taken from the paper:
//!
//! * §V-B  NVMetro ≈ MDev ≈ SPDK ≈ passthrough throughput; QEMU 2.7x slower
//!   at 512B RR QD1, but fastest at 16K/QD128/1 job (+19..32%).
//! * Fig 4 latency at 10 kIOPS: passthrough +18.2%/+9.1% (interrupt
//!   forwarding), vhost +73.6%/+97.6%, QEMU 3.4x/4.1x, SPDK p99 writes
//!   5.9..18% below NVMetro.
//! * Fig 11 CPU: polling solutions ≈ +85% over passthrough at QD1/1 job,
//!   ≈ +26% at QD128/4 jobs; SPDK ≈ +56% at 512B/QD128/4 jobs.
//! * Fig 7/8 encryption and Fig 9/10 replication ratios (see those crates).

use crate::time::{Ns, US};

/// Every calibrated constant used by the simulated stacks.
///
/// `CostModel::default()` is the calibrated model; tests and ablations build
/// variants by mutating fields.
#[derive(Clone, Debug)]
pub struct CostModel {
    // ----- SSD (Samsung 970 EVO Plus 1TB class) -----
    /// Internal parallelism: concurrent NAND operations.
    pub ssd_channels: usize,
    /// Random/sequential read latency at the flash level, per operation.
    pub ssd_read_lat: Ns,
    /// Write latency into the SLC write cache, per operation.
    pub ssd_write_lat: Ns,
    /// Per-byte read transfer cost on the device's internal bus
    /// (ns per byte; 0.30 ns/B ≈ 3.3 GB/s).
    pub ssd_read_per_byte: f64,
    /// Per-byte write transfer cost (slightly slower than reads).
    pub ssd_write_per_byte: f64,
    /// Per-command controller overhead on the device's shared pipeline
    /// (fetch, parse, completion DMA) — what request merging amortizes.
    pub ssd_cmd_overhead: Ns,
    /// Per-command overhead for writes (higher: FTL mapping updates and
    /// SLC-cache bookkeeping; bounds small random-write IOPS).
    pub ssd_cmd_overhead_write: Ns,
    /// Relative jitter applied to each service time (uniform ±).
    pub ssd_jitter: f64,
    /// Interrupt delivery cost on the host when not polling.
    pub ssd_irq_cost: Ns,

    // ----- guest / VM -----
    /// Guest-side cost to build and submit one NVMe command (fio + guest
    /// block layer + driver), charged to the vCPU.
    pub guest_submit: Ns,
    /// Guest-side completion handling cost per I/O.
    pub guest_complete: Ns,
    /// Latency to inject a virtual interrupt into the guest and schedule
    /// its handler (paid by non-polling guests).
    pub guest_irq_inject: Ns,

    // ----- NVMetro router (and MDev-NVMe, which it extends) -----
    /// Router work per command hop: shadow-queue copy, routing-table
    /// bookkeeping, target queue post.
    pub router_cmd: Ns,
    /// One interpreted vbpf classifier invocation (verified bytecode).
    pub classifier_run: Ns,
    /// MDev-NVMe per-command mediation cost (LBA translation in-module).
    pub mdev_cmd: Ns,
    /// Router/UIF adaptive-polling idle timeout before parking on epoll.
    pub adaptive_idle_timeout: Ns,
    /// Wakeup penalty when a parked adaptive poller must be kicked.
    pub adaptive_wakeup: Ns,
    /// Notify-path post cost (NSQ doorbell + tracking).
    pub notify_post: Ns,
    /// UIF framework per-request overhead (parse, page mapping, NCQ post).
    pub uif_request: Ns,
    /// io_uring submission+completion overhead per I/O issued by a UIF.
    pub io_uring_op: Ns,

    // ----- vhost-scsi -----
    /// Guest virtio kick (vmexit + eventfd signal).
    pub virtio_kick: Ns,
    /// Waking the vhost worker kthread.
    pub vhost_wakeup: Ns,
    /// Per-request SCSI translation + virtio ring handling in the worker.
    pub vhost_request: Ns,
    /// Completion handling in the same vhost worker kthread (response ring
    /// update + interrupt signalling) — serializes with submissions.
    pub vhost_complete: Ns,
    /// Host kernel block-layer cost per request (bio alloc, merge, submit).
    pub block_layer: Ns,

    // ----- QEMU virtio-blk (io_uring backend) -----
    /// Trap + relay from KVM to the QEMU main loop / iothread.
    pub qemu_trap: Ns,
    /// Thread handoff (bottom half → iothread) wakeup latency.
    pub qemu_handoff: Ns,
    /// Per-request cost inside the iothread (virtio parse, io_uring sqe).
    pub qemu_request: Ns,
    /// Per-batch fixed cost (ring scan, io_uring_enter), amortized at
    /// high queue depth — this is why QEMU catches up at QD128.
    pub qemu_batch: Ns,
    /// Number of iothreads QEMU spreads requests across at high QD.
    pub qemu_iothreads: usize,
    /// QEMU iothread adaptive polling window (shorter than NVMetro's).
    pub qemu_poll_timeout: Ns,

    // ----- SPDK vhost-user -----
    /// Per-request cost in the SPDK reactor (userspace NVMe driver).
    pub spdk_request: Ns,
    /// Extra fixed CPU burned by SPDK hugepage/reactor housekeeping,
    /// expressed as additional always-busy reactors.
    pub spdk_reactors: usize,

    // ----- encryption -----
    /// XTS-AES throughput per crypto thread, ns per byte
    /// (0.45 ns/B ≈ 2.2 GB/s with AES-NI).
    pub xts_per_byte: f64,
    /// Fixed cost per encrypted/decrypted request (key schedule reuse,
    /// sector iteration setup).
    pub xts_per_request: Ns,
    /// dm-crypt kcryptd per-request overhead (workqueue bounce, bio clone).
    pub dmcrypt_request: Ns,
    /// dm-crypt single-threaded bookkeeping per request: bio cloning and
    /// the kcryptd_io/dmcrypt_write workqueue bounce (serializes the whole
    /// crypt device — the paper's dm-crypt throughput ceiling).
    pub dmcrypt_io_serial: Ns,
    /// Per-byte component of that serialized stage (page walking and
    /// per-sector bookkeeping at testbed-class clock speeds, ns/B).
    pub dmcrypt_serial_per_byte: f64,
    /// Number of kcryptd workers (bounded by the 4-core VM host side).
    pub dmcrypt_workers: usize,
    /// Worker threads in the non-SGX encryption UIF (paper: 2).
    pub uif_crypto_threads: usize,
    /// SGX: per-byte multiplier for large buffers that thrash the EPC.
    pub sgx_epc_factor: f64,
    /// SGX: buffer size beyond which the EPC factor applies.
    pub sgx_epc_threshold: usize,
    /// SGX: ECALL cost when *not* using switchless calls.
    pub sgx_ecall: Ns,

    // ----- replication -----
    /// One-way network latency of the NVMe-oF Infiniband link.
    pub nvmeof_one_way: Ns,
    /// Per-byte cost of the remote link (ns/B; 0.10 ≈ 10 GB/s IB FDR).
    pub nvmeof_per_byte: f64,
    /// Remote target per-request processing cost.
    pub nvmeof_request: Ns,
    /// dm-mirror (dm-raid1) per-request overhead incl. region locking.
    pub dmmirror_request: Ns,
    /// dm-mirror's single mirror kernel thread: region-lock bookkeeping and
    /// consistency tracking per request (the serialized stage behind the
    /// paper's +68..291% read gaps).
    pub dmmirror_io_serial: Ns,
    /// Per-byte component of the mirror thread's work (ns/B).
    pub dmmirror_serial_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ssd_channels: 12,
            ssd_read_lat: 58 * US,
            ssd_write_lat: 20 * US,
            ssd_read_per_byte: 0.30,
            ssd_write_per_byte: 0.31,
            ssd_cmd_overhead: 1_500,
            ssd_cmd_overhead_write: 3_300,
            ssd_jitter: 0.08,
            ssd_irq_cost: 900,

            guest_submit: 6_000,
            guest_complete: 5_000,
            guest_irq_inject: 10_500,

            router_cmd: 550,
            classifier_run: 260,
            mdev_cmd: 500,
            adaptive_idle_timeout: 8 * US,
            adaptive_wakeup: 4 * US,
            notify_post: 450,
            uif_request: 700,
            io_uring_op: 1_500,

            virtio_kick: 2_200,
            vhost_wakeup: 13_000,
            vhost_request: 4_000,
            vhost_complete: 2_500,
            block_layer: 2_200,

            qemu_trap: 2_500,
            qemu_handoff: 23_000,
            qemu_request: 1_400,
            qemu_batch: 7_000,
            qemu_iothreads: 4,
            qemu_poll_timeout: 18 * US,

            spdk_request: 450,
            spdk_reactors: 2,

            xts_per_byte: 0.45,
            xts_per_request: 400,
            dmcrypt_request: 2_600,
            dmcrypt_io_serial: 4_000,
            dmcrypt_serial_per_byte: 1.15,
            dmcrypt_workers: 4,
            uif_crypto_threads: 2,
            sgx_epc_factor: 2.1,
            sgx_epc_threshold: 8 * 1024,
            sgx_ecall: 8_000,

            nvmeof_one_way: 10 * US,
            nvmeof_per_byte: 0.10,
            nvmeof_request: 2_000,
            dmmirror_request: 2_400,
            dmmirror_io_serial: 15_000,
            dmmirror_serial_per_byte: 1.0,
        }
    }
}

impl CostModel {
    /// SSD service time for the NAND/channel stage of one operation.
    pub fn ssd_channel_cost(&self, write: bool, bytes: usize) -> Ns {
        let (lat, per_byte) = if write {
            (self.ssd_write_lat, self.ssd_write_per_byte)
        } else {
            (self.ssd_read_lat, self.ssd_read_per_byte)
        };
        lat + (bytes as f64 * per_byte * 0.25) as Ns
    }

    /// SSD service time for the shared-bandwidth stage of one operation.
    pub fn ssd_bandwidth_cost(&self, write: bool, bytes: usize) -> Ns {
        let (per_byte, overhead) = if write {
            (self.ssd_write_per_byte, self.ssd_cmd_overhead_write)
        } else {
            (self.ssd_read_per_byte, self.ssd_cmd_overhead)
        };
        overhead + (bytes as f64 * per_byte) as Ns
    }

    /// XTS-AES cost for one request of `bytes` on one crypto thread.
    /// `sgx` applies the EPC-thrash factor for large buffers.
    pub fn xts_cost(&self, bytes: usize, sgx: bool) -> Ns {
        let mut per_byte = self.xts_per_byte;
        if sgx && bytes > self.sgx_epc_threshold {
            per_byte *= self.sgx_epc_factor;
        }
        self.xts_per_request + (bytes as f64 * per_byte) as Ns
    }

    /// Remote-link transfer cost for `bytes` (one direction).
    pub fn nvmeof_transfer(&self, bytes: usize) -> Ns {
        self.nvmeof_one_way + (bytes as f64 * self.nvmeof_per_byte) as Ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_slower_than_writes_at_flash_level() {
        let m = CostModel::default();
        // NAND reads have higher latency than SLC-cached writes.
        assert!(m.ssd_channel_cost(false, 4096) > m.ssd_channel_cost(true, 4096));
    }

    #[test]
    fn bandwidth_cost_scales_linearly_past_fixed_overhead() {
        let m = CostModel::default();
        let small = m.ssd_bandwidth_cost(false, 4096) - m.ssd_cmd_overhead;
        let big = m.ssd_bandwidth_cost(false, 131072) - m.ssd_cmd_overhead;
        assert!(big >= small * 31 && big <= small * 33);
    }

    #[test]
    fn sgx_factor_only_applies_to_large_buffers() {
        let m = CostModel::default();
        assert_eq!(m.xts_cost(4096, false), m.xts_cost(4096, true));
        assert!(m.xts_cost(131072, true) > m.xts_cost(131072, false));
    }

    #[test]
    fn device_bandwidth_is_about_3gbs() {
        let m = CostModel::default();
        // 128 KiB sequential read, bandwidth-stage bound:
        let per_op = (m.ssd_bandwidth_cost(false, 131072) - m.ssd_cmd_overhead) as f64;
        let gbs = 131072.0 / per_op; // bytes per ns == GB/s
        assert!(gbs > 2.5 && gbs < 4.5, "modeled read bandwidth {gbs} GB/s");
    }

    #[test]
    fn remote_transfer_includes_rtt_component() {
        let m = CostModel::default();
        assert!(m.nvmeof_transfer(0) >= m.nvmeof_one_way);
        assert!(m.nvmeof_transfer(1 << 20) > m.nvmeof_transfer(0));
    }
}
