//! The discrete-event executor.
//!
//! Actors are poll-driven: the executor repeatedly polls every actor at the
//! current virtual time until the system is quiescent, then jumps the clock
//! to the earliest future event any actor has scheduled (a device completion,
//! a station finishing a job, a rate-limited submission slot, ...). This
//! "cascade until quiescent, then leap" discipline is exact for systems whose
//! state only changes at scheduled instants, and avoids simulating billions
//! of empty busy-poll iterations.
//!
//! CPU time is accounted per actor according to its [`CpuMode`]:
//!
//! * `EventDriven` — only the work it explicitly charged (an
//!   interrupt-driven component sleeps between events);
//! * `BusyPoll` — the whole wall-clock of the run (SPDK-style reactors and
//!   always-on polling threads burn their core regardless of load);
//! * `Adaptive { idle_timeout }` — charged work plus, for every idle gap,
//!   up to `idle_timeout` of spinning before the component parks itself on
//!   an `epoll`-style wait (NVMetro's router workers and UIFs, §III-D).

use crate::time::Ns;

/// What an actor accomplished during one poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// State changed: the executor must re-poll everyone at this timestamp.
    Busy,
    /// Nothing to do at this time.
    Idle,
}

/// How CPU consumption is attributed to an actor (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuMode {
    /// Sleeps between events; CPU = charged work only.
    EventDriven,
    /// Burns its core for the entire run.
    BusyPoll,
    /// Spins up to `idle_timeout` per idle gap, then parks.
    Adaptive { idle_timeout: Ns },
}

/// A simulation participant. Implementations are typically thin wrappers
/// around the *real* poll-driven components (router, UIF, device) plus a
/// cost model.
pub trait Actor {
    /// Stable display name used in CPU reports.
    fn name(&self) -> &str;

    /// Performs all work available at `now`; must be idempotent when idle.
    fn poll(&mut self, now: Ns) -> Progress;

    /// Earliest future instant at which this actor will make progress
    /// without external input (e.g. an in-flight job finishing).
    fn next_event(&self) -> Option<Ns>;

    /// Total virtual CPU charged so far (monotonic).
    fn charged(&self) -> Ns {
        0
    }

    /// CPU accounting mode.
    fn cpu_mode(&self) -> CpuMode {
        CpuMode::EventDriven
    }
}

/// Boxed actors are actors: the executor, thread pool, and engine can all
/// hold heterogeneous `Box<dyn Actor + Send>` collections without wrapper
/// types.
impl<A: Actor + ?Sized> Actor for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn poll(&mut self, now: Ns) -> Progress {
        (**self).poll(now)
    }

    fn next_event(&self) -> Option<Ns> {
        (**self).next_event()
    }

    fn charged(&self) -> Ns {
        (**self).charged()
    }

    fn cpu_mode(&self) -> CpuMode {
        (**self).cpu_mode()
    }
}

struct Slot {
    actor: Box<dyn Actor>,
    last_busy: Option<Ns>,
    gap_burn: Ns,
}

/// Per-actor CPU usage from a finished run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Virtual duration of the run.
    pub duration: Ns,
    /// `(actor name, cpu ns)` in registration order.
    pub actor_cpu: Vec<(String, Ns)>,
}

impl RunReport {
    /// Sum of all actors' CPU, in core-seconds per wall-second
    /// (e.g. `2.0` means two cores fully busy) — the unit of Figs. 11-13
    /// once scaled by duration.
    pub fn total_cpu(&self) -> Ns {
        self.actor_cpu.iter().map(|(_, c)| *c).sum()
    }

    /// Total CPU expressed in "CPU seconds consumed per second of run".
    pub fn cpu_cores(&self) -> f64 {
        if self.duration == 0 {
            return 0.0;
        }
        self.total_cpu() as f64 / self.duration as f64
    }

    /// CPU of a single named actor (first match), in ns.
    pub fn cpu_of(&self, name: &str) -> Ns {
        self.actor_cpu
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

/// The discrete-event executor (see module docs).
pub struct Executor {
    now: Ns,
    slots: Vec<Slot>,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// Creates an executor at virtual time zero.
    pub fn new() -> Self {
        Executor {
            now: 0,
            slots: Vec::new(),
        }
    }

    /// Registers an actor; actors are polled in registration order.
    pub fn add(&mut self, actor: Box<dyn Actor>) {
        self.slots.push(Slot {
            actor,
            last_busy: None,
            gap_burn: 0,
        });
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Runs until no actor has any scheduled event, or until `deadline`
    /// (whichever comes first), and returns the CPU report.
    ///
    /// Panics if the system livelocks (an actor keeps reporting `Busy`
    /// without the clock advancing for an absurd number of iterations).
    pub fn run(&mut self, deadline: Ns) -> RunReport {
        loop {
            self.settle();
            // Only *future* events can advance the clock: an actor
            // reporting a stale (<= now) event already had its chance in
            // the settle pass, so honoring it would livelock the loop.
            let now = self.now;
            let next = self
                .slots
                .iter()
                .filter_map(|s| s.actor.next_event())
                .filter(|&t| t > now)
                .min();
            match next {
                Some(t) if t <= deadline => {
                    debug_assert!(t >= self.now, "time must not run backwards");
                    self.now = t.max(self.now);
                }
                Some(_) => {
                    // Events remain beyond the horizon: the run covers the
                    // full window up to the deadline.
                    self.now = deadline;
                    break;
                }
                None => break,
            }
        }
        self.report()
    }

    /// Pause point: polls every actor at the current time until quiescent
    /// and returns without leaping the clock. Live-servicing drivers call
    /// this between steps so they can quiesce/snapshot the datapath at a
    /// well-defined instant where no actor has unprocessed work at `now`.
    pub fn settle_now(&mut self) {
        self.settle();
    }

    /// Pause point: one settle-then-leap step. Settles the current
    /// timestamp, then advances the clock to the earliest future event not
    /// past `deadline`. Returns `false` when no such event exists (the
    /// system is drained up to the deadline), leaving `now` unchanged —
    /// callers interleave servicing operations (quiesce checks, snapshot,
    /// attach/detach) between steps.
    pub fn step(&mut self, deadline: Ns) -> bool {
        self.settle();
        let now = self.now;
        let next = self
            .slots
            .iter()
            .filter_map(|s| s.actor.next_event())
            .filter(|&t| t > now)
            .min();
        match next {
            Some(t) if t <= deadline => {
                self.now = t;
                true
            }
            _ => false,
        }
    }

    /// The CPU report as of the current virtual time (also usable
    /// mid-run, between [`Executor::step`] pause points).
    pub fn report_now(&self) -> RunReport {
        self.report()
    }

    /// Polls every actor at the current time until quiescent.
    fn settle(&mut self) {
        const MAX_CASCADES: u32 = 100_000;
        let mut cascades = 0;
        loop {
            let mut progressed = false;
            for slot in self.slots.iter_mut() {
                if slot.actor.poll(self.now) == Progress::Busy {
                    progressed = true;
                    // Account the idle gap that just ended for adaptive
                    // pollers: they spun for up to `idle_timeout` after their
                    // previous activity before parking.
                    if let CpuMode::Adaptive { idle_timeout } = slot.actor.cpu_mode() {
                        if let Some(last) = slot.last_busy {
                            let gap = self.now.saturating_sub(last);
                            slot.gap_burn += gap.min(idle_timeout);
                        }
                    }
                    slot.last_busy = Some(self.now);
                }
            }
            if !progressed {
                return;
            }
            cascades += 1;
            assert!(
                cascades < MAX_CASCADES,
                "livelock: actors keep making progress at t={}",
                self.now
            );
        }
    }

    fn report(&self) -> RunReport {
        let duration = self.now;
        let actor_cpu = self
            .slots
            .iter()
            .map(|s| {
                let cpu = match s.actor.cpu_mode() {
                    CpuMode::EventDriven => s.actor.charged(),
                    CpuMode::BusyPoll => duration,
                    CpuMode::Adaptive { idle_timeout } => {
                        // Charged work + spin after each activity burst,
                        // including the trailing one.
                        let trailing = s
                            .last_busy
                            .map(|l| duration.saturating_sub(l).min(idle_timeout))
                            .unwrap_or(0);
                        s.actor.charged() + s.gap_burn + trailing
                    }
                };
                (s.actor.name().to_string(), cpu)
            })
            .collect();
        RunReport {
            duration,
            actor_cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits one event every `period` until `count` events have fired.
    struct Ticker {
        period: Ns,
        remaining: u32,
        next: Ns,
        fired: Vec<Ns>,
        charged: Ns,
        mode: CpuMode,
    }

    impl Ticker {
        fn new(period: Ns, count: u32, mode: CpuMode) -> Self {
            Ticker {
                period,
                remaining: count,
                next: period,
                fired: Vec::new(),
                charged: 0,
                mode,
            }
        }
    }

    impl Actor for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn poll(&mut self, now: Ns) -> Progress {
            if self.remaining > 0 && now >= self.next {
                self.fired.push(now);
                self.remaining -= 1;
                self.next = now + self.period;
                self.charged += 10;
                Progress::Busy
            } else {
                Progress::Idle
            }
        }
        fn next_event(&self) -> Option<Ns> {
            (self.remaining > 0).then_some(self.next)
        }
        fn charged(&self) -> Ns {
            self.charged
        }
        fn cpu_mode(&self) -> CpuMode {
            self.mode
        }
    }

    #[test]
    fn clock_leaps_to_scheduled_events() {
        let mut ex = Executor::new();
        ex.add(Box::new(Ticker::new(1_000, 5, CpuMode::EventDriven)));
        let report = ex.run(u64::MAX);
        assert_eq!(report.duration, 5_000);
        assert_eq!(report.actor_cpu[0].1, 50);
    }

    #[test]
    fn deadline_stops_the_run() {
        let mut ex = Executor::new();
        ex.add(Box::new(Ticker::new(
            1_000,
            1_000_000,
            CpuMode::EventDriven,
        )));
        let report = ex.run(10_000);
        assert!(report.duration <= 10_000);
    }

    #[test]
    fn busy_poll_burns_whole_run() {
        let mut ex = Executor::new();
        ex.add(Box::new(Ticker::new(1_000, 4, CpuMode::BusyPoll)));
        let report = ex.run(u64::MAX);
        assert_eq!(report.duration, 4_000);
        assert_eq!(report.actor_cpu[0].1, 4_000);
    }

    #[test]
    fn adaptive_burns_bounded_gaps() {
        let mut ex = Executor::new();
        // Period 1000, idle timeout 100: each of the 4 gaps (including the
        // pre-first-event gap, which has no prior activity and is free)
        // burns at most 100.
        ex.add(Box::new(Ticker::new(
            1_000,
            4,
            CpuMode::Adaptive { idle_timeout: 100 },
        )));
        let report = ex.run(u64::MAX);
        let cpu = report.actor_cpu[0].1;
        // charged 40 + 3 inter-event gaps * 100; trailing gap is 0 because
        // the run ends exactly at the last event.
        assert_eq!(cpu, 40 + 300);
    }

    #[test]
    fn step_pause_points_reach_the_same_schedule_as_run() {
        let mut ex = Executor::new();
        ex.add(Box::new(Ticker::new(1_000, 5, CpuMode::EventDriven)));
        let mut pauses = Vec::new();
        while ex.step(u64::MAX) {
            pauses.push(ex.now());
        }
        ex.settle_now(); // the final event still needs its settle pass
        assert_eq!(pauses, vec![1_000, 2_000, 3_000, 4_000, 5_000]);
        let report = ex.report_now();
        assert_eq!(report.duration, 5_000);
        assert_eq!(report.actor_cpu[0].1, 50);
        assert!(!ex.step(u64::MAX), "drained executor must not step");
    }

    #[test]
    fn step_honours_the_deadline() {
        let mut ex = Executor::new();
        ex.add(Box::new(Ticker::new(1_000, 10, CpuMode::EventDriven)));
        let mut steps = 0;
        while ex.step(3_500) {
            steps += 1;
        }
        assert_eq!(steps, 3, "events past the deadline must not fire");
        assert_eq!(ex.now(), 3_000);
    }

    #[test]
    fn empty_executor_finishes_immediately() {
        let mut ex = Executor::new();
        let report = ex.run(u64::MAX);
        assert_eq!(report.duration, 0);
        assert_eq!(report.total_cpu(), 0);
    }

    #[test]
    fn report_helpers() {
        let mut ex = Executor::new();
        ex.add(Box::new(Ticker::new(100, 2, CpuMode::EventDriven)));
        let report = ex.run(u64::MAX);
        assert_eq!(report.cpu_of("ticker"), 20);
        assert_eq!(report.cpu_of("nonexistent"), 0);
        assert!(report.cpu_cores() > 0.0);
    }

    /// Producer/consumer pair sharing a queue: checks cascade settling.
    #[test]
    fn cascading_actors_settle_in_one_timestamp() {
        use std::cell::RefCell;
        use std::collections::VecDeque;
        use std::rc::Rc;

        struct Producer {
            q: Rc<RefCell<VecDeque<u32>>>,
            emitted: bool,
        }
        impl Actor for Producer {
            fn name(&self) -> &str {
                "producer"
            }
            fn poll(&mut self, now: Ns) -> Progress {
                if !self.emitted && now >= 10 {
                    self.q.borrow_mut().extend([1, 2, 3]);
                    self.emitted = true;
                    Progress::Busy
                } else {
                    Progress::Idle
                }
            }
            fn next_event(&self) -> Option<Ns> {
                (!self.emitted).then_some(10)
            }
        }
        struct Consumer {
            q: Rc<RefCell<VecDeque<u32>>>,
            got: Vec<(Ns, u32)>,
        }
        impl Actor for Consumer {
            fn name(&self) -> &str {
                "consumer"
            }
            fn poll(&mut self, now: Ns) -> Progress {
                let mut q = self.q.borrow_mut();
                if q.is_empty() {
                    return Progress::Idle;
                }
                while let Some(v) = q.pop_front() {
                    self.got.push((now, v));
                }
                Progress::Busy
            }
            fn next_event(&self) -> Option<Ns> {
                None
            }
        }

        let q = Rc::new(RefCell::new(VecDeque::new()));
        let mut ex = Executor::new();
        // Consumer registered FIRST to prove the cascade re-polls it after
        // the producer runs.
        let consumer = Box::new(Consumer {
            q: q.clone(),
            got: Vec::new(),
        });
        let cq = q.clone();
        ex.add(consumer);
        ex.add(Box::new(Producer {
            q: cq,
            emitted: false,
        }));
        ex.run(u64::MAX);
        // Items must have been consumed at t=10 despite ordering.
        assert!(q.borrow().is_empty());
    }
}
