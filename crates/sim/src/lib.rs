//! Discrete-event simulation core for NVMetro.
//!
//! The paper evaluates NVMetro on a physical testbed (Dell R420 servers, a
//! Samsung 970 EVO Plus, Infiniband). This crate replaces the testbed's
//! *clock* with a virtual one: every active component (router worker, UIF
//! thread, kernel stack, SSD, workload job) is an [`Actor`] stepped by the
//! [`Executor`] in virtual nanoseconds, with per-actor CPU accounting that
//! reproduces the paper's CPU-consumption figures (Figs. 11-13).
//!
//! Components are written as poll-driven state machines, so the *same*
//! implementation can also be driven by real OS threads (see
//! `nvmetro-core` threading); only the notion of time differs.
//!
//! The [`cost`] module is the single home of every calibration constant used
//! by the virtual-time evaluation, as promised in `DESIGN.md` §8.

pub mod cost;
mod executor;
mod rng;
mod station;
mod thread;
mod time;
pub mod topology;

pub use executor::{Actor, CpuMode, Executor, Progress, RunReport};
pub use rng::SimRng;
pub use station::Station;
pub use thread::ActorThread;
pub use time::{Ns, MS, SEC, US};
pub use topology::Topology;
