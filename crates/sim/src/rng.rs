//! Deterministic random number generation for reproducible experiments.
//!
//! Self-contained xoshiro256++ generator (Blackman & Vigna) seeded through
//! splitmix64, so every figure regenerates identically from the same seed
//! with no external crates on the build path.

/// A seeded RNG used everywhere randomness is needed in virtual-time runs,
/// so every figure regenerates identically from the same seed.
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Lemire-style rejection keeps the distribution unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (for service-time
    /// jitter and interarrival gaps).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.f64().max(1e-12);
        -mean * u.ln()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_full_range() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_has_roughly_right_mean() {
        let mut r = SimRng::new(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp(100.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn matches_reference_xoshiro_vectors() {
        // xoshiro256++ from state seeded by splitmix64(0): the generator
        // must stay stable across refactors or every figure changes.
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::new(0);
        let again: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }
}
