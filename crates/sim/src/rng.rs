//! Deterministic random number generation for reproducible experiments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG used everywhere randomness is needed in virtual-time runs,
/// so every figure regenerates identically from the same seed.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (for service-time
    /// jitter and interarrival gaps).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.f64().max(1e-12);
        -mean * u.ln()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn exp_has_roughly_right_mean() {
        let mut r = SimRng::new(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp(100.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
