//! Multi-server queueing stations.
//!
//! A [`Station`] models a component with `k` parallel servers and a FIFO
//! backlog: jobs pushed at time `t` begin service on the earliest-free
//! server and finish `cost` later. The SSD (internal NAND parallelism), the
//! kernel block layer (one server), dm-crypt's kcryptd pool, and the UIF
//! crypto workers are all stations with different `k` and cost functions.

use crate::time::Ns;
use std::collections::VecDeque;

struct InFlight<T> {
    finish: Ns,
    job: T,
}

/// A FIFO multi-server queueing station over jobs of type `T`.
pub struct Station<T> {
    servers: Vec<Ns>,
    backlog: VecDeque<(T, Ns)>,
    in_flight: Vec<InFlight<T>>,
    charged: Ns,
    completed: u64,
}

impl<T> Station<T> {
    /// Creates a station with `servers` parallel servers (≥ 1).
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "a station needs at least one server");
        Station {
            servers: vec![0; servers],
            backlog: VecDeque::new(),
            in_flight: Vec::new(),
            charged: 0,
            completed: 0,
        }
    }

    /// Enqueues a job with the given service cost; it starts on the
    /// earliest-free server at or after `now`.
    pub fn push(&mut self, job: T, cost: Ns, now: Ns) {
        self.backlog.push_back((job, cost));
        self.dispatch(now);
    }

    /// Moves backlog jobs onto free servers.
    fn dispatch(&mut self, now: Ns) {
        while !self.backlog.is_empty() {
            // Earliest-free server.
            let (idx, free_at) = self
                .servers
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, t)| t)
                .expect("at least one server");
            // All servers saturated far in the future is fine: the job still
            // queues on the earliest one (FIFO order is preserved because we
            // always take from the backlog front).
            let (job, cost) = self.backlog.pop_front().expect("checked");
            let start = free_at.max(now);
            let finish = start + cost;
            self.servers[idx] = finish;
            self.charged += cost;
            self.in_flight.push(InFlight { finish, job });
        }
    }

    /// Pops one job whose service has finished by `now`, earliest first,
    /// returning the job and its exact finish time (useful for forwarding
    /// the job downstream stamped with the time it really became ready).
    pub fn pop_done_timed(&mut self, now: Ns) -> Option<(T, Ns)> {
        let mut best: Option<(usize, Ns)> = None;
        for (i, f) in self.in_flight.iter().enumerate() {
            if f.finish <= now && best.is_none_or(|(_, bf)| f.finish < bf) {
                best = Some((i, f.finish));
            }
        }
        let (idx, finish) = best?;
        self.completed += 1;
        Some((self.in_flight.swap_remove(idx).job, finish))
    }

    /// Pops one job whose service has finished by `now`, earliest first.
    pub fn pop_done(&mut self, now: Ns) -> Option<T> {
        let mut best: Option<(usize, Ns)> = None;
        for (i, f) in self.in_flight.iter().enumerate() {
            if f.finish <= now && best.is_none_or(|(_, bf)| f.finish < bf) {
                best = Some((i, f.finish));
            }
        }
        let (idx, _) = best?;
        self.completed += 1;
        Some(self.in_flight.swap_remove(idx).job)
    }

    /// Earliest in-flight finish time, if any work is pending.
    pub fn next_event(&self) -> Option<Ns> {
        self.in_flight.iter().map(|f| f.finish).min()
    }

    /// Total service time charged across all jobs so far.
    pub fn charged(&self) -> Ns {
        self.charged
    }

    /// Number of jobs fully served.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Jobs currently queued or in service.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len() + self.backlog.len()
    }

    /// True when no work is queued or in service.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty() && self.backlog.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_jobs() {
        let mut s: Station<u32> = Station::new(1);
        s.push(1, 100, 0);
        s.push(2, 100, 0);
        assert_eq!(s.next_event(), Some(100));
        assert!(s.pop_done(99).is_none());
        assert_eq!(s.pop_done(100), Some(1));
        assert_eq!(s.next_event(), Some(200));
        assert_eq!(s.pop_done(200), Some(2));
        assert!(s.is_empty());
        assert_eq!(s.charged(), 200);
        assert_eq!(s.completed(), 2);
    }

    #[test]
    fn parallel_servers_overlap() {
        let mut s: Station<u32> = Station::new(2);
        s.push(1, 100, 0);
        s.push(2, 100, 0);
        s.push(3, 100, 0);
        // Two jobs run concurrently; the third queues behind the first free.
        assert_eq!(s.pop_done(100), Some(1));
        assert_eq!(s.pop_done(100), Some(2));
        assert!(s.pop_done(100).is_none());
        assert_eq!(s.pop_done(200), Some(3));
    }

    #[test]
    fn push_after_idle_starts_at_now() {
        let mut s: Station<u32> = Station::new(1);
        s.push(1, 50, 0);
        assert_eq!(s.pop_done(50), Some(1));
        // Server was free at 50; pushing at 1000 must not start earlier.
        s.push(2, 50, 1_000);
        assert_eq!(s.next_event(), Some(1_050));
    }

    #[test]
    fn fifo_order_is_preserved_under_load() {
        let mut s: Station<u32> = Station::new(1);
        for i in 0..10 {
            s.push(i, 10, 0);
        }
        let mut got = Vec::new();
        let mut t = 0;
        while let Some(e) = s.next_event() {
            t = e;
            while let Some(j) = s.pop_done(t) {
                got.push(j);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(t, 100);
    }

    #[test]
    fn in_flight_counts_backlog() {
        let mut s: Station<u32> = Station::new(1);
        s.push(1, 10, 0);
        s.push(2, 10, 0);
        assert_eq!(s.in_flight(), 2);
        s.pop_done(10);
        assert_eq!(s.in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = Station::<u32>::new(0);
    }
}
