//! Real-thread execution of poll-driven components.
//!
//! The same actors the virtual-time [`Executor`](crate::Executor) steps for
//! benchmarks can run here on OS threads against the wall clock — this is
//! the configuration the functional examples and end-to-end tests use,
//! mirroring the paper's deployment (router worker threads in the host
//! kernel, UIF threads in a userspace process, the device operating
//! asynchronously). One drive loop serves every component; routers, UIF
//! runners and the device model all go through [`ActorThread`].

use crate::{Actor, Ns, Progress};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// The shared drive loop: polls `actor` against a scaled wall clock until
/// `stop` is raised, then drains its remaining scheduled work so shutdown
/// is clean. After a run of idle polls the loop yields to the OS (the
/// paper's `epoll` fallback), resuming hard polling when work reappears.
fn drive<A: Actor + ?Sized>(actor: &mut A, stop: &AtomicBool, time_scale: f64) {
    let start = Instant::now();
    let mut idle_streak = 0u32;
    while !stop.load(Ordering::Relaxed) {
        let now: Ns = (start.elapsed().as_nanos() as f64 * time_scale) as Ns;
        match actor.poll(now) {
            Progress::Busy => idle_streak = 0,
            Progress::Idle => {
                idle_streak = idle_streak.saturating_add(1);
                // Yield quickly so co-runners get the core on small
                // machines (single-core CI included).
                if idle_streak > 32 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
    while let Some(t) = actor.next_event() {
        actor.poll(t);
    }
}

/// An [`Actor`] being driven by a dedicated OS thread.
pub struct ActorThread<A: Actor + Send + 'static> {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<A>>,
}

impl<A: Actor + Send + 'static> ActorThread<A> {
    /// Moves `actor` onto a new thread. `time_scale` compresses modeled
    /// time (1.0 = modeled nanoseconds are wall nanoseconds; 100.0 = 100x
    /// faster than modeled) so functional tests stay fast while preserving
    /// ordering.
    pub fn spawn(mut actor: A, time_scale: f64) -> Self {
        assert!(time_scale > 0.0, "time scale must be positive");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let name = actor.name().to_string();
        let handle = std::thread::Builder::new()
            .name(format!("{name}-thread"))
            .spawn(move || {
                drive(&mut actor, &stop2, time_scale);
                actor
            })
            .expect("spawn actor thread");
        ActorThread {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and returns the actor.
    pub fn stop(mut self) -> A {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("still running")
            .join()
            .expect("actor thread panicked")
    }
}

impl<A: Actor + Send + 'static> Drop for ActorThread<A> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
