//! Virtual time units.

/// Virtual nanoseconds — the simulation's base time unit.
pub type Ns = u64;

/// One microsecond in [`Ns`].
pub const US: Ns = 1_000;
/// One millisecond in [`Ns`].
pub const MS: Ns = 1_000_000;
/// One second in [`Ns`].
pub const SEC: Ns = 1_000_000_000;
