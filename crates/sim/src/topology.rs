//! Core/NUMA placement model.
//!
//! The paper's testbed pins each router worker to its own core; OpenHCL's
//! NVMe driver goes further and keeps a queue's submission, completion,
//! and interrupt handling on the *same* CPU so a completion never crosses
//! a node boundary. This module gives the simulation the same vocabulary:
//! a [`Topology`] of NUMA nodes × cores with the device attached to one
//! node, a per-core completion penalty for shards placed off that node,
//! and a small placement optimizer that packs the heaviest shards onto
//! device-local cores first.

use crate::time::{Ns, US};

/// A machine shape: `nodes` NUMA nodes of `cores_per_node` cores each,
/// with the NVMe device's interrupt/DMA home on `device_node`. A shard
/// pinned to a core off the device node pays `cross_penalty` extra per
/// device completion it reaps (remote cacheline bounce + remote doorbell).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// NUMA node count (≥ 1).
    pub nodes: usize,
    /// Cores per node (≥ 1).
    pub cores_per_node: usize,
    /// Node the device's DMA/interrupts land on.
    pub device_node: usize,
    /// Extra per-completion cost for shards on any other node.
    pub cross_penalty: Ns,
}

impl Default for Topology {
    /// A small dual-socket shape: 2 nodes × 4 cores, device on node 0,
    /// ~1.2 µs remote-completion penalty (the order of a cross-socket
    /// cacheline bounce amortized over a reaped batch).
    fn default() -> Self {
        Topology {
            nodes: 2,
            cores_per_node: 4,
            device_node: 0,
            cross_penalty: US + US / 5,
        }
    }
}

impl Topology {
    /// Total core count.
    pub fn cores(&self) -> usize {
        self.nodes.max(1) * self.cores_per_node.max(1)
    }

    /// Which node a core belongs to.
    pub fn node_of(&self, core: usize) -> usize {
        (core / self.cores_per_node.max(1)) % self.nodes.max(1)
    }

    /// Per-device-completion penalty for a shard pinned to `core`: zero on
    /// the device's node, `cross_penalty` anywhere else.
    pub fn completion_penalty(&self, core: usize) -> Ns {
        if self.node_of(core) == self.device_node {
            0
        } else {
            self.cross_penalty
        }
    }

    /// Places one shard per entry of `loads` (relative load weights; use
    /// all-equal when unknown) onto cores: heaviest shard first, each
    /// taking the least-occupied core with device-local cores preferred on
    /// ties. More shards than cores double up — the optimizer then
    /// balances aggregate load per core. Returns the core id per shard,
    /// in shard order.
    pub fn place(&self, loads: &[u64]) -> Vec<usize> {
        let cores = self.cores();
        // Preference order: device-node cores first, then the rest.
        let mut pref: Vec<usize> = (0..cores).collect();
        pref.sort_by_key(|&c| (self.node_of(c) != self.device_node, c));
        let mut by_load: Vec<usize> = (0..loads.len()).collect();
        by_load.sort_by_key(|&i| std::cmp::Reverse(loads[i]));
        let mut occupancy = vec![0u64; cores];
        let mut out = vec![0usize; loads.len()];
        for &shard in &by_load {
            // First minimum in preference order wins the tie, so an empty
            // device-local core always beats an empty remote one.
            let core = *pref
                .iter()
                .min_by_key(|&&c| occupancy[c])
                .expect("topology has at least one core");
            occupancy[core] += loads[shard].max(1);
            out[shard] = core;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_is_zero_on_device_node() {
        let t = Topology::default();
        for core in 0..t.cores_per_node {
            assert_eq!(t.completion_penalty(core), 0);
        }
        assert_eq!(t.completion_penalty(t.cores_per_node), t.cross_penalty);
    }

    #[test]
    fn place_prefers_device_local_cores() {
        let t = Topology::default();
        let cores = t.place(&[1, 1, 1, 1]);
        for &c in &cores {
            assert_eq!(t.node_of(c), t.device_node, "all four fit locally");
        }
        // Distinct cores while they last.
        let mut sorted = cores.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn heaviest_shard_lands_local_when_spilling() {
        let t = Topology {
            nodes: 2,
            cores_per_node: 1,
            device_node: 0,
            cross_penalty: 100,
        };
        // Three shards onto two cores: the heavy one must sit alone-first
        // on the device-local core.
        let cores = t.place(&[10, 1, 1]);
        assert_eq!(cores[0], 0, "heaviest shard is placed first, locally");
        assert!(cores.contains(&1), "spill uses the remote core");
    }

    #[test]
    fn spill_balances_aggregate_load() {
        let t = Topology {
            nodes: 1,
            cores_per_node: 2,
            device_node: 0,
            cross_penalty: 0,
        };
        let cores = t.place(&[4, 4, 4, 4]);
        let on0 = cores.iter().filter(|&&c| c == 0).count();
        assert_eq!(on0, 2, "equal shards split evenly across cores");
    }
}
