//! Log-bucketed histogram in the spirit of HdrHistogram.
//!
//! Values are bucketed with a fixed number of significant bits, giving a
//! bounded relative error (~1/64 with the default 6 sub-bucket bits) over an
//! arbitrary value range while using a few KiB of memory. This is the same
//! trade-off `fio` makes when recording completion latencies.

/// Number of sub-bucket bits: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets, bounding relative error to `2^-SUB_BITS`.
const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Enough top-level buckets to cover the full `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize) + 1;

/// A histogram of `u64` samples (typically nanoseconds) with logarithmic
/// bucketing and ~1.6% worst-case relative error on reported quantiles.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS * SUB_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        // Values below SUB_COUNT land in bucket 0 linearly (exact).
        if value < SUB_COUNT as u64 {
            return value as usize;
        }
        // Keep the top SUB_BITS bits (including the leading one): `top` is in
        // [SUB_COUNT/2, SUB_COUNT), so each power-of-two range past the first
        // contributes SUB_COUNT/2 distinct indices.
        let msb = 63 - value.leading_zeros();
        let bucket = (msb - (SUB_BITS - 1)) as usize; // >= 1
        let top = (value >> bucket) as usize; // in [SUB_COUNT/2, SUB_COUNT)
        SUB_COUNT + (bucket - 1) * (SUB_COUNT / 2) + (top - SUB_COUNT / 2)
    }

    /// Representative value for a bucket index: the highest value that maps
    /// to this index, so quantiles never under-report.
    fn value_of(index: usize) -> u64 {
        if index < SUB_COUNT {
            return index as u64;
        }
        let bucket = (index - SUB_COUNT) / (SUB_COUNT / 2) + 1;
        let top = (index - SUB_COUNT) % (SUB_COUNT / 2) + SUB_COUNT / 2;
        (((top as u64) + 1) << bucket) - 1
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        self.counts[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, e.g. `0.5` for the median and
    /// `0.99` for the paper's tail latency. Reported with the histogram's
    /// bucket resolution; clamped to the recorded min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile, as reported in Fig. 4 whiskers.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.median(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_is_exactly_reported() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.median(), 42);
        assert_eq!(h.quantile(0.99), 42);
    }

    #[test]
    fn small_values_are_exact() {
        // Bucket 0 is linear: values < 64 must be exact.
        let mut h = Histogram::new();
        for v in 0..SUB_COUNT as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), SUB_COUNT as u64 - 1);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            h.record_n(v, 100);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile must not decrease");
            last = q;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        let value = 123_456_789u64;
        h.record(value);
        let m = h.median();
        let err = (m as f64 - value as f64).abs() / value as f64;
        assert!(err < 0.04, "relative error {err} too large (median {m})");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500_000);
    }

    #[test]
    fn clear_resets_state() {
        let mut h = Histogram::new();
        h.record(99);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        h.record(7);
        assert_eq!(h.median(), 7);
    }

    #[test]
    fn p99_exceeds_median_for_skewed_data() {
        let mut h = Histogram::new();
        h.record_n(100, 980);
        h.record_n(10_000, 20);
        assert!(h.p99() >= h.median());
        assert!(h.p99() >= 9_000, "p99 {} should capture tail", h.p99());
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(123, 0);
        assert_eq!(h.count(), 0);
    }
}
