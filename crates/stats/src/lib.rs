//! Statistics utilities for NVMetro experiments.
//!
//! Provides an HDR-style log-bucketed [`Histogram`] for latency recording,
//! simple [`Summary`] statistics for repeated runs, and a plain-text
//! [`Table`] builder used by every figure/table harness to print results in
//! the layout the paper reports.

mod histogram;
mod summary;
mod table;

pub use histogram::Histogram;
pub use summary::Summary;
pub use table::Table;
