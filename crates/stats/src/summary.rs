//! Summary statistics over repeated experiment runs.

/// Mean/stddev/min/max accumulator for a small set of scalar results,
/// e.g. the three repetitions of each fio configuration in the paper.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one run's result.
    pub fn add(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of runs recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (n-1 denominator), or 0 with <2 samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Smallest recorded result, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest recorded result, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn mean_and_extrema() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let mut s = Summary::new();
        s.add(5.0);
        s.add(5.0);
        s.add(5.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(v);
        }
        // Sample stddev of this classic data set is ~2.138.
        assert!((s.stddev() - 2.138).abs() < 0.01);
    }
}
