//! Plain-text result tables.
//!
//! Every figure/table harness prints its results through [`Table`] so that
//! `cargo bench` output lines up with the rows/series the paper reports.

use std::fmt::Write as _;

/// A simple column-aligned text table with an optional title, also
/// exportable as CSV for plotting.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the column count mismatches the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience for rows built from `Display` values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cell, width = widths[i]);
            }
            line
        };
        let header_line = fmt_row(&self.header, &widths);
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths).trim_end());
        }
        out
    }

    /// Renders the table as CSV (header + rows, comma-separated).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "iops"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name"));
        // Header and rows share column starts.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[1].find("iops").unwrap();
        assert_eq!(&lines[3][col..col + 1], "1");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn row_display_converts_values() {
        let mut t = Table::new("", &["v", "w"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_csv().contains("1.5,2.25"));
    }
}
