//! Trace event schema: what happened to a request, where, and when.
//!
//! Every instrumentation point in the datapath emits one fixed-size
//! [`TraceEvent`]. Events are correlated by `(vm, vsq, tag)` — the router's
//! routing-table tag is carried as the command CID on every internal queue,
//! so the same triple identifies one request from VSQ fetch to VCQ
//! completion. Components below the router (device, kernel stack, UIF) only
//! see the tag; they emit events with `vm == VM_ANY` and the snapshot's
//! lifecycle reassembly matches them to the owning request by tag within
//! the request's accept..complete time window.

/// Nanosecond timestamp. Virtual-time runs pass the DES clock's `now`;
/// real-thread runs pass an OS monotonic clock reading. The subsystem never
/// reads a clock itself, so both modes trace identically.
pub type Ns = u64;

/// Sentinel VM id for events emitted below the router, where only the
/// routing tag is known.
pub const VM_ANY: u32 = u32::MAX;

/// Lifecycle stage a request has reached when an event is emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// The router popped the command from a guest VSQ.
    VsqFetch = 0,
    /// A classifier returned a verdict at some hook.
    Classified = 1,
    /// The command was sent down a path (one event per path bit).
    Dispatched = 2,
    /// The physical device posted the command's completion.
    DeviceService = 3,
    /// The kernel block/DM stack completed the command.
    KernelService = 4,
    /// A userspace I/O function handled the notify-path request.
    UifService = 5,
    /// A path completion re-entered a classifier hook.
    HookReentry = 6,
    /// The CQE was posted to the guest VCQ.
    VcqComplete = 7,
    /// The router aborted the command after its deadline expired.
    Abort = 8,
    /// The router re-dispatched the command after a retryable failure.
    Retry = 9,
    /// The breaker diverted a fast-path send to the kernel path.
    Failover = 10,
    /// The request was re-dispatched on a fresh engine after a
    /// snapshot/restore or reshard (servicing replay, new generation).
    Replayed = 11,
    /// A shard's poll governor parked it (event-driven sleep, ~0 CPU).
    /// Shard lifecycle, not request lifecycle: emitted with `VM_ANY` and
    /// tag 0, never matched to a span.
    ShardPark = 12,
    /// A parked shard was kicked awake; the gap to the preceding
    /// [`Stage::ShardPark`] plus the wakeup latency is what insight
    /// attributes to adaptive polling.
    ShardWake = 13,
    /// Causal link: a coalescing follower's completion was fanned out
    /// from a leader's terminal completion. Emitted on the *follower's*
    /// identity with `link_tag`/`link_gen` naming the leader request on
    /// the same worker; insight's trace forest stitches the two spans
    /// into one logical tree.
    LinkFanout = 14,
}

impl Stage {
    /// All stages, in lifecycle order (recovery stages last).
    pub const ALL: [Stage; 15] = [
        Stage::VsqFetch,
        Stage::Classified,
        Stage::Dispatched,
        Stage::DeviceService,
        Stage::KernelService,
        Stage::UifService,
        Stage::HookReentry,
        Stage::VcqComplete,
        Stage::Abort,
        Stage::Retry,
        Stage::Failover,
        Stage::Replayed,
        Stage::ShardPark,
        Stage::ShardWake,
        Stage::LinkFanout,
    ];

    /// Stable lowercase name for tables and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::VsqFetch => "vsq_fetch",
            Stage::Classified => "classified",
            Stage::Dispatched => "dispatched",
            Stage::DeviceService => "device_service",
            Stage::KernelService => "kernel_service",
            Stage::UifService => "uif_service",
            Stage::HookReentry => "hook_reentry",
            Stage::VcqComplete => "vcq_complete",
            Stage::Abort => "abort",
            Stage::Retry => "retry",
            Stage::Failover => "failover",
            Stage::Replayed => "replayed",
            Stage::ShardPark => "shard_park",
            Stage::ShardWake => "shard_wake",
            Stage::LinkFanout => "link_fanout",
        }
    }
}

/// Which datapath a stage refers to (for `Dispatched`/service/re-entry
/// events); `None` for path-agnostic stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PathKind {
    /// Not tied to a specific path.
    None = 0,
    /// Fast path: hardware queue straight to the device.
    Fast = 1,
    /// Kernel path: host block layer / device mapper.
    Kernel = 2,
    /// Notify path: userspace I/O function over NSQ/NCQ.
    Notify = 3,
}

impl PathKind {
    /// Stable lowercase name for tables and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            PathKind::None => "-",
            PathKind::Fast => "fast",
            PathKind::Kernel => "kernel",
            PathKind::Notify => "notify",
        }
    }
}

/// The route a completed request is attributed to for latency accounting:
/// the "heaviest" path it touched (notify > kernel > fast).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Route {
    /// Device hardware queues only.
    Fast = 0,
    /// Touched the kernel path.
    Kernel = 1,
    /// Touched the notify path (UIF).
    Notify = 2,
}

impl Route {
    /// Number of routes.
    pub const COUNT: usize = 3;
    /// All routes in index order.
    pub const ALL: [Route; 3] = [Route::Fast, Route::Kernel, Route::Notify];

    /// Stable lowercase name for tables and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Route::Fast => "fast",
            Route::Kernel => "kernel",
            Route::Notify => "notify",
        }
    }
}

/// Stage-to-stage segment of a request's lifetime, each with its own
/// duration histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Segment {
    /// VSQ fetch (+classification) until the first path dispatch.
    IngressToDispatch = 0,
    /// First dispatch until the last path reported service done.
    DispatchToService = 1,
    /// Last service completion until the CQE hit the VCQ.
    ServiceToComplete = 2,
    /// First observed fault (error status, deadline expiry) until the
    /// request finally completed — the recovery latency.
    FaultToRecovery = 3,
}

impl Segment {
    /// Number of segments.
    pub const COUNT: usize = 4;
    /// All segments in lifecycle order.
    pub const ALL: [Segment; 4] = [
        Segment::IngressToDispatch,
        Segment::DispatchToService,
        Segment::ServiceToComplete,
        Segment::FaultToRecovery,
    ];

    /// Stable lowercase name for tables and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Segment::IngressToDispatch => "ingress_to_dispatch",
            Segment::DispatchToService => "dispatch_to_service",
            Segment::ServiceToComplete => "service_to_complete",
            Segment::FaultToRecovery => "fault_to_recovery",
        }
    }
}

/// Occupancy-style distributions recorded by the datapath: how deep a
/// queue was when it was visited, how many entries a batch carried. Unlike
/// [`Segment`] these are counts, not durations, but they share the same
/// per-shard histogram machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Depth {
    /// Entries drained from one VSQ in one visit (≤ the shard's batch).
    SqBurst = 0,
    /// CQEs posted to guest VCQs per coalesced flush (per doorbell ring).
    CqBatch = 1,
    /// Routing-table occupancy sampled after each ingest pass.
    TableOccupancy = 2,
    /// Requests admitted for one tenant in one fleet-scheduler visit
    /// (the realised per-round share under DRR + token buckets).
    TenantServed = 3,
}

impl Depth {
    /// Number of depth series.
    pub const COUNT: usize = 4;
    /// All depth series in index order.
    pub const ALL: [Depth; 4] = [
        Depth::SqBurst,
        Depth::CqBatch,
        Depth::TableOccupancy,
        Depth::TenantServed,
    ];

    /// Stable lowercase name for tables and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Depth::SqBurst => "sq_burst",
            Depth::CqBatch => "cq_batch",
            Depth::TableOccupancy => "table_occupancy",
            Depth::TenantServed => "tenant_served",
        }
    }
}

/// Which vbpf execution tier answered a classifier invocation (mirrors
/// `nvmetro_vbpf::Tier` without a crate dependency): the fetch/decode
/// interpreter, the pre-decoded compiled op array, or a verdict served
/// straight from the memo cache. Each tier gets a run counter and a
/// latency histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Tier {
    /// Fetch/decode interpreter (fallback tier).
    Interp = 0,
    /// Pre-decoded op-array dispatch loop.
    Compiled = 1,
    /// Memoized verdict replay; the program did not execute.
    CacheHit = 2,
}

impl Tier {
    /// Number of tiers.
    pub const COUNT: usize = 3;
    /// All tiers in index order.
    pub const ALL: [Tier; 3] = [Tier::Interp, Tier::Compiled, Tier::CacheHit];

    /// Stable lowercase name for tables and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::Compiled => "compiled",
            Tier::CacheHit => "cache_hit",
        }
    }
}

/// One fixed-size trace record. 24 bytes; the ring stores these by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the stage was reached (virtual or OS nanoseconds).
    pub ts_ns: Ns,
    /// Owning VM id, or [`VM_ANY`] below the router.
    pub vm: u32,
    /// Virtual submission queue index within the VM (0 below the router).
    pub vsq: u16,
    /// Router routing-table tag (carried as CID on internal queues).
    pub tag: u16,
    /// Registration index of the worker whose ring holds this event
    /// (stamped by the handle; identifies the shard for router events).
    pub worker: u16,
    /// Request generation: disambiguates reuse of the same routing-table
    /// tag across requests. Router-side events carry a nonzero value
    /// derived from the request's per-router sequence number; `0` means
    /// "unknown" (below-router emitters only see the tag).
    pub gen: u8,
    /// Lifecycle stage reached.
    pub stage: Stage,
    /// Path the stage refers to, if any.
    pub path: PathKind,
    /// Causal link: the routing-table tag of a *related* request this
    /// event points at (the coalesce leader for [`Stage::LinkFanout`],
    /// the pre-snapshot predecessor for [`Stage::Replayed`]). `0` with
    /// `link_gen == 0` means "no link".
    pub link_tag: u16,
    /// Generation of the linked request (disambiguates `link_tag` reuse,
    /// same encoding as `gen`). `0` means "no link".
    pub link_gen: u8,
}

impl Default for TraceEvent {
    fn default() -> Self {
        TraceEvent {
            ts_ns: 0,
            vm: VM_ANY,
            vsq: 0,
            tag: 0,
            worker: 0,
            gen: 0,
            stage: Stage::VsqFetch,
            path: PathKind::None,
            link_tag: 0,
            link_gen: 0,
        }
    }
}
