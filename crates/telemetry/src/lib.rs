//! # nvmetro-telemetry
//!
//! Unified request-lifecycle tracing and metrics for the NVMetro datapath.
//!
//! The paper's claims are statements about *where time and CPU go* as a
//! request moves VSQ → classifier → {fast, kernel, notify} path → VCQ.
//! This crate makes that visible without slowing the path down:
//!
//! * **Lifecycle tracing** — every stage emits a fixed-size [`TraceEvent`]
//!   into a lock-free ring ([`TraceRing`]); a request's journey is
//!   reassembled from the ring by `(vm, vsq, tag)`.
//! * **Sharded metrics** — each worker registers for its own
//!   cacheline-padded cell of relaxed atomic counters ([`Metric`]),
//!   summed only at snapshot time.
//! * **Latency histograms** — VSQ→VCQ latency split by [`Route`] and
//!   stage-segment durations ([`Segment`]), merged across shards with
//!   `Histogram::merge`.
//! * **Snapshots** — [`TelemetrySnapshot`] renders as a human table, CSV,
//!   or JSON.
//!
//! ## Clock discipline
//!
//! The subsystem never reads a clock. Every instrumentation point takes an
//! explicit nanosecond timestamp, so virtual-time runs pass the DES `now`
//! and real-thread runs pass an OS monotonic reading — tracing behaves
//! identically in both modes.
//!
//! ## Cost when disabled
//!
//! [`Telemetry::disabled`] (the default everywhere) hands out handles whose
//! instrumentation methods are a single `Option` branch — no atomics, no
//! allocation, no clock reads. `micro_datapath` benches the disabled path
//! against the enabled one.

mod event;
mod metrics;
pub mod percentile;
mod ring;
mod snapshot;

pub use event::{Depth, Ns, PathKind, Route, Segment, Stage, Tier, TraceEvent, VM_ANY};
pub use metrics::Metric;
pub use percentile::Percentiles;
pub use ring::TraceRing;
pub use snapshot::{lifecycle_table, RequestKey, TelemetrySnapshot};

use metrics::Shard;
use nvmetro_stats::Histogram;
use std::sync::{Arc, Mutex};

/// Registry configuration.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Per-worker trace-ring capacity in events (rounded up to a power of
    /// two). Every registered worker gets its own ring of this size.
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 4096,
        }
    }
}

struct Worker {
    name: String,
    ring: Arc<TraceRing>,
    shard: Arc<Shard>,
}

struct Inner {
    workers: Mutex<Vec<Worker>>,
    ring_capacity: usize,
}

/// A reader's position across every worker's trace ring, for incremental
/// [`Telemetry::drain`]. Create with [`Telemetry::cursor`]; one cursor per
/// consumer (the watchdog owns one, an exporter another). Grows lazily as
/// workers register after the cursor was created.
#[derive(Clone, Debug, Default)]
pub struct TraceCursor {
    next: Vec<u64>,
}

impl TraceCursor {
    /// Total tickets this cursor has moved past across all rings (drained
    /// or counted missed). Equals [`Telemetry::recorded_total`] exactly
    /// when nothing new has been published since the last drain.
    pub fn consumed(&self) -> u64 {
        self.next.iter().sum()
    }
}

/// The telemetry registry. Clone-able; all clones share the same ring and
/// shard list. A disabled registry (the default) costs nothing.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A registry that records nothing; its handles compile down to one
    /// branch per instrumentation call.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled registry with the default configuration.
    pub fn enabled() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// An enabled registry with an explicit configuration.
    pub fn with_config(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                workers: Mutex::new(Vec::new()),
                ring_capacity: cfg.trace_capacity,
            })),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers one anonymous worker; see [`Telemetry::register_worker_named`].
    pub fn register_worker(&self) -> TelemetryHandle {
        self.register_worker_named("worker")
    }

    /// Registers one worker (router shard, device, UIF runner, ...) and
    /// returns its private handle: a cacheline-padded counter shard plus a
    /// private trace ring, so hot-path pushes never contend across workers.
    /// The worker's registration index is stamped into every event it
    /// emits (`TraceEvent::worker`), and `name` labels it in snapshots and
    /// trace exports. On a disabled registry this returns a disabled
    /// handle. Registration is cold-path; call it at rig-build time.
    pub fn register_worker_named(&self, name: &str) -> TelemetryHandle {
        match &self.inner {
            None => TelemetryHandle::disabled(),
            Some(inner) => {
                let shard = Arc::new(Shard::new());
                let ring = Arc::new(TraceRing::new(inner.ring_capacity));
                let mut workers = inner.workers.lock().unwrap();
                let id = workers.len() as u16;
                workers.push(Worker {
                    name: name.to_string(),
                    ring: ring.clone(),
                    shard: shard.clone(),
                });
                TelemetryHandle {
                    shard: Some(shard),
                    ring: Some(ring),
                    worker: id,
                }
            }
        }
    }

    /// Sums every counter across all shards without touching histograms or
    /// rings — cheap enough for a periodic observer to call every tick.
    pub fn counters(&self) -> [u64; Metric::COUNT] {
        let mut counters = [0u64; Metric::COUNT];
        if let Some(inner) = &self.inner {
            for w in inner.workers.lock().unwrap().iter() {
                for m in Metric::ALL {
                    counters[m as usize] += w.shard.counter(m);
                }
            }
        }
        counters
    }

    /// Sums one counter across all shards — three atomic loads per worker,
    /// for observers that watch a single metric at high frequency.
    pub fn counter(&self, m: Metric) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .workers
                .lock()
                .unwrap()
                .iter()
                .map(|w| w.shard.counter(m))
                .sum(),
        }
    }

    /// Total events ever published across all workers' rings (including
    /// any lost to wrap) — one relaxed load per ring. Compared against
    /// [`TraceCursor::consumed`] this tells a consumer whether anything
    /// new awaits a drain without touching slot storage.
    pub fn recorded_total(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .workers
                .lock()
                .unwrap()
                .iter()
                .map(|w| w.ring.recorded())
                .sum(),
        }
    }

    /// Registered worker names, in registration (worker-id) order.
    pub fn worker_names(&self) -> Vec<String> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .workers
                .lock()
                .unwrap()
                .iter()
                .map(|w| w.name.clone())
                .collect(),
        }
    }

    /// A fresh drain cursor positioned at the start of every ring.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor::default()
    }

    /// Incrementally drains all workers' rings into `out` (events appended
    /// in per-ring order; stable-sort by `ts_ns` if a global order is
    /// needed) and advances the cursor. Returns the number of events lost
    /// between drains to ring wrap. A consumer that drains faster than any
    /// single ring wraps sees every event exactly once.
    pub fn drain(&self, cursor: &mut TraceCursor, out: &mut Vec<TraceEvent>) -> u64 {
        let inner = match &self.inner {
            None => return 0,
            Some(inner) => inner,
        };
        let mut missed = 0;
        let workers = inner.workers.lock().unwrap();
        if cursor.next.len() < workers.len() {
            cursor.next.resize(workers.len(), 0);
        }
        for (w, next) in workers.iter().zip(cursor.next.iter_mut()) {
            missed += w.ring.drain(next, out);
        }
        missed
    }

    /// Zero-copy variant of [`Telemetry::drain`]: invokes the visitor once
    /// per event (per-ring order, no intermediate buffer) and advances the
    /// cursor. Returns events lost to ring wrap, as [`Telemetry::drain`].
    pub fn drain_with(&self, cursor: &mut TraceCursor, mut f: impl FnMut(TraceEvent)) -> u64 {
        let inner = match &self.inner {
            None => return 0,
            Some(inner) => inner,
        };
        let mut missed = 0;
        let workers = inner.workers.lock().unwrap();
        if cursor.next.len() < workers.len() {
            cursor.next.resize(workers.len(), 0);
        }
        for (w, next) in workers.iter().zip(cursor.next.iter_mut()) {
            missed += w.ring.drain_with(next, &mut f);
        }
        missed
    }

    /// Stage-filtered variant of [`Telemetry::drain_with`]: only events
    /// whose stage bit is set in `mask` (`1 << (stage as u32)`) reach the
    /// visitor; the rest are consumed at the cost of a one-byte peek. See
    /// [`TraceRing::drain_stages`].
    pub fn drain_stages(
        &self,
        cursor: &mut TraceCursor,
        mask: u32,
        mut f: impl FnMut(TraceEvent),
    ) -> u64 {
        let inner = match &self.inner {
            None => return 0,
            Some(inner) => inner,
        };
        let mut missed = 0;
        let workers = inner.workers.lock().unwrap();
        if cursor.next.len() < workers.len() {
            cursor.next.resize(workers.len(), 0);
        }
        for (w, next) in workers.iter().zip(cursor.next.iter_mut()) {
            missed += w.ring.drain_stages(next, mask, &mut f);
        }
        missed
    }

    /// Aggregates counters and histograms across all shards and copies
    /// every worker's trace ring (merged, stably ordered by timestamp). A
    /// disabled registry returns an empty snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = match &self.inner {
            None => return TelemetrySnapshot::empty(),
            Some(inner) => inner,
        };
        let mut counters = [0u64; Metric::COUNT];
        let mut route: [Histogram; Route::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut segment: [Histogram; Segment::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut depth: [Histogram; Depth::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut tier: [Histogram; Tier::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut events = Vec::new();
        let mut workers_out = Vec::new();
        let mut ring_dropped = Vec::new();
        for w in inner.workers.lock().unwrap().iter() {
            for m in Metric::ALL {
                counters[m as usize] += w.shard.counter(m);
            }
            w.shard
                .merge_hists_into(&mut route, &mut segment, &mut depth, &mut tier);
            events.extend(w.ring.snapshot());
            workers_out.push(w.name.clone());
            ring_dropped.push(w.ring.dropped());
        }
        // Stable: per-ring ticket order breaks timestamp ties, so one
        // worker's same-instant events keep their emission order.
        events.sort_by_key(|e| e.ts_ns);
        TelemetrySnapshot {
            counters,
            route_latency: route,
            segments: segment,
            depths: depth,
            tiers: tier,
            events,
            dropped_events: ring_dropped.iter().sum(),
            workers: workers_out,
            ring_dropped,
        }
    }
}

/// One worker's instrumentation handle. Counter increments go to the
/// worker's private shard; trace events go to the worker's private ring,
/// stamped with its worker id. All methods are no-ops (one branch) on a
/// disabled handle.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    shard: Option<Arc<Shard>>,
    ring: Option<Arc<TraceRing>>,
    worker: u16,
}

impl TelemetryHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TelemetryHandle {
            shard: None,
            ring: None,
            worker: 0,
        }
    }

    /// Whether this handle records anything. Callers can use this to skip
    /// building event arguments that are themselves costly.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// This worker's registration index (0 on a disabled handle).
    #[inline]
    pub fn worker_id(&self) -> u16 {
        self.worker
    }

    /// Increments a counter by one.
    #[inline]
    pub fn count(&self, m: Metric) {
        self.add(m, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        if let Some(shard) = &self.shard {
            shard.add(m, n);
        }
    }

    /// Emits one lifecycle trace event (generation unknown).
    #[inline]
    pub fn event(&self, ts_ns: Ns, vm: u32, vsq: u16, tag: u16, stage: Stage, path: PathKind) {
        self.request_event(ts_ns, vm, vsq, tag, 0, stage, path);
    }

    /// Emits one lifecycle trace event carrying the request generation —
    /// the router's tag-reuse disambiguator (nonzero; see
    /// [`TraceEvent::gen`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn request_event(
        &self,
        ts_ns: Ns,
        vm: u32,
        vsq: u16,
        tag: u16,
        gen: u8,
        stage: Stage,
        path: PathKind,
    ) {
        if let Some(ring) = &self.ring {
            ring.push(TraceEvent {
                ts_ns,
                vm,
                vsq,
                tag,
                worker: self.worker,
                gen,
                stage,
                path,
                link_tag: 0,
                link_gen: 0,
            });
        }
    }

    /// Emits one lifecycle trace event that *links* this request to a
    /// related one (`link_tag`/`link_gen`): the coalesce leader for
    /// [`Stage::LinkFanout`], the pre-snapshot predecessor for
    /// [`Stage::Replayed`]. Insight's trace forest resolves the link into
    /// a parent/child edge of one logical request tree.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn link_event(
        &self,
        ts_ns: Ns,
        vm: u32,
        vsq: u16,
        tag: u16,
        gen: u8,
        stage: Stage,
        link_tag: u16,
        link_gen: u8,
    ) {
        if let Some(ring) = &self.ring {
            ring.push(TraceEvent {
                ts_ns,
                vm,
                vsq,
                tag,
                worker: self.worker,
                gen,
                stage,
                path: PathKind::None,
                link_tag,
                link_gen,
            });
        }
    }

    /// Emits a below-router event (device/kernel/UIF), which only knows the
    /// routing tag.
    #[inline]
    pub fn tag_event(&self, ts_ns: Ns, tag: u16, stage: Stage, path: PathKind) {
        self.event(ts_ns, VM_ANY, 0, tag, stage, path);
    }

    /// Records one completed request's VSQ→VCQ latency under its route.
    #[inline]
    pub fn route_latency(&self, route: Route, ns: u64) {
        if let Some(shard) = &self.shard {
            shard.record_route(route, ns);
        }
    }

    /// Records one stage-segment duration.
    #[inline]
    pub fn segment(&self, seg: Segment, ns: u64) {
        if let Some(shard) = &self.shard {
            shard.record_segment(seg, ns);
        }
    }

    /// Records one occupancy/batch-size sample (queue depth at a visit,
    /// CQEs per coalesced flush, ...).
    #[inline]
    pub fn depth(&self, d: Depth, value: u64) {
        if let Some(shard) = &self.shard {
            shard.record_depth(d, value);
        }
    }

    /// Records one classifier invocation's latency under the execution
    /// tier that answered it (interpreter / compiled / memo hit).
    #[inline]
    pub fn tier_latency(&self, t: Tier, ns: u64) {
        if let Some(shard) = &self.shard {
            shard.record_tier(t, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let h = t.register_worker();
        assert!(!h.enabled());
        h.count(Metric::Accepted);
        h.event(1, 0, 0, 0, Stage::VsqFetch, PathKind::None);
        h.route_latency(Route::Fast, 100);
        h.segment(Segment::IngressToDispatch, 10);
        let s = t.snapshot();
        assert_eq!(s.get(Metric::Accepted), 0);
        assert!(s.events.is_empty());
    }

    #[test]
    fn default_handle_is_disabled() {
        let h = TelemetryHandle::default();
        assert!(!h.enabled());
    }

    #[test]
    fn counters_aggregate_across_workers() {
        let t = Telemetry::enabled();
        let a = t.register_worker();
        let b = t.register_worker();
        a.count(Metric::Accepted);
        a.add(Metric::Accepted, 4);
        b.add(Metric::Accepted, 10);
        b.count(Metric::DeviceIos);
        let s = t.snapshot();
        assert_eq!(s.get(Metric::Accepted), 15);
        assert_eq!(s.get(Metric::DeviceIos), 1);
    }

    #[test]
    fn events_and_latency_reach_snapshot() {
        let t = Telemetry::with_config(TelemetryConfig { trace_capacity: 16 });
        let h = t.register_worker();
        h.event(100, 3, 0, 9, Stage::VsqFetch, PathKind::None);
        h.event(110, 3, 0, 9, Stage::Dispatched, PathKind::Kernel);
        h.tag_event(150, 9, Stage::KernelService, PathKind::Kernel);
        h.event(160, 3, 0, 9, Stage::VcqComplete, PathKind::None);
        h.route_latency(Route::Kernel, 60);
        h.segment(Segment::DispatchToService, 40);
        let s = t.snapshot();
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.route_hist(Route::Kernel).count(), 1);
        assert_eq!(s.route_hist(Route::Kernel).max(), 60);
        assert_eq!(s.segment_hist(Segment::DispatchToService).max(), 40);
        let stages = s.lifecycle_stages(3, 0, 9);
        assert_eq!(
            stages,
            vec![
                Stage::VsqFetch,
                Stage::Dispatched,
                Stage::KernelService,
                Stage::VcqComplete
            ]
        );
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        let h = t.register_worker();
        h.count(Metric::Completed);
        assert_eq!(t2.snapshot().get(Metric::Completed), 1);
    }

    #[test]
    fn per_worker_rings_merge_sorted_and_stamp_worker_ids() {
        let t = Telemetry::with_config(TelemetryConfig { trace_capacity: 16 });
        let a = t.register_worker_named("router.0");
        let b = t.register_worker_named("ssd");
        assert_eq!(a.worker_id(), 0);
        assert_eq!(b.worker_id(), 1);
        a.request_event(100, 0, 0, 7, 3, Stage::VsqFetch, PathKind::None);
        b.tag_event(150, 7, Stage::DeviceService, PathKind::Fast);
        a.request_event(200, 0, 0, 7, 3, Stage::VcqComplete, PathKind::None);
        let s = t.snapshot();
        assert_eq!(s.workers, vec!["router.0".to_string(), "ssd".to_string()]);
        assert_eq!(s.ring_dropped, vec![0, 0]);
        let ts: Vec<u64> = s.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![100, 150, 200]);
        assert_eq!(s.events[0].worker, 0);
        assert_eq!(s.events[0].gen, 3);
        assert_eq!(s.events[1].worker, 1);
        assert_eq!(s.events[1].gen, 0);
    }

    #[test]
    fn drain_covers_all_rings_and_late_registrations() {
        let t = Telemetry::with_config(TelemetryConfig { trace_capacity: 8 });
        let a = t.register_worker();
        let mut cur = t.cursor();
        let mut out = Vec::new();
        a.event(10, 0, 0, 1, Stage::VsqFetch, PathKind::None);
        assert_eq!(t.drain(&mut cur, &mut out), 0);
        assert_eq!(out.len(), 1);
        // A worker registered after the cursor was created is still seen.
        let b = t.register_worker();
        b.tag_event(20, 1, Stage::DeviceService, PathKind::Fast);
        a.event(30, 0, 0, 1, Stage::VcqComplete, PathKind::None);
        assert_eq!(t.drain(&mut cur, &mut out), 0);
        assert_eq!(out.len(), 3);
        // Overrun one ring: drain reports the loss.
        for i in 0..20 {
            a.event(40 + i, 0, 0, 2, Stage::VsqFetch, PathKind::None);
        }
        let missed = t.drain(&mut cur, &mut out);
        assert_eq!(missed, 12);
        assert_eq!(out.len(), 11);
        let disabled = Telemetry::disabled();
        let mut dcur = disabled.cursor();
        assert_eq!(disabled.drain(&mut dcur, &mut out), 0);
    }

    #[test]
    fn counters_only_path_matches_snapshot() {
        let t = Telemetry::enabled();
        let a = t.register_worker();
        let b = t.register_worker();
        a.add(Metric::Accepted, 3);
        b.add(Metric::BreakerOpens, 2);
        let c = t.counters();
        assert_eq!(c[Metric::Accepted as usize], 3);
        assert_eq!(c[Metric::BreakerOpens as usize], 2);
        assert_eq!(t.snapshot().get(Metric::BreakerOpens), 2);
        assert_eq!(Telemetry::disabled().counters(), [0u64; Metric::COUNT]);
    }
}
