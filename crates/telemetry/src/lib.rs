//! # nvmetro-telemetry
//!
//! Unified request-lifecycle tracing and metrics for the NVMetro datapath.
//!
//! The paper's claims are statements about *where time and CPU go* as a
//! request moves VSQ → classifier → {fast, kernel, notify} path → VCQ.
//! This crate makes that visible without slowing the path down:
//!
//! * **Lifecycle tracing** — every stage emits a fixed-size [`TraceEvent`]
//!   into a lock-free ring ([`TraceRing`]); a request's journey is
//!   reassembled from the ring by `(vm, vsq, tag)`.
//! * **Sharded metrics** — each worker registers for its own
//!   cacheline-padded cell of relaxed atomic counters ([`Metric`]),
//!   summed only at snapshot time.
//! * **Latency histograms** — VSQ→VCQ latency split by [`Route`] and
//!   stage-segment durations ([`Segment`]), merged across shards with
//!   `Histogram::merge`.
//! * **Snapshots** — [`TelemetrySnapshot`] renders as a human table, CSV,
//!   or JSON.
//!
//! ## Clock discipline
//!
//! The subsystem never reads a clock. Every instrumentation point takes an
//! explicit nanosecond timestamp, so virtual-time runs pass the DES `now`
//! and real-thread runs pass an OS monotonic reading — tracing behaves
//! identically in both modes.
//!
//! ## Cost when disabled
//!
//! [`Telemetry::disabled`] (the default everywhere) hands out handles whose
//! instrumentation methods are a single `Option` branch — no atomics, no
//! allocation, no clock reads. `micro_datapath` benches the disabled path
//! against the enabled one.

mod event;
mod metrics;
mod ring;
mod snapshot;

pub use event::{Depth, Ns, PathKind, Route, Segment, Stage, Tier, TraceEvent, VM_ANY};
pub use metrics::Metric;
pub use ring::TraceRing;
pub use snapshot::{lifecycle_table, RequestKey, TelemetrySnapshot};

use metrics::Shard;
use nvmetro_stats::Histogram;
use std::sync::{Arc, Mutex};

/// Registry configuration.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Trace-ring capacity in events (rounded up to a power of two).
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 4096,
        }
    }
}

struct Inner {
    ring: TraceRing,
    shards: Mutex<Vec<Arc<Shard>>>,
}

/// The telemetry registry. Clone-able; all clones share the same ring and
/// shard list. A disabled registry (the default) costs nothing.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A registry that records nothing; its handles compile down to one
    /// branch per instrumentation call.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled registry with the default configuration.
    pub fn enabled() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// An enabled registry with an explicit configuration.
    pub fn with_config(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                ring: TraceRing::new(cfg.trace_capacity),
                shards: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers one worker (router, device, UIF runner, ...) and returns
    /// its private handle. On a disabled registry this returns a disabled
    /// handle. Registration is cold-path; call it at rig-build time.
    pub fn register_worker(&self) -> TelemetryHandle {
        match &self.inner {
            None => TelemetryHandle::disabled(),
            Some(inner) => {
                let shard = Arc::new(Shard::new());
                inner.shards.lock().unwrap().push(shard.clone());
                TelemetryHandle {
                    inner: Some(inner.clone()),
                    shard: Some(shard),
                }
            }
        }
    }

    /// Aggregates counters and histograms across all shards and copies the
    /// trace ring. A disabled registry returns an empty snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = match &self.inner {
            None => return TelemetrySnapshot::empty(),
            Some(inner) => inner,
        };
        let mut counters = [0u64; Metric::COUNT];
        let mut route: [Histogram; Route::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut segment: [Histogram; Segment::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut depth: [Histogram; Depth::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut tier: [Histogram; Tier::COUNT] = std::array::from_fn(|_| Histogram::new());
        for shard in inner.shards.lock().unwrap().iter() {
            for m in Metric::ALL {
                counters[m as usize] += shard.counter(m);
            }
            shard.merge_hists_into(&mut route, &mut segment, &mut depth, &mut tier);
        }
        TelemetrySnapshot {
            counters,
            route_latency: route,
            segments: segment,
            depths: depth,
            tiers: tier,
            events: inner.ring.snapshot(),
            dropped_events: inner.ring.dropped(),
        }
    }
}

/// One worker's instrumentation handle. Counter increments go to the
/// worker's private shard; trace events go to the shared ring. All methods
/// are no-ops (one branch) on a disabled handle.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Inner>>,
    shard: Option<Arc<Shard>>,
}

impl TelemetryHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TelemetryHandle {
            inner: None,
            shard: None,
        }
    }

    /// Whether this handle records anything. Callers can use this to skip
    /// building event arguments that are themselves costly.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments a counter by one.
    #[inline]
    pub fn count(&self, m: Metric) {
        self.add(m, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        if let Some(shard) = &self.shard {
            shard.add(m, n);
        }
    }

    /// Emits one lifecycle trace event.
    #[inline]
    pub fn event(&self, ts_ns: Ns, vm: u32, vsq: u16, tag: u16, stage: Stage, path: PathKind) {
        if let Some(inner) = &self.inner {
            inner.ring.push(TraceEvent {
                ts_ns,
                vm,
                vsq,
                tag,
                stage,
                path,
            });
        }
    }

    /// Emits a below-router event (device/kernel/UIF), which only knows the
    /// routing tag.
    #[inline]
    pub fn tag_event(&self, ts_ns: Ns, tag: u16, stage: Stage, path: PathKind) {
        self.event(ts_ns, VM_ANY, 0, tag, stage, path);
    }

    /// Records one completed request's VSQ→VCQ latency under its route.
    #[inline]
    pub fn route_latency(&self, route: Route, ns: u64) {
        if let Some(shard) = &self.shard {
            shard.record_route(route, ns);
        }
    }

    /// Records one stage-segment duration.
    #[inline]
    pub fn segment(&self, seg: Segment, ns: u64) {
        if let Some(shard) = &self.shard {
            shard.record_segment(seg, ns);
        }
    }

    /// Records one occupancy/batch-size sample (queue depth at a visit,
    /// CQEs per coalesced flush, ...).
    #[inline]
    pub fn depth(&self, d: Depth, value: u64) {
        if let Some(shard) = &self.shard {
            shard.record_depth(d, value);
        }
    }

    /// Records one classifier invocation's latency under the execution
    /// tier that answered it (interpreter / compiled / memo hit).
    #[inline]
    pub fn tier_latency(&self, t: Tier, ns: u64) {
        if let Some(shard) = &self.shard {
            shard.record_tier(t, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let h = t.register_worker();
        assert!(!h.enabled());
        h.count(Metric::Accepted);
        h.event(1, 0, 0, 0, Stage::VsqFetch, PathKind::None);
        h.route_latency(Route::Fast, 100);
        h.segment(Segment::IngressToDispatch, 10);
        let s = t.snapshot();
        assert_eq!(s.get(Metric::Accepted), 0);
        assert!(s.events.is_empty());
    }

    #[test]
    fn default_handle_is_disabled() {
        let h = TelemetryHandle::default();
        assert!(!h.enabled());
    }

    #[test]
    fn counters_aggregate_across_workers() {
        let t = Telemetry::enabled();
        let a = t.register_worker();
        let b = t.register_worker();
        a.count(Metric::Accepted);
        a.add(Metric::Accepted, 4);
        b.add(Metric::Accepted, 10);
        b.count(Metric::DeviceIos);
        let s = t.snapshot();
        assert_eq!(s.get(Metric::Accepted), 15);
        assert_eq!(s.get(Metric::DeviceIos), 1);
    }

    #[test]
    fn events_and_latency_reach_snapshot() {
        let t = Telemetry::with_config(TelemetryConfig { trace_capacity: 16 });
        let h = t.register_worker();
        h.event(100, 3, 0, 9, Stage::VsqFetch, PathKind::None);
        h.event(110, 3, 0, 9, Stage::Dispatched, PathKind::Kernel);
        h.tag_event(150, 9, Stage::KernelService, PathKind::Kernel);
        h.event(160, 3, 0, 9, Stage::VcqComplete, PathKind::None);
        h.route_latency(Route::Kernel, 60);
        h.segment(Segment::DispatchToService, 40);
        let s = t.snapshot();
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.route_hist(Route::Kernel).count(), 1);
        assert_eq!(s.route_hist(Route::Kernel).max(), 60);
        assert_eq!(s.segment_hist(Segment::DispatchToService).max(), 40);
        let stages = s.lifecycle_stages(3, 0, 9);
        assert_eq!(
            stages,
            vec![
                Stage::VsqFetch,
                Stage::Dispatched,
                Stage::KernelService,
                Stage::VcqComplete
            ]
        );
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        let h = t.register_worker();
        h.count(Metric::Completed);
        assert_eq!(t2.snapshot().get(Metric::Completed), 1);
    }
}
