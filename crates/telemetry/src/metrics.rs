//! Sharded lock-free metric counters.
//!
//! Each registered worker gets its own cacheline-padded cell of relaxed
//! atomics, so hot-path increments never bounce a line between cores; the
//! snapshot path sums across shards. Latency histograms live behind a
//! per-shard mutex that is uncontended on the hot path (only that worker
//! records into it) and is taken across shards only at snapshot time.

use crate::event::{Depth, Route, Segment, Tier};
use nvmetro_stats::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Every counter the datapath exports, one fixed slot per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Commands accepted from guest VSQs.
    Accepted = 0,
    /// Classifier program executions (all hooks).
    ClassifierRuns = 1,
    /// Commands sent to the device hardware queue.
    SentFast = 2,
    /// Commands sent to the kernel path.
    SentKernel = 3,
    /// Commands sent to the notify path.
    SentNotify = 4,
    /// Commands sent to more than one path at once.
    Multicasts = 5,
    /// CQEs posted back to guest VCQs.
    Completed = 6,
    /// Requests completed with an error status.
    Errors = 7,
    /// Spurious/unmatched completions observed.
    Spurious = 8,
    /// I/Os the physical device serviced.
    DeviceIos = 9,
    /// I/Os the kernel block/DM stack serviced.
    KernelIos = 10,
    /// Notify-path requests handed to a UIF.
    UifRequests = 11,
    /// UIF responses returned over the NCQ.
    UifResponses = 12,
    /// Backend I/Os issued by UIFs.
    UifBackendIos = 13,
    /// Completions that re-entered a classifier hook.
    HookReentries = 14,
    /// Admin commands served by a virtual controller.
    AdminCmds = 15,
    /// Encrypt/decrypt operations performed by the encryption function.
    CryptoOps = 16,
    /// Writes the replication function forwarded to the secondary.
    ReplicaWrites = 17,
    /// Faults injected by an active fault plan (all sites).
    FaultsInjected = 18,
    /// Commands re-dispatched by the router after a retryable failure.
    Retries = 19,
    /// Commands aborted by the router after missing their deadline.
    Aborts = 20,
    /// Fast-path commands failed over to the kernel path by the breaker.
    Failovers = 21,
    /// Completions dropped from the bounded VCQ retry buffer.
    VcqRetryDrops = 22,
    /// Completions that arrived after their command was aborted.
    LateCompletions = 23,
    /// Times the replicator entered degraded mode (leg down).
    DegradedEnters = 24,
    /// Times the replicator exited degraded mode (resync drained).
    DegradedExits = 25,
    /// Dirty regions replayed to a recovered replica leg.
    ResyncWrites = 26,
    /// Guest doorbell notifies issued for coalesced VCQ flushes (one per
    /// (vm, vsq) group per flush, however many CQEs the flush carried).
    CqNotifies = 27,
    /// Coalesced VCQ flushes performed (one per poll that posted CQEs).
    CqBatches = 28,
    /// Classifier invocations answered by the fetch/decode interpreter.
    ClassifierInterp = 29,
    /// Classifier invocations answered by the pre-decoded compiled tier.
    ClassifierCompiled = 30,
    /// Classifier invocations answered from the verdict memo cache.
    ClassifierCacheHit = 31,
    /// Circuit-breaker transitions into the Open state.
    BreakerOpens = 32,
    /// Stall-watchdog observation ticks performed.
    WatchdogTicks = 33,
    /// Queues the watchdog flagged as stalled (nonempty, no progress).
    StallsDetected = 34,
    /// Stalled queues the watchdog later observed making progress again.
    StallsCleared = 35,
    /// Breaker flap episodes (repeated opens within adjacent watchdog
    /// windows) flagged by the watchdog.
    BreakerFlaps = 36,
    /// Completed requests that exceeded their route's SLO objective.
    SloViolations = 37,
    /// Duplicate cross-VM reads parked as coalescing followers instead of
    /// being dispatched to the device.
    CoalescedReads = 38,
    /// Follower completions fanned out from a coalescing leader's
    /// terminal completion.
    CoalesceFanout = 39,
    /// Admissions the fleet scheduler denied because the tenant's token
    /// bucket was empty (throttle applied to the tenant's traffic —
    /// including buckets tightened by the insight feedback loop).
    ThrottleApplied = 40,
    /// Tenant drain-loop preemptions: the fleet scheduler cut a tenant's
    /// round short because its DRR deficit ran dry with work still queued.
    SchedulerPreemptions = 41,
    /// Live-servicing snapshots taken of a quiesced engine.
    SnapshotsTaken = 42,
    /// Engines restored from a servicing snapshot.
    Restores = 43,
    /// Online reshard operations (shard count changed under load).
    Reshards = 44,
    /// Unanswered in-flight requests re-dispatched on a restored engine.
    ReplayedRequests = 45,
    /// Completions from a pre-snapshot engine generation dropped at the
    /// quarantine instead of re-entering a live request's state machine.
    EpochLateDrops = 46,
    /// VMs hot-attached to a running engine.
    VmAttaches = 47,
    /// VMs hot-detached from a running engine.
    VmDetaches = 48,
    /// Poll-governor mode changes (Spin→Yield, Yield→Parked, any wake).
    PollModeTransitions = 49,
    /// Shards entering Parked (event-driven sleep, ~0 CPU).
    ShardParks = 50,
    /// Parked shards kicked awake (doorbell/notify or internal timer).
    ShardWakes = 51,
    /// Batch auto-tuner moves (per-shard batch size changed).
    BatchRetunes = 52,
}

impl Metric {
    /// Number of metric slots.
    pub const COUNT: usize = 53;

    /// All metrics in slot order.
    pub const ALL: [Metric; Metric::COUNT] = [
        Metric::Accepted,
        Metric::ClassifierRuns,
        Metric::SentFast,
        Metric::SentKernel,
        Metric::SentNotify,
        Metric::Multicasts,
        Metric::Completed,
        Metric::Errors,
        Metric::Spurious,
        Metric::DeviceIos,
        Metric::KernelIos,
        Metric::UifRequests,
        Metric::UifResponses,
        Metric::UifBackendIos,
        Metric::HookReentries,
        Metric::AdminCmds,
        Metric::CryptoOps,
        Metric::ReplicaWrites,
        Metric::FaultsInjected,
        Metric::Retries,
        Metric::Aborts,
        Metric::Failovers,
        Metric::VcqRetryDrops,
        Metric::LateCompletions,
        Metric::DegradedEnters,
        Metric::DegradedExits,
        Metric::ResyncWrites,
        Metric::CqNotifies,
        Metric::CqBatches,
        Metric::ClassifierInterp,
        Metric::ClassifierCompiled,
        Metric::ClassifierCacheHit,
        Metric::BreakerOpens,
        Metric::WatchdogTicks,
        Metric::StallsDetected,
        Metric::StallsCleared,
        Metric::BreakerFlaps,
        Metric::SloViolations,
        Metric::CoalescedReads,
        Metric::CoalesceFanout,
        Metric::ThrottleApplied,
        Metric::SchedulerPreemptions,
        Metric::SnapshotsTaken,
        Metric::Restores,
        Metric::Reshards,
        Metric::ReplayedRequests,
        Metric::EpochLateDrops,
        Metric::VmAttaches,
        Metric::VmDetaches,
        Metric::PollModeTransitions,
        Metric::ShardParks,
        Metric::ShardWakes,
        Metric::BatchRetunes,
    ];

    /// Stable snake_case name for tables and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Accepted => "accepted",
            Metric::ClassifierRuns => "classifier_runs",
            Metric::SentFast => "sent_fast",
            Metric::SentKernel => "sent_kernel",
            Metric::SentNotify => "sent_notify",
            Metric::Multicasts => "multicasts",
            Metric::Completed => "completed",
            Metric::Errors => "errors",
            Metric::Spurious => "spurious",
            Metric::DeviceIos => "device_ios",
            Metric::KernelIos => "kernel_ios",
            Metric::UifRequests => "uif_requests",
            Metric::UifResponses => "uif_responses",
            Metric::UifBackendIos => "uif_backend_ios",
            Metric::HookReentries => "hook_reentries",
            Metric::AdminCmds => "admin_cmds",
            Metric::CryptoOps => "crypto_ops",
            Metric::ReplicaWrites => "replica_writes",
            Metric::FaultsInjected => "faults_injected",
            Metric::Retries => "retries",
            Metric::Aborts => "aborts",
            Metric::Failovers => "failovers",
            Metric::VcqRetryDrops => "vcq_retry_drops",
            Metric::LateCompletions => "late_completions",
            Metric::DegradedEnters => "degraded_enters",
            Metric::DegradedExits => "degraded_exits",
            Metric::ResyncWrites => "resync_writes",
            Metric::CqNotifies => "cq_notifies",
            Metric::CqBatches => "cq_batches",
            Metric::ClassifierInterp => "classifier_interp",
            Metric::ClassifierCompiled => "classifier_compiled",
            Metric::ClassifierCacheHit => "classifier_cache_hit",
            Metric::BreakerOpens => "breaker_opens",
            Metric::WatchdogTicks => "watchdog_ticks",
            Metric::StallsDetected => "stalls_detected",
            Metric::StallsCleared => "stalls_cleared",
            Metric::BreakerFlaps => "breaker_flaps",
            Metric::SloViolations => "slo_violations",
            Metric::CoalescedReads => "coalesced_reads",
            Metric::CoalesceFanout => "coalesce_fanout",
            Metric::ThrottleApplied => "throttle_applied",
            Metric::SchedulerPreemptions => "scheduler_preemptions",
            Metric::SnapshotsTaken => "snapshots_taken",
            Metric::Restores => "restores",
            Metric::Reshards => "reshards",
            Metric::ReplayedRequests => "replayed_requests",
            Metric::EpochLateDrops => "epoch_late_drops",
            Metric::VmAttaches => "vm_attaches",
            Metric::VmDetaches => "vm_detaches",
            Metric::PollModeTransitions => "poll_mode_transitions",
            Metric::ShardParks => "shard_parks",
            Metric::ShardWakes => "shard_wakes",
            Metric::BatchRetunes => "batch_retunes",
        }
    }
}

pub(crate) struct ShardHists {
    pub route: [Histogram; Route::COUNT],
    pub segment: [Histogram; Segment::COUNT],
    pub depth: [Histogram; Depth::COUNT],
    pub tier: [Histogram; Tier::COUNT],
}

impl ShardHists {
    fn new() -> Self {
        ShardHists {
            route: std::array::from_fn(|_| Histogram::new()),
            segment: std::array::from_fn(|_| Histogram::new()),
            depth: std::array::from_fn(|_| Histogram::new()),
            tier: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// One worker's private metric cell. Aligned out to its own cache line so
/// two workers' relaxed increments never share a line.
#[repr(align(128))]
pub(crate) struct Shard {
    counters: [AtomicU64; Metric::COUNT],
    hists: Mutex<ShardHists>,
}

impl Shard {
    pub(crate) fn new() -> Self {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: Mutex::new(ShardHists::new()),
        }
    }

    #[inline]
    pub(crate) fn add(&self, m: Metric, n: u64) {
        self.counters[m as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_route(&self, route: Route, ns: u64) {
        self.hists.lock().unwrap().route[route as usize].record(ns);
    }

    #[inline]
    pub(crate) fn record_segment(&self, seg: Segment, ns: u64) {
        self.hists.lock().unwrap().segment[seg as usize].record(ns);
    }

    #[inline]
    pub(crate) fn record_depth(&self, d: Depth, value: u64) {
        self.hists.lock().unwrap().depth[d as usize].record(value);
    }

    #[inline]
    pub(crate) fn record_tier(&self, t: Tier, ns: u64) {
        self.hists.lock().unwrap().tier[t as usize].record(ns);
    }

    pub(crate) fn counter(&self, m: Metric) -> u64 {
        self.counters[m as usize].load(Ordering::Relaxed)
    }

    pub(crate) fn merge_hists_into(
        &self,
        route: &mut [Histogram; Route::COUNT],
        segment: &mut [Histogram; Segment::COUNT],
        depth: &mut [Histogram; Depth::COUNT],
        tier: &mut [Histogram; Tier::COUNT],
    ) {
        let h = self.hists.lock().unwrap();
        for (dst, src) in route.iter_mut().zip(h.route.iter()) {
            dst.merge(src);
        }
        for (dst, src) in segment.iter_mut().zip(h.segment.iter()) {
            dst.merge(src);
        }
        for (dst, src) in depth.iter_mut().zip(h.depth.iter()) {
            dst.merge(src);
        }
        for (dst, src) in tier.iter_mut().zip(h.tier.iter()) {
            dst.merge(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_and_reads_back() {
        let s = Shard::new();
        s.add(Metric::Accepted, 3);
        s.add(Metric::Accepted, 2);
        s.add(Metric::Errors, 1);
        assert_eq!(s.counter(Metric::Accepted), 5);
        assert_eq!(s.counter(Metric::Errors), 1);
        assert_eq!(s.counter(Metric::Completed), 0);
    }

    #[test]
    fn shard_is_cacheline_padded() {
        assert_eq!(std::mem::align_of::<Shard>(), 128);
    }

    #[test]
    fn histograms_merge_across_shards() {
        let a = Shard::new();
        let b = Shard::new();
        a.record_route(Route::Fast, 100);
        b.record_route(Route::Fast, 300);
        b.record_segment(Segment::DispatchToService, 50);
        a.record_depth(Depth::CqBatch, 4);
        a.record_tier(Tier::Compiled, 120);
        b.record_tier(Tier::Compiled, 80);
        b.record_tier(Tier::CacheHit, 15);
        let mut route: [Histogram; Route::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut seg: [Histogram; Segment::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut depth: [Histogram; Depth::COUNT] = std::array::from_fn(|_| Histogram::new());
        let mut tier: [Histogram; Tier::COUNT] = std::array::from_fn(|_| Histogram::new());
        a.merge_hists_into(&mut route, &mut seg, &mut depth, &mut tier);
        b.merge_hists_into(&mut route, &mut seg, &mut depth, &mut tier);
        assert_eq!(route[Route::Fast as usize].count(), 2);
        assert_eq!(route[Route::Fast as usize].min(), 100);
        assert_eq!(seg[Segment::DispatchToService as usize].count(), 1);
        assert_eq!(depth[Depth::CqBatch as usize].max(), 4);
        assert_eq!(tier[Tier::Compiled as usize].count(), 2);
        assert_eq!(tier[Tier::Compiled as usize].min(), 80);
        assert_eq!(tier[Tier::CacheHit as usize].max(), 15);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT);
    }
}
