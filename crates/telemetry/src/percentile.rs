//! The one histogram-summary helper.
//!
//! Before this module existed, the snapshot renderer, the bench binaries,
//! and the workloads runner each hand-rolled their own
//! count/mean/p50/p99/max extraction from a [`Histogram`]. They now all go
//! through [`Percentiles::of`], so every table, CSV, JSON blob, and
//! Prometheus exposition reports the same quantile definitions.

use nvmetro_stats::Histogram;

/// Fixed summary of one histogram: the quantile set every NVMetro export
/// uses.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Percentiles {
    /// Number of recorded samples.
    pub count: u64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

impl Percentiles {
    /// Summarizes `h`. An empty histogram yields all zeros.
    pub fn of(h: &Histogram) -> Self {
        if h.count() == 0 {
            return Percentiles::default();
        }
        Percentiles {
            count: h.count(),
            mean: h.mean(),
            min: h.min(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
        }
    }

    /// Renders as a JSON object (keys `count`, `mean`, `min`, `p50`,
    /// `p90`, `p99`, `p999`, `max`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{:.1},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
            self.count, self.mean, self.min, self.p50, self.p90, self.p99, self.p999, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let p = Percentiles::of(&Histogram::new());
        assert_eq!(p, Percentiles::default());
        assert_eq!(p.count, 0);
    }

    #[test]
    fn matches_histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p = Percentiles::of(&h);
        assert_eq!(p.count, 1000);
        assert_eq!(p.min, h.min());
        assert_eq!(p.max, h.max());
        assert_eq!(p.p50, h.median());
        assert_eq!(p.p99, h.p99());
        assert_eq!(p.p999, h.quantile(0.999));
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
        assert!((p.mean - h.mean()).abs() < 1e-9);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = Histogram::new();
        h.record(42);
        let j = Percentiles::of(&h).to_json();
        for key in ["count", "mean", "min", "p50", "p90", "p99", "p999", "max"] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
