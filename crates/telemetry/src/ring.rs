//! Fixed-size lock-free trace ring.
//!
//! Writers claim a ticket with one relaxed `fetch_add` and publish their
//! event into `slot = ticket % capacity` under a per-slot sequence word
//! (seqlock-style): the slot is marked busy, the event is written, then the
//! sequence is set to `ticket + 1` with release ordering. Snapshot readers
//! validate each slot by re-reading the sequence after copying the event,
//! so a concurrent overwrite is detected and the slot skipped rather than
//! returned torn. When the ring wraps, the oldest events are overwritten —
//! tracing never blocks the datapath and never allocates after startup.

use crate::event::TraceEvent;
use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};

const SEQ_EMPTY: u64 = 0;
const SEQ_BUSY: u64 = u64::MAX;

struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<TraceEvent>,
}

/// Lock-free multi-producer ring of [`TraceEvent`] records.
///
/// Slot storage is allocated lazily on the first push: a registered worker
/// that never traces (a counters-only observer like the stall watchdog)
/// costs a few words, not `capacity * sizeof(TraceEvent)` of zeroed pages.
pub struct TraceRing {
    slots: std::sync::OnceLock<Box<[Slot]>>,
    cursor: AtomicU64,
    mask: u64,
}

// SAFETY: slots are published/consumed under the per-slot `seq` protocol
// described in the module docs; `data` is only read by snapshotters that
// validate `seq` before and after the (volatile) copy.
unsafe impl Sync for TraceRing {}
unsafe impl Send for TraceRing {}

impl TraceRing {
    /// Creates a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        TraceRing {
            slots: std::sync::OnceLock::new(),
            cursor: AtomicU64::new(0),
            mask: (cap - 1) as u64,
        }
    }

    fn slots(&self) -> &[Slot] {
        self.slots.get_or_init(|| {
            (0..self.capacity())
                .map(|_| Slot {
                    seq: AtomicU64::new(SEQ_EMPTY),
                    data: UnsafeCell::new(TraceEvent::default()),
                })
                .collect()
        })
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Total events ever pushed (including any that have been overwritten).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Publishes one event. Lock-free; overwrites the oldest slot when full.
    pub fn push(&self, ev: TraceEvent) {
        let slots = self.slots();
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &slots[(ticket & self.mask) as usize];
        slot.seq.store(SEQ_BUSY, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: concurrent writers to the same slot are only possible
        // after a full ring wrap; the seq protocol makes readers discard
        // any slot observed mid-write.
        unsafe { std::ptr::write_volatile(slot.data.get(), ev) };
        fence(Ordering::Release);
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Incrementally drains events published since `*next` (a ticket
    /// cursor owned by the caller, starting at 0) into `out`, oldest
    /// first, and advances the cursor to the current head. Returns the
    /// number of events *missed*: tickets that fell between the cursor
    /// and the oldest slot still resident (ring wrap outran the reader)
    /// plus slots that failed seqlock validation (overwritten mid-copy).
    /// Draining never blocks writers; a live consumer polling faster
    /// than one `capacity` of pushes loses nothing.
    pub fn drain(&self, next: &mut u64, out: &mut Vec<TraceEvent>) -> u64 {
        self.drain_with(next, |ev| out.push(ev))
    }

    /// Zero-copy variant of [`TraceRing::drain`]: the visitor is invoked
    /// once per validated event, oldest first, with no intermediate
    /// buffer. Same cursor and missed-count semantics.
    pub fn drain_with(&self, next: &mut u64, mut f: impl FnMut(TraceEvent)) -> u64 {
        let head = self.cursor.load(Ordering::Acquire);
        if *next >= head {
            return 0;
        }
        let Some(slots) = self.slots.get() else {
            return 0;
        };
        let oldest = head.saturating_sub(self.capacity() as u64);
        let start = (*next).max(oldest);
        let mut missed = start - *next;
        for ticket in start..head {
            let slot = &slots[(ticket & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != ticket + 1 {
                // Overwritten by a wrap (or still being written); lost.
                missed += 1;
                continue;
            }
            // SAFETY: validated by re-reading `seq` after the copy, as in
            // `snapshot`.
            let ev = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                f(ev);
            } else {
                missed += 1;
            }
        }
        *next = head;
        missed
    }

    /// [`TraceRing::drain_with`] restricted to a stage set: `mask` has bit
    /// `1 << (stage as u32)` set for every stage the visitor wants. Only
    /// the one-byte stage field is read (and seqlock-validated) for
    /// filtered-out events, so a consumer interested in a couple of
    /// lifecycle stages skips most of the per-event copy cost. Cursor and
    /// missed-count semantics match [`TraceRing::drain`]; filtered events
    /// are consumed, not missed.
    pub fn drain_stages(&self, next: &mut u64, mask: u32, mut f: impl FnMut(TraceEvent)) -> u64 {
        let head = self.cursor.load(Ordering::Acquire);
        if *next >= head {
            return 0;
        }
        let Some(slots) = self.slots.get() else {
            return 0;
        };
        let oldest = head.saturating_sub(self.capacity() as u64);
        let start = (*next).max(oldest);
        let mut missed = start - *next;
        for ticket in start..head {
            let slot = &slots[(ticket & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != ticket + 1 {
                missed += 1;
                continue;
            }
            // SAFETY: peek a single Copy field; validity is established by
            // re-reading `seq` afterwards, as for the full copy below.
            let stage = unsafe { std::ptr::addr_of!((*slot.data.get()).stage).read_volatile() };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                missed += 1;
                continue;
            }
            if mask & (1u32 << stage as u32) == 0 {
                continue;
            }
            // SAFETY: validated by re-reading `seq` after the copy.
            let ev = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                f(ev);
            } else {
                missed += 1;
            }
        }
        *next = head;
        missed
    }

    /// Copies out every currently-valid event, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let Some(slots) = self.slots.get() else {
            return Vec::new();
        };
        let mut keyed: Vec<(u64, TraceEvent)> = Vec::with_capacity(slots.len());
        for slot in slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == SEQ_EMPTY || s1 == SEQ_BUSY {
                continue;
            }
            // SAFETY: validated by re-reading `seq` after the copy.
            let ev = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                keyed.push((s1 - 1, ev));
            }
        }
        keyed.sort_unstable_by_key(|(ticket, _)| *ticket);
        keyed.into_iter().map(|(_, ev)| ev).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PathKind, Stage};

    fn ev(ts: u64, tag: u16) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            vm: 0,
            tag,
            stage: Stage::VsqFetch,
            path: PathKind::None,
            ..TraceEvent::default()
        }
    }

    #[test]
    fn snapshot_returns_pushed_events_in_order() {
        let r = TraceRing::new(8);
        for i in 0..5 {
            r.push(ev(i, i as u16));
        }
        let s = r.snapshot();
        assert_eq!(s.len(), 5);
        for (i, e) in s.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wrap_keeps_newest_and_counts_drops() {
        let r = TraceRing::new(4);
        for i in 0..10 {
            r.push(ev(i, i as u16));
        }
        let s = r.snapshot();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].ts_ns, 6);
        assert_eq!(s[3].ts_ns, 9);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(TraceRing::new(100).capacity(), 128);
        assert_eq!(TraceRing::new(0).capacity(), 2);
    }

    #[test]
    fn concurrent_pushers_never_tear() {
        use std::sync::Arc;
        let r = Arc::new(TraceRing::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    // Encode the writer id in every field so a torn read
                    // would produce an inconsistent record.
                    let v = t * 1_000_000 + i;
                    r.push(TraceEvent {
                        ts_ns: v,
                        vm: t as u32,
                        vsq: t as u16,
                        tag: t as u16,
                        stage: Stage::VsqFetch,
                        path: PathKind::None,
                        ..TraceEvent::default()
                    });
                }
            }));
        }
        for _ in 0..50 {
            for e in r.snapshot() {
                assert_eq!(e.vm as u64, e.ts_ns / 1_000_000);
                assert_eq!(e.vm as u16, e.vsq);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 40_000);
    }

    #[test]
    fn drain_is_incremental_and_lossless_when_keeping_up() {
        let r = TraceRing::new(8);
        let mut cursor = 0u64;
        let mut out = Vec::new();
        for i in 0..5 {
            r.push(ev(i, i as u16));
        }
        assert_eq!(r.drain(&mut cursor, &mut out), 0);
        assert_eq!(out.len(), 5);
        // Nothing new: drain is a no-op.
        assert_eq!(r.drain(&mut cursor, &mut out), 0);
        assert_eq!(out.len(), 5);
        for i in 5..20 {
            r.push(ev(i, i as u16));
            assert_eq!(r.drain(&mut cursor, &mut out), 0);
        }
        assert_eq!(out.len(), 20);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
        }
    }

    #[test]
    fn drain_counts_events_lost_to_wrap() {
        let r = TraceRing::new(4);
        let mut cursor = 0u64;
        let mut out = Vec::new();
        for i in 0..10 {
            r.push(ev(i, i as u16));
        }
        // 10 pushed into 4 slots: only the newest 4 survive.
        let missed = r.drain(&mut cursor, &mut out);
        assert_eq!(missed, 6);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].ts_ns, 6);
        assert_eq!(out[3].ts_ns, 9);
        assert_eq!(cursor, 10);
    }
}
