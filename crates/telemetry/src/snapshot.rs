//! Point-in-time telemetry snapshot: aggregated counters, merged latency
//! histograms, the trace-ring contents, and lifecycle reassembly.

use crate::event::{Depth, Route, Segment, Stage, Tier, TraceEvent, VM_ANY};
use crate::metrics::Metric;
use crate::percentile::Percentiles;
use nvmetro_stats::{Histogram, Table};
use std::fmt::Write as _;

/// Identity of one traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// Owning VM id.
    pub vm: u32,
    /// Virtual submission queue index.
    pub vsq: u16,
    /// Router routing-table tag.
    pub tag: u16,
}

/// Everything the telemetry subsystem knows at one instant. Cheap to hold;
/// detached from the live registry.
pub struct TelemetrySnapshot {
    /// Counter totals, summed across worker shards, indexed by [`Metric`].
    pub counters: [u64; Metric::COUNT],
    /// VSQ→VCQ latency split by route.
    pub route_latency: [Histogram; Route::COUNT],
    /// Stage-segment durations.
    pub segments: [Histogram; Segment::COUNT],
    /// Occupancy/batch-size distributions (queue depth, CQEs per flush).
    pub depths: [Histogram; Depth::COUNT],
    /// Classifier invocation latency split by execution tier
    /// (interpreter / compiled / memo hit).
    pub tiers: [Histogram; Tier::COUNT],
    /// All workers' trace-ring contents, merged, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap-around, summed over all rings.
    pub dropped_events: u64,
    /// Registered worker names, indexed by `TraceEvent::worker`.
    pub workers: Vec<String>,
    /// Events lost to wrap-around per worker ring (same indexing as
    /// `workers`) — lets span assembly report coverage per shard.
    pub ring_dropped: Vec<u64>,
}

impl TelemetrySnapshot {
    /// An all-empty snapshot (what a disabled registry returns).
    pub fn empty() -> Self {
        TelemetrySnapshot {
            counters: [0; Metric::COUNT],
            route_latency: std::array::from_fn(|_| Histogram::new()),
            segments: std::array::from_fn(|_| Histogram::new()),
            depths: std::array::from_fn(|_| Histogram::new()),
            tiers: std::array::from_fn(|_| Histogram::new()),
            events: Vec::new(),
            dropped_events: 0,
            workers: Vec::new(),
            ring_dropped: Vec::new(),
        }
    }

    /// Counter total for one metric.
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize]
    }

    /// Latency histogram for one route.
    pub fn route_hist(&self, r: Route) -> &Histogram {
        &self.route_latency[r as usize]
    }

    /// Duration histogram for one stage segment.
    pub fn segment_hist(&self, s: Segment) -> &Histogram {
        &self.segments[s as usize]
    }

    /// Occupancy/batch-size histogram for one depth series.
    pub fn depth_hist(&self, d: Depth) -> &Histogram {
        &self.depths[d as usize]
    }

    /// Classifier latency histogram for one execution tier.
    pub fn tier_hist(&self, t: Tier) -> &Histogram {
        &self.tiers[t as usize]
    }

    /// Identities of all requests whose `VsqFetch` event is still in the
    /// ring, in arrival order.
    pub fn requests(&self) -> Vec<RequestKey> {
        self.events
            .iter()
            .filter(|e| e.stage == Stage::VsqFetch)
            .map(|e| RequestKey {
                vm: e.vm,
                vsq: e.vsq,
                tag: e.tag,
            })
            .collect()
    }

    /// Reassembles one request's journey: all router-side events matching
    /// `(vm, vsq, tag)` exactly, plus below-router events (`vm == VM_ANY`)
    /// with the same tag that fall inside the request's accept..complete
    /// window. Returned in chronological order.
    pub fn lifecycle(&self, vm: u32, vsq: u16, tag: u16) -> Vec<TraceEvent> {
        let exact: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.vm == vm && e.vsq == vsq && e.tag == tag)
            .collect();
        if exact.is_empty() {
            return Vec::new();
        }
        let start = exact.iter().map(|e| e.ts_ns).min().unwrap();
        let end = exact.iter().map(|e| e.ts_ns).max().unwrap();
        let mut out: Vec<TraceEvent> = self
            .events
            .iter()
            .filter(|e| {
                (e.vm == vm && e.vsq == vsq && e.tag == tag)
                    || (e.vm == VM_ANY && e.tag == tag && e.ts_ns >= start && e.ts_ns <= end)
            })
            .copied()
            .collect();
        out.sort_by_key(|e| (e.ts_ns, e.stage));
        out
    }

    /// The set of stages present in one request's lifecycle.
    pub fn lifecycle_stages(&self, vm: u32, vsq: u16, tag: u16) -> Vec<Stage> {
        let mut stages: Vec<Stage> = self
            .lifecycle(vm, vsq, tag)
            .iter()
            .map(|e| e.stage)
            .collect();
        stages.sort_unstable();
        stages.dedup();
        stages
    }

    /// Counter totals as a two-column table.
    pub fn counters_table(&self) -> Table {
        let mut t = Table::new("telemetry counters", &["metric", "count"]);
        for m in Metric::ALL {
            t.row(&[m.name().to_string(), self.get(m).to_string()]);
        }
        t
    }

    /// Per-route latency and per-segment duration percentiles as a table.
    pub fn latency_table(&self) -> Table {
        let mut t = Table::new(
            "latency (ns)",
            &["series", "count", "mean", "p50", "p99", "p999", "max"],
        );
        let mut push = |name: &str, h: &Histogram| {
            let p = Percentiles::of(h);
            t.row(&[
                name.to_string(),
                p.count.to_string(),
                format!("{:.0}", p.mean),
                p.p50.to_string(),
                p.p99.to_string(),
                p.p999.to_string(),
                p.max.to_string(),
            ]);
        };
        for r in Route::ALL {
            push(&format!("route/{}", r.name()), self.route_hist(r));
        }
        for s in Segment::ALL {
            push(&format!("segment/{}", s.name()), self.segment_hist(s));
        }
        for d in Depth::ALL {
            push(&format!("depth/{}", d.name()), self.depth_hist(d));
        }
        for tier in Tier::ALL {
            push(&format!("tier/{}", tier.name()), self.tier_hist(tier));
        }
        t
    }

    /// Human-readable rendering: counters table, latency table, and a
    /// one-line trace summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.counters_table().render());
        out.push('\n');
        out.push_str(&self.latency_table().render());
        let _ = writeln!(
            out,
            "\ntrace: {} events buffered, {} dropped across {} worker rings",
            self.events.len(),
            self.dropped_events,
            self.ring_dropped.len().max(1)
        );
        out
    }

    /// Counters and latency series as CSV (`kind,name,field,value` rows).
    pub fn to_csv(&self) -> String {
        let mut t = Table::new("", &["kind", "name", "field", "value"]);
        for m in Metric::ALL {
            t.row(&[
                "counter".into(),
                m.name().into(),
                "count".into(),
                self.get(m).to_string(),
            ]);
        }
        let series = |kind: &str, name: &str, h: &Histogram, t: &mut Table| {
            let p = Percentiles::of(h);
            for (field, v) in [
                ("count", p.count),
                ("p50", p.p50),
                ("p99", p.p99),
                ("p999", p.p999),
                ("max", p.max),
            ] {
                t.row(&[kind.into(), name.into(), field.into(), v.to_string()]);
            }
        };
        for r in Route::ALL {
            series("route", r.name(), self.route_hist(r), &mut t);
        }
        for s in Segment::ALL {
            series("segment", s.name(), self.segment_hist(s), &mut t);
        }
        for d in Depth::ALL {
            series("depth", d.name(), self.depth_hist(d), &mut t);
        }
        for tier in Tier::ALL {
            series("tier", tier.name(), self.tier_hist(tier), &mut t);
        }
        t.to_csv()
    }

    /// Full snapshot as JSON (hand-rolled; all fields are numbers/strings
    /// so no escaping is ever needed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, m) in Metric::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", m.name(), self.get(*m));
        }
        out.push_str("},\"routes\":{");
        let hist_json = |h: &Histogram| Percentiles::of(h).to_json();
        for (i, r) in Route::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", r.name(), hist_json(self.route_hist(*r)));
        }
        out.push_str("},\"segments\":{");
        for (i, s) in Segment::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", s.name(), hist_json(self.segment_hist(*s)));
        }
        out.push_str("},\"depths\":{");
        for (i, d) in Depth::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", d.name(), hist_json(self.depth_hist(*d)));
        }
        out.push_str("},\"tiers\":{");
        for (i, tier) in Tier::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{}",
                tier.name(),
                hist_json(self.tier_hist(*tier))
            );
        }
        let _ = write!(
            out,
            "}},\"dropped_events\":{},\"ring_dropped\":[",
            self.dropped_events
        );
        for (i, d) in self.ring_dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{d}");
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let vm = if e.vm == VM_ANY {
                "null".to_string()
            } else {
                e.vm.to_string()
            };
            let _ = write!(
                out,
                "{{\"ts_ns\":{},\"vm\":{},\"vsq\":{},\"tag\":{},\"gen\":{},\"worker\":{},\"stage\":\"{}\",\"path\":\"{}\"",
                e.ts_ns,
                vm,
                e.vsq,
                e.tag,
                e.gen,
                e.worker,
                e.stage.name(),
                e.path.name()
            );
            if e.link_gen != 0 {
                let _ = write!(
                    out,
                    ",\"link_tag\":{},\"link_gen\":{}",
                    e.link_tag, e.link_gen
                );
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Renders one reassembled lifecycle as an aligned table (stage, path,
/// timestamp, delta from the previous stage).
pub fn lifecycle_table(events: &[TraceEvent]) -> Table {
    let mut t = Table::new(
        "request lifecycle",
        &["ts_ns", "+delta", "stage", "path", "vm"],
    );
    let mut prev: Option<u64> = None;
    for e in events {
        let delta = prev.map_or_else(String::new, |p| format!("+{}", e.ts_ns - p));
        let vm = if e.vm == VM_ANY {
            "-".to_string()
        } else {
            e.vm.to_string()
        };
        t.row(&[
            e.ts_ns.to_string(),
            delta,
            e.stage.name().to_string(),
            e.path.name().to_string(),
            vm,
        ]);
        prev = Some(e.ts_ns);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PathKind;

    fn ev(ts: u64, vm: u32, tag: u16, stage: Stage, path: PathKind) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            vm,
            tag,
            stage,
            path,
            ..TraceEvent::default()
        }
    }

    fn sample() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::empty();
        s.counters[Metric::Accepted as usize] = 2;
        s.counters[Metric::Completed as usize] = 2;
        s.route_latency[Route::Fast as usize].record(1_000);
        s.events = vec![
            ev(10, 0, 7, Stage::VsqFetch, PathKind::None),
            ev(11, 0, 7, Stage::Classified, PathKind::None),
            ev(12, 0, 7, Stage::Dispatched, PathKind::Fast),
            ev(40, VM_ANY, 7, Stage::DeviceService, PathKind::Fast),
            ev(50, 0, 7, Stage::VcqComplete, PathKind::None),
            // A different request reusing the tag later.
            ev(90, 1, 7, Stage::VsqFetch, PathKind::None),
            ev(95, 1, 7, Stage::VcqComplete, PathKind::None),
        ];
        s
    }

    #[test]
    fn lifecycle_matches_window_and_tag() {
        let s = sample();
        let life = s.lifecycle(0, 0, 7);
        let stages: Vec<Stage> = life.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::VsqFetch,
                Stage::Classified,
                Stage::Dispatched,
                Stage::DeviceService,
                Stage::VcqComplete
            ]
        );
        // The second request's events are excluded by the exact-vm filter
        // and the time window.
        let life2 = s.lifecycle(1, 0, 7);
        assert_eq!(life2.len(), 2);
    }

    #[test]
    fn lifecycle_of_unknown_request_is_empty() {
        let s = sample();
        assert!(s.lifecycle(9, 9, 9).is_empty());
    }

    #[test]
    fn requests_lists_fetched_commands() {
        let s = sample();
        let reqs = s.requests();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].vm, 0);
        assert_eq!(reqs[1].vm, 1);
    }

    #[test]
    fn tables_and_exports_contain_counters() {
        let s = sample();
        let txt = s.render();
        assert!(txt.contains("accepted"));
        assert!(txt.contains("route/fast"));
        let csv = s.to_csv();
        assert!(csv.contains("counter,accepted,count,2"));
        let json = s.to_json();
        assert!(json.contains("\"accepted\":2"));
        assert!(json.contains("\"stage\":\"vsq_fetch\""));
        assert!(json.contains("\"vm\":null"));
    }

    #[test]
    fn lifecycle_table_shows_deltas() {
        let s = sample();
        let t = lifecycle_table(&s.lifecycle(0, 0, 7));
        let txt = t.render();
        assert!(
            txt.contains("+28"),
            "expected dispatch→service delta:\n{txt}"
        );
        assert!(txt.contains("device_service"));
    }
}
