//! Label-based program assembler.
//!
//! The storage functions in `nvmetro-functions` write their classifiers
//! against this builder the way the paper's Listing 1 writes C that compiles
//! to eBPF: structured control flow lowered onto forward jumps.

use crate::isa::*;
use crate::maps::MapDef;
use std::collections::HashMap;

/// A forward-referenceable jump target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Assembles vbpf instructions with symbolic labels and declared maps.
#[derive(Default)]
pub struct ProgramBuilder {
    insns: Vec<Insn>,
    bound: HashMap<Label, usize>,
    fixups: Vec<(usize, Label)>,
    next_label: usize,
    maps: Vec<MapDef>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a map usable by this program; returns its map index
    /// (passed to helpers as a scalar).
    pub fn declare_map(&mut self, def: MapDef) -> u32 {
        self.maps.push(def);
        (self.maps.len() - 1) as u32
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.next_label += 1;
        Label(self.next_label - 1)
    }

    /// Binds `label` to the next emitted instruction.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let prev = self.bound.insert(label, self.insns.len());
        assert!(prev.is_none(), "label bound twice");
        self
    }

    fn emit(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    fn emit_jump(&mut self, op: u8, dst: Reg, src: Reg, imm: i64, target: Label) -> &mut Self {
        self.fixups.push((self.insns.len(), target));
        self.emit(Insn {
            op,
            dst,
            src,
            off: 0,
            imm,
        })
    }

    // ----- ALU -----

    /// `dst = imm` (64-bit).
    pub fn mov64_imm(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.emit(Insn {
            op: CLASS_ALU64 | SRC_K | ALU_MOV,
            dst,
            src: 0,
            off: 0,
            imm: imm as i64,
        })
    }

    /// `dst = src` (64-bit).
    pub fn mov64(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Insn {
            op: CLASS_ALU64 | SRC_X | ALU_MOV,
            dst,
            src,
            off: 0,
            imm: 0,
        })
    }

    /// Generic 64-bit ALU op with immediate (`ALU_ADD`, `ALU_AND`, ...).
    pub fn alu64_imm(&mut self, aluop: u8, dst: Reg, imm: i32) -> &mut Self {
        self.emit(Insn {
            op: CLASS_ALU64 | SRC_K | aluop,
            dst,
            src: 0,
            off: 0,
            imm: imm as i64,
        })
    }

    /// Generic 64-bit ALU op with register operand.
    pub fn alu64(&mut self, aluop: u8, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Insn {
            op: CLASS_ALU64 | SRC_X | aluop,
            dst,
            src,
            off: 0,
            imm: 0,
        })
    }

    /// Generic 32-bit ALU op with immediate (upper half zeroed, as in eBPF).
    pub fn alu32_imm(&mut self, aluop: u8, dst: Reg, imm: i32) -> &mut Self {
        self.emit(Insn {
            op: CLASS_ALU | SRC_K | aluop,
            dst,
            src: 0,
            off: 0,
            imm: imm as i64,
        })
    }

    /// `dst |= imm`.
    pub fn or64_imm(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.alu64_imm(ALU_OR, dst, imm)
    }

    /// `dst += imm`.
    pub fn add64_imm(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.alu64_imm(ALU_ADD, dst, imm)
    }

    /// `dst &= imm`.
    pub fn and64_imm(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.alu64_imm(ALU_AND, dst, imm)
    }

    /// Loads a 64-bit immediate (`lddw`).
    pub fn lddw(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.emit(Insn {
            op: CLASS_LD | MODE_IMM | SIZE_DW,
            dst,
            src: 0,
            off: 0,
            imm: imm as i64,
        })
    }

    // ----- memory -----

    /// `dst = *(size*)(src + off)`.
    pub fn ldx(&mut self, size: u8, dst: Reg, src: Reg, off: i16) -> &mut Self {
        self.emit(Insn {
            op: CLASS_LDX | MODE_MEM | size,
            dst,
            src,
            off,
            imm: 0,
        })
    }

    /// `*(size*)(dst + off) = src`.
    pub fn stx(&mut self, size: u8, dst: Reg, off: i16, src: Reg) -> &mut Self {
        self.emit(Insn {
            op: CLASS_STX | MODE_MEM | size,
            dst,
            src,
            off,
            imm: 0,
        })
    }

    /// `*(size*)(dst + off) = imm`.
    pub fn st_imm(&mut self, size: u8, dst: Reg, off: i16, imm: i32) -> &mut Self {
        self.emit(Insn {
            op: CLASS_ST | MODE_MEM | size,
            dst,
            src: 0,
            off,
            imm: imm as i64,
        })
    }

    // ----- control flow -----

    /// Unconditional jump to `target`.
    pub fn ja(&mut self, target: Label) -> &mut Self {
        self.emit_jump(CLASS_JMP | JMP_JA, 0, 0, 0, target)
    }

    /// Conditional jump comparing `dst` with an immediate
    /// (`JMP_JEQ`, `JMP_JGT`, ...).
    pub fn jmp_imm(&mut self, jmpop: u8, dst: Reg, imm: i32, target: Label) -> &mut Self {
        self.emit_jump(CLASS_JMP | SRC_K | jmpop, dst, 0, imm as i64, target)
    }

    /// Conditional jump comparing `dst` with `src`.
    pub fn jmp_reg(&mut self, jmpop: u8, dst: Reg, src: Reg, target: Label) -> &mut Self {
        self.emit_jump(CLASS_JMP | SRC_X | jmpop, dst, src, 0, target)
    }

    /// Calls helper `helper_id` (see [`crate::interp::helpers`]).
    pub fn call(&mut self, helper_id: u32) -> &mut Self {
        self.emit(Insn {
            op: CLASS_JMP | JMP_CALL,
            dst: 0,
            src: 0,
            off: 0,
            imm: helper_id as i64,
        })
    }

    /// Returns from the program with R0 as the verdict.
    pub fn exit(&mut self) -> &mut Self {
        self.emit(Insn {
            op: CLASS_JMP | JMP_EXIT,
            dst: 0,
            src: 0,
            off: 0,
            imm: 0,
        })
    }

    /// Resolves labels and returns the instruction stream plus declared
    /// maps. Panics on unbound labels or backward jumps (which the verifier
    /// would reject anyway).
    pub fn build(self) -> (Vec<Insn>, Vec<MapDef>) {
        let mut insns = self.insns;
        for (at, label) in self.fixups {
            let target = *self
                .bound
                .get(&label)
                .unwrap_or_else(|| panic!("unbound label {label:?}"));
            let delta = target as i64 - at as i64 - 1;
            assert!(
                delta >= 0,
                "backward jump at insn {at} (vbpf requires forward control flow)"
            );
            assert!(delta <= i16::MAX as i64, "jump out of range");
            insns[at].off = delta as i16;
        }
        (insns, self.maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_code() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 3).exit();
        let (insns, maps) = b.build();
        assert_eq!(insns.len(), 2);
        assert!(maps.is_empty());
        assert_eq!(insns[0].imm, 3);
    }

    #[test]
    fn forward_jump_offsets_resolve() {
        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        b.mov64_imm(R0, 1)
            .jmp_imm(JMP_JEQ, R0, 1, done)
            .mov64_imm(R0, 99);
        b.bind(done);
        b.exit();
        let (insns, _) = b.build();
        // jeq at index 1, target at index 3: off = 1.
        assert_eq!(insns[1].off, 1);
    }

    #[test]
    #[should_panic(expected = "backward jump")]
    fn backward_jump_panics() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.mov64_imm(R0, 1).ja(top);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.new_label();
        b.ja(nowhere).exit();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.exit();
        b.bind(l);
    }

    #[test]
    fn declare_map_returns_sequential_indices() {
        let mut b = ProgramBuilder::new();
        let m0 = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 4,
        });
        let m1 = b.declare_map(MapDef {
            value_size: 16,
            max_entries: 2,
        });
        assert_eq!((m0, m1), (0, 1));
        b.exit();
        let (_, maps) = b.build();
        assert_eq!(maps.len(), 2);
    }
}
