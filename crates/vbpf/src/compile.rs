//! The vbpf execution tier-up: verified bytecode → pre-decoded op array.
//!
//! The interpreter pays for generality on every instruction: opcode
//! decode, operand extraction, tagged-address resolution, and runtime
//! bounds checks. A *verified* program does not need any of that repeated
//! per request — the verifier already proved that every ctx/stack access
//! has a unique constant offset ([`crate::verifier::AccessFact`]). This
//! module lowers verified bytecode into a dense [`Op`] array with
//! operands resolved and constant offsets bounds-checked once, at compile
//! time, then lets [`crate::interp::Vm`] run it with a tight dispatch
//! loop (no decode, no tag resolution, direct slicing).
//!
//! Two classic optimizations run over the lowered ops, both restricted to
//! shapes whose safety is easy to argue:
//!
//! * **Constant folding** — straight-line only (knowledge is dropped at
//!   join points), seeded with the two pointers whose values are fixed by
//!   the ABI (`R1 = CTX_BASE`, `R10 = STACK_BASE + STACK_SIZE`). Folding
//!   uses the *interpreter's* ALU ([`crate::interp::alu_value`]), so a
//!   folded constant is by construction the value the interpreter would
//!   have computed.
//! * **Dead-store elimination** — a single backward liveness pass (valid
//!   because jumps are forward-only) removes register moves and stack
//!   stores whose results are never observed. Helper calls conservatively
//!   use R1–R5 and *every* stack byte, so nothing a helper could read is
//!   ever considered dead.
//!
//! **Budget parity.** The interpreter charges one budget unit per
//! executed instruction and fails with `BudgetExceeded` when the budget
//! hits zero. Each compiled op carries a `weight`: 1 plus the number of
//! eliminated instructions folded into it (always the instructions
//! *immediately preceding* it in program order). An op is only removable
//! when its successor is not a jump target, which guarantees no path can
//! enter a removed run in the middle — so charging the folded weight at
//! the retained op reproduces the interpreter's budget accounting
//! exactly, including *where* the budget runs out (removed ops have no
//! observable side effects, so the truncated prefix the interpreter would
//! have executed is indistinguishable).
//!
//! Anything this module cannot prove out — missing access facts, ALU or
//! jump opcodes the interpreter would reject at runtime, the `trace`
//! helper (kept on the interpreter so its log reflects real pc-by-pc
//! execution) — makes [`compile`] return `None`, and the Vm falls back to
//! the interpreter. The two tiers must agree instruction for instruction;
//! `tests/differential.rs` enforces this over random verified programs.

use crate::interp::{alu_value, helpers, CTX_BASE, STACK_BASE};
use crate::isa::*;
use crate::verifier::AccessFact;
use crate::Program;

/// A pre-decoded operation. Ctx/stack offsets are absolute, proven
/// in-bounds at compile time (given the entry check `ctx.len() >=
/// min_ctx`); `Dyn` forms keep runtime tagged-address resolution for
/// map-value pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    MovImm {
        dst: u8,
        v: u64,
    },
    AluImm {
        aluop: u8,
        is64: bool,
        dst: u8,
        imm: u64,
    },
    AluReg {
        aluop: u8,
        is64: bool,
        dst: u8,
        src: u8,
    },
    LdCtx {
        dst: u8,
        off: u16,
        size: u8,
    },
    LdStack {
        dst: u8,
        off: u16,
        size: u8,
    },
    StCtxReg {
        src: u8,
        off: u16,
        size: u8,
    },
    StCtxImm {
        off: u16,
        size: u8,
        v: u64,
    },
    StStackReg {
        src: u8,
        off: u16,
        size: u8,
    },
    StStackImm {
        off: u16,
        size: u8,
        v: u64,
    },
    LdDyn {
        dst: u8,
        src: u8,
        off: i16,
        size: u8,
    },
    StDynReg {
        dst: u8,
        src: u8,
        off: i16,
        size: u8,
    },
    StDynImm {
        dst: u8,
        off: i16,
        size: u8,
        v: u64,
    },
    Ja {
        target: u32,
    },
    Branch {
        jmpop: u8,
        use_reg: bool,
        dst: u8,
        src: u8,
        imm: u64,
        target: u32,
    },
    Call {
        helper: u32,
    },
    Exit,
    // Superinstructions produced by the peephole pass ([`fuse`]): each
    // covers a two-op idiom so the hot dispatch loop takes one iteration
    // where the 1:1 lowering took two. Every fused pair's first half
    // writes only registers — see `fuse` for why that makes mid-pair
    // budget exhaustion unobservable.
    /// Load a ctx field into `dst`, then compare-and-branch on it — the
    /// opcode/hook dispatch idiom. `dst` stays written (later compares
    /// may re-test it).
    LdCtxBranchImm {
        dst: u8,
        off: u16,
        size: u8,
        jmpop: u8,
        imm: u64,
        target: u32,
    },
    /// Three-address ALU: `dst = a op b` (from `mov dst, a; dst op= b`).
    AluRegReg {
        aluop: u8,
        is64: bool,
        dst: u8,
        a: u8,
        b: u8,
    },
    /// `dst op= imm`, then store `dst` to ctx — the LBA-translate idiom.
    AluImmStCtx {
        aluop: u8,
        is64: bool,
        dst: u8,
        imm: u64,
        off: u16,
        size: u8,
    },
    /// Set the verdict and return — every classifier's epilogue.
    MovImmExit {
        v: u64,
    },
}

/// A compiled program: dense ops plus parallel per-op metadata.
#[derive(Clone, Debug)]
pub(crate) struct CompiledProgram {
    pub(crate) ops: Vec<Op>,
    /// Budget units charged per op (1 + eliminated predecessors).
    pub(crate) weights: Vec<u32>,
    /// Original pc per op, for error attribution parity.
    pub(crate) pcs: Vec<u32>,
    /// Minimum ctx length the precomputed offsets (and the memo key
    /// extraction ranges) are valid for; shorter contexts fall back to
    /// the interpreter.
    pub(crate) min_ctx: usize,
    /// True when some retained op touches the stack frame (stack
    /// loads/stores, or helper calls, which may read any stack byte).
    /// When false the executor skips allocating and zeroing the 512-byte
    /// frame entirely — the program cannot observe the difference.
    pub(crate) uses_stack: bool,
    /// Sum of all op weights. Verified programs are DAGs (the verifier
    /// rejects backward jumps), so every op executes at most once and
    /// this is a sound upper bound on any execution's budget charge:
    /// when the configured budget covers it, the executor skips per-op
    /// budget accounting with identical observable behavior.
    pub(crate) total_weight: u64,
    /// Word-granular plan for comparing the live ctx read-set against a
    /// packed memo key: `(ctx_off, size, key_off)` with sizes 8/4/2/1,
    /// covering exactly the analysis read ranges in packing order. The
    /// memo fast path compares a handful of register-width loads instead
    /// of running a byte loop over the ranges.
    pub(crate) key_plan: Vec<(u16, u8, u16)>,
}

/// Lowers a verified program; `None` means "run this one interpreted".
pub(crate) fn compile(program: &Program) -> Option<CompiledProgram> {
    let insns = &program.insns;
    let n = insns.len();
    let analysis = &program.analysis;
    if n == 0 || analysis.access.len() != n {
        return None;
    }

    let mut ops = Vec::with_capacity(n);
    let mut is_join = vec![false; n];
    let mut min_ctx = 0usize;
    for (pc, insn) in insns.iter().enumerate() {
        let op = lower(insn, pc, analysis.access[pc], &mut min_ctx)?;
        if let Op::Ja { target } | Op::Branch { target, .. } = op {
            is_join[target as usize] = true;
        }
        ops.push(op);
    }
    // The memo cache slices ctx by the analysis read ranges; make the
    // entry check cover them too (helper-argument reads have no LdCtx op
    // of their own).
    for &(_, end) in analysis.ctx_reads.iter().chain(analysis.ctx_writes.iter()) {
        min_ctx = min_ctx.max(end);
    }

    const_fold(&mut ops, &is_join);
    let removed = dead_stores(&ops, &is_join);

    // Compact: drop removed ops, folding their weight into the next
    // retained op, and remap jump targets.
    let mut index_map = vec![0u32; n];
    let mut out_ops = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    let mut pcs = Vec::with_capacity(n);
    let mut pending = 0u32;
    for i in 0..n {
        index_map[i] = out_ops.len() as u32;
        if removed[i] {
            pending += 1;
            continue;
        }
        out_ops.push(ops[i]);
        weights.push(1 + pending);
        pcs.push(i as u32);
        pending = 0;
    }
    // The last instruction is exit or a jump (FallsOffEnd), never removed.
    debug_assert_eq!(pending, 0);
    for op in &mut out_ops {
        if let Op::Ja { target } | Op::Branch { target, .. } = op {
            *target = index_map[*target as usize];
        }
    }
    fuse(&mut out_ops, &mut weights, &mut pcs);
    // Computed after dead-store elimination: a program whose only stack
    // traffic was dead stores needs no frame at all. Dynamic (map-value)
    // accesses never resolve to the stack — the verifier proved their
    // pointers are map values. (Fusion neither adds nor removes stack
    // traffic, so running this after it is equivalent.)
    let uses_stack = out_ops.iter().any(|op| {
        matches!(
            op,
            Op::LdStack { .. } | Op::StStackReg { .. } | Op::StStackImm { .. } | Op::Call { .. }
        )
    });
    let total_weight = weights.iter().map(|&w| w as u64).sum();
    let mut key_plan = Vec::new();
    let mut at = 0u16;
    for &(s, e) in analysis.ctx_reads.iter() {
        let mut o = s;
        while o < e {
            let size = match e - o {
                8.. => 8u8,
                4.. => 4,
                2.. => 2,
                _ => 1,
            };
            key_plan.push((o as u16, size, at));
            o += size as usize;
            at += size as u16;
        }
    }
    Some(CompiledProgram {
        ops: out_ops,
        weights,
        pcs,
        min_ctx,
        uses_stack,
        total_weight,
        key_plan,
    })
}

/// Peephole superinstruction fusion over the compacted ops. A pair may
/// fuse only when:
///
/// * the second op is not a jump target — no path may enter the pair in
///   the middle — and
/// * the first op writes only registers, so if the budget runs out
///   between the two halves, the interpreter's truncated prefix and the
///   fused op's "charge both up front, then fail" differ only in dead
///   register state: the run ends in `BudgetExceeded` either way with
///   identical ctx/map/stack contents.
///
/// The fused op carries both halves' weights and reports the first
/// half's pc on error (the only fallible half with a distinct error,
/// `AluImmStCtx`'s ALU step, *is* the first half).
fn fuse(ops: &mut Vec<Op>, weights: &mut Vec<u32>, pcs: &mut Vec<u32>) {
    let n = ops.len();
    let mut is_target = vec![false; n];
    for op in ops.iter() {
        if let Op::Ja { target } | Op::Branch { target, .. } = op {
            is_target[*target as usize] = true;
        }
    }
    let mut keep = vec![true; n];
    let mut i = 0;
    while i + 1 < n {
        if is_target[i + 1] {
            i += 1;
            continue;
        }
        let fused = match (ops[i], ops[i + 1]) {
            (
                Op::LdCtx { dst, off, size },
                Op::Branch {
                    jmpop,
                    use_reg: false,
                    dst: bdst,
                    imm,
                    target,
                    ..
                },
            ) if bdst == dst => Some(Op::LdCtxBranchImm {
                dst,
                off,
                size,
                jmpop,
                imm,
                target,
            }),
            (
                Op::AluReg {
                    aluop: ALU_MOV,
                    is64: true,
                    dst,
                    src: a,
                },
                Op::AluReg {
                    aluop,
                    is64,
                    dst: d2,
                    src: b,
                },
                // `b == dst` would read the mov's result instead of the
                // pre-mov register; don't fuse that shape.
            ) if d2 == dst && b != dst => Some(Op::AluRegReg {
                aluop,
                is64,
                dst,
                a,
                b,
            }),
            (
                Op::AluImm {
                    aluop,
                    is64,
                    dst,
                    imm,
                },
                Op::StCtxReg { src, off, size },
            ) if src == dst => Some(Op::AluImmStCtx {
                aluop,
                is64,
                dst,
                imm,
                off,
                size,
            }),
            (Op::MovImm { dst, v }, Op::Exit) if dst == R0 => Some(Op::MovImmExit { v }),
            _ => None,
        };
        if let Some(f) = fused {
            ops[i] = f;
            weights[i] += weights[i + 1];
            keep[i + 1] = false;
            i += 2;
        } else {
            i += 1;
        }
    }
    // Compact and remap jump targets a second time.
    let mut map = vec![0u32; n];
    let mut kept = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        map[i] = kept;
        kept += k as u32;
    }
    let mut j = 0usize;
    for i in 0..n {
        if keep[i] {
            ops[j] = ops[i];
            weights[j] = weights[i];
            pcs[j] = pcs[i];
            j += 1;
        }
    }
    ops.truncate(j);
    weights.truncate(j);
    pcs.truncate(j);
    for op in ops.iter_mut() {
        if let Op::Ja { target } | Op::Branch { target, .. } | Op::LdCtxBranchImm { target, .. } =
            op
        {
            *target = map[*target as usize];
        }
    }
}

/// 1:1 lowering of one instruction; `None` rejects the whole program.
fn lower(insn: &Insn, pc: usize, fact: Option<AccessFact>, min_ctx: &mut usize) -> Option<Op> {
    let class = insn.class();
    match class {
        CLASS_ALU64 | CLASS_ALU => {
            let is64 = class == CLASS_ALU64;
            let aluop = insn.op & 0xF0;
            let use_reg = insn.op & 0x08 == SRC_X;
            if !matches!(
                aluop,
                ALU_ADD
                    | ALU_SUB
                    | ALU_MUL
                    | ALU_DIV
                    | ALU_OR
                    | ALU_AND
                    | ALU_LSH
                    | ALU_RSH
                    | ALU_NEG
                    | ALU_MOD
                    | ALU_XOR
                    | ALU_MOV
                    | ALU_ARSH
            ) {
                // The interpreter would raise BadOpcode at runtime; keep
                // that behavior by not tiering the program.
                return None;
            }
            Some(if aluop == ALU_MOV && !use_reg {
                let v = insn.imm as u64;
                Op::MovImm {
                    dst: insn.dst,
                    v: if is64 { v } else { v & 0xFFFF_FFFF },
                }
            } else if aluop == ALU_NEG {
                // NEG ignores its source operand in the interpreter.
                Op::AluImm {
                    aluop,
                    is64,
                    dst: insn.dst,
                    imm: 0,
                }
            } else if use_reg {
                Op::AluReg {
                    aluop,
                    is64,
                    dst: insn.dst,
                    src: insn.src,
                }
            } else {
                Op::AluImm {
                    aluop,
                    is64,
                    dst: insn.dst,
                    imm: insn.imm as u64,
                }
            })
        }
        CLASS_LD => {
            if !insn.is_lddw() {
                return None;
            }
            Some(Op::MovImm {
                dst: insn.dst,
                v: insn.imm as u64,
            })
        }
        CLASS_LDX => {
            let size = insn.access_size();
            match fact? {
                AccessFact::Ctx { off } => {
                    *min_ctx = (*min_ctx).max(off + size);
                    Some(Op::LdCtx {
                        dst: insn.dst,
                        off: off as u16,
                        size: size as u8,
                    })
                }
                AccessFact::Stack { off } => {
                    if off + size > STACK_SIZE {
                        return None;
                    }
                    Some(Op::LdStack {
                        dst: insn.dst,
                        off: off as u16,
                        size: size as u8,
                    })
                }
                AccessFact::MapValue => Some(Op::LdDyn {
                    dst: insn.dst,
                    src: insn.src,
                    off: insn.off,
                    size: size as u8,
                }),
            }
        }
        CLASS_ST | CLASS_STX => {
            let size = insn.access_size();
            let is_stx = class == CLASS_STX;
            match fact? {
                AccessFact::Ctx { off } => {
                    *min_ctx = (*min_ctx).max(off + size);
                    Some(if is_stx {
                        Op::StCtxReg {
                            src: insn.src,
                            off: off as u16,
                            size: size as u8,
                        }
                    } else {
                        Op::StCtxImm {
                            off: off as u16,
                            size: size as u8,
                            v: insn.imm as u64,
                        }
                    })
                }
                AccessFact::Stack { off } => {
                    if off + size > STACK_SIZE {
                        return None;
                    }
                    Some(if is_stx {
                        Op::StStackReg {
                            src: insn.src,
                            off: off as u16,
                            size: size as u8,
                        }
                    } else {
                        Op::StStackImm {
                            off: off as u16,
                            size: size as u8,
                            v: insn.imm as u64,
                        }
                    })
                }
                AccessFact::MapValue => Some(if is_stx {
                    Op::StDynReg {
                        dst: insn.dst,
                        src: insn.src,
                        off: insn.off,
                        size: size as u8,
                    }
                } else {
                    Op::StDynImm {
                        dst: insn.dst,
                        off: insn.off,
                        size: size as u8,
                        v: insn.imm as u64,
                    }
                }),
            }
        }
        CLASS_JMP => {
            // Match on the op *family* only, exactly like the interpreter
            // (the verifier is stricter about stray low bits; runtime
            // parity is with the interpreter).
            let jmpop = insn.op & 0xF0;
            let target = (pc as i64 + 1 + insn.off as i64) as u32;
            match jmpop {
                JMP_EXIT => Some(Op::Exit),
                JMP_CALL => {
                    let helper = insn.imm as u32;
                    if helper == helpers::TRACE {
                        // Keep traced programs on the interpreter so the
                        // trace log reflects real pc-by-pc execution.
                        return None;
                    }
                    Some(Op::Call { helper })
                }
                JMP_JA => Some(Op::Ja { target }),
                JMP_JEQ | JMP_JNE | JMP_JGT | JMP_JGE | JMP_JLT | JMP_JLE | JMP_JSET | JMP_JSGT
                | JMP_JSGE | JMP_JSLT | JMP_JSLE => Some(Op::Branch {
                    jmpop,
                    use_reg: insn.op & 0x08 == SRC_X,
                    dst: insn.dst,
                    src: insn.src,
                    imm: insn.imm as u64,
                    target,
                }),
                // Unassigned jump families are a runtime BadOpcode in the
                // interpreter; fall back so the error is reproduced.
                _ => None,
            }
        }
        _ => None,
    }
}

/// Straight-line constant propagation. Register knowledge is dropped at
/// join points (except R10, which is structurally read-only) and after
/// helper calls (which clobber R0–R5).
fn const_fold(ops: &mut [Op], is_join: &[bool]) {
    let mut regs: [Option<u64>; NUM_REGS] = [None; NUM_REGS];
    regs[R1 as usize] = Some(CTX_BASE);
    regs[R10 as usize] = Some(STACK_BASE + STACK_SIZE as u64);
    for i in 0..ops.len() {
        if is_join[i] {
            let r10 = regs[R10 as usize];
            regs = [None; NUM_REGS];
            regs[R10 as usize] = r10;
        }
        // First rewrite register-operand forms whose source is known into
        // immediate forms.
        match ops[i] {
            Op::AluReg {
                aluop,
                is64,
                dst,
                src,
            } => {
                if let Some(b) = regs[src as usize] {
                    ops[i] = if aluop == ALU_MOV {
                        Op::MovImm {
                            dst,
                            v: if is64 { b } else { b & 0xFFFF_FFFF },
                        }
                    } else {
                        Op::AluImm {
                            aluop,
                            is64,
                            dst,
                            imm: b,
                        }
                    };
                }
            }
            Op::StCtxReg { src, off, size } => {
                if let Some(v) = regs[src as usize] {
                    ops[i] = Op::StCtxImm { off, size, v };
                }
            }
            Op::StStackReg { src, off, size } => {
                if let Some(v) = regs[src as usize] {
                    ops[i] = Op::StStackImm { off, size, v };
                }
            }
            Op::StDynReg {
                dst,
                src,
                off,
                size,
            } => {
                if let Some(v) = regs[src as usize] {
                    ops[i] = Op::StDynImm { dst, off, size, v };
                }
            }
            Op::Branch {
                jmpop,
                use_reg: true,
                dst,
                src,
                imm: _,
                target,
            } => {
                // A register compare against a known constant becomes an
                // immediate compare, freeing the feeder (often a lddw of
                // a partition bound) for dead-store elimination.
                if let Some(b) = regs[src as usize] {
                    ops[i] = Op::Branch {
                        jmpop,
                        use_reg: false,
                        dst,
                        src,
                        imm: b,
                        target,
                    };
                }
            }
            _ => {}
        }
        // Then fold and update what we know about the register file.
        match ops[i] {
            Op::MovImm { dst, v } => regs[dst as usize] = Some(v),
            Op::AluImm {
                aluop,
                is64,
                dst,
                imm,
            } => {
                let folded = regs[dst as usize].and_then(|a| alu_value(aluop, is64, a, imm));
                if let Some(v) = folded {
                    ops[i] = Op::MovImm { dst, v };
                }
                regs[dst as usize] = folded;
            }
            Op::AluReg { dst, .. }
            | Op::LdCtx { dst, .. }
            | Op::LdStack { dst, .. }
            | Op::LdDyn { dst, .. } => regs[dst as usize] = None,
            Op::Call { .. } => {
                for r in regs.iter_mut().take(R5 as usize + 1) {
                    *r = None;
                }
            }
            _ => {}
        }
    }
}

const STACK_WORDS: usize = STACK_SIZE / 64;

fn stack_bits(off: u16, size: u8) -> impl Iterator<Item = (usize, u64)> {
    (off as usize..off as usize + size as usize).map(|b| (b / 64, 1u64 << (b % 64)))
}

/// Backward liveness over registers and byte-granular stack slots; one
/// pass suffices because all jumps are forward. Returns which ops to
/// remove. An op is removable only if it has no observable effect (dead
/// register def or dead stack store, and cannot trap) *and* its
/// fall-through successor is not a jump target (budget parity; see the
/// module docs).
fn dead_stores(ops: &[Op], is_join: &[bool]) -> Vec<bool> {
    let n = ops.len();
    let mut live_regs = vec![0u16; n + 1];
    let mut live_stack = vec![[0u64; STACK_WORDS]; n + 1];
    let mut removed = vec![false; n];
    let bit = |r: u8| 1u16 << r;
    for i in (0..n).rev() {
        // Live-out: union over successors (all have index > i).
        let (mut lr, mut ls) = match ops[i] {
            Op::Ja { target } => (live_regs[target as usize], live_stack[target as usize]),
            Op::Exit => (0u16, [0u64; STACK_WORDS]),
            Op::Branch { target, .. } => {
                let lr = live_regs[i + 1] | live_regs[target as usize];
                let mut ls = live_stack[i + 1];
                for (w, t) in ls.iter_mut().zip(live_stack[target as usize].iter()) {
                    *w |= t;
                }
                (lr, ls)
            }
            _ => (live_regs[i + 1], live_stack[i + 1]),
        };

        let dead = match ops[i] {
            Op::MovImm { dst, .. }
            | Op::AluImm { dst, .. }
            | Op::AluReg { dst, .. }
            | Op::LdCtx { dst, .. }
            | Op::LdStack { dst, .. } => lr & bit(dst) == 0,
            Op::StStackReg { off, size, .. } | Op::StStackImm { off, size, .. } => {
                stack_bits(off, size).all(|(w, m)| ls[w] & m == 0)
            }
            // Ctx/map stores and helper calls are observable; dynamic
            // loads can trap. Never removed.
            _ => false,
        };
        if dead && !is_join[i + 1] {
            removed[i] = true;
            live_regs[i] = lr;
            live_stack[i] = ls;
            continue;
        }

        // Transfer: live-in = (live-out − defs) ∪ uses.
        match ops[i] {
            Op::MovImm { dst, .. } => lr &= !bit(dst),
            Op::AluImm { dst, .. } => lr |= bit(dst), // def ∪ use of dst
            Op::AluReg {
                aluop, dst, src, ..
            } => {
                if aluop == ALU_MOV {
                    lr &= !bit(dst);
                } // else dst is both def and use
                lr |= bit(src);
            }
            Op::LdCtx { dst, .. } => lr &= !bit(dst),
            Op::LdStack { dst, off, size } => {
                lr &= !bit(dst);
                for (w, m) in stack_bits(off, size) {
                    ls[w] |= m;
                }
            }
            Op::LdDyn { dst, src, .. } => {
                lr &= !bit(dst);
                lr |= bit(src);
            }
            Op::StCtxReg { src, .. } => lr |= bit(src),
            Op::StCtxImm { .. } => {}
            Op::StStackReg { src, off, size } => {
                for (w, m) in stack_bits(off, size) {
                    ls[w] &= !m;
                }
                lr |= bit(src);
            }
            Op::StStackImm { off, size, .. } => {
                for (w, m) in stack_bits(off, size) {
                    ls[w] &= !m;
                }
            }
            Op::StDynReg { dst, src, .. } => lr |= bit(dst) | bit(src),
            Op::StDynImm { dst, .. } => lr |= bit(dst),
            Op::Call { .. } => {
                // Helpers def R0–R5; use R1–R5 plus, conservatively,
                // every initialized stack byte (keys/values may point
                // anywhere into the frame).
                lr &= !0x3F;
                lr |= 0x3E;
                ls = [!0u64; STACK_WORDS];
            }
            Op::Ja { .. } => {}
            Op::Branch {
                use_reg, dst, src, ..
            } => {
                lr |= bit(dst);
                if use_reg {
                    lr |= bit(src);
                }
            }
            Op::Exit => lr |= bit(R0),
            Op::LdCtxBranchImm { .. }
            | Op::AluRegReg { .. }
            | Op::AluImmStCtx { .. }
            | Op::MovImmExit { .. } => {
                unreachable!("superinstructions are fused after dead-store elimination")
            }
        }
        live_regs[i] = lr;
        live_stack[i] = ls;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::verifier::{verify, VerifierConfig};

    fn cfg() -> VerifierConfig {
        VerifierConfig {
            ctx_size: 64,
            ctx_writable: 16..32,
        }
    }

    fn build(b: ProgramBuilder) -> Program {
        let (insns, maps) = b.build();
        verify(insns, maps, &cfg()).expect("program must verify")
    }

    /// The partition-offset classifier shape: pointer setup and the lddw
    /// constants fold away, then fusion packs the translate/store and
    /// verdict/exit pairs — a 3-superinstruction body with total weight
    /// equal to the original instruction count.
    #[test]
    fn offset_classifier_folds_to_dense_body() {
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_DW, R2, R1, 16)
            .lddw(R3, 4096)
            .alu64(ALU_ADD, R2, R3)
            .stx(SIZE_DW, R1, 16, R2)
            .lddw(R0, 0x11)
            .exit();
        let p = build(b);
        let n = p.len() as u32;
        let c = compile(&p).expect("compiles");
        assert_eq!(c.weights.iter().sum::<u32>(), n, "budget parity");
        assert_eq!(
            c.ops,
            vec![
                Op::LdCtx {
                    dst: R2,
                    off: 16,
                    size: 8
                },
                Op::AluImmStCtx {
                    aluop: ALU_ADD,
                    is64: true,
                    dst: R2,
                    imm: 4096,
                    off: 16,
                    size: 8
                },
                Op::MovImmExit { v: 0x11 },
            ]
        );
        assert_eq!(c.min_ctx, 24);
    }

    #[test]
    fn constant_store_folds_to_imm_form() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R2, 3)
            .add64_imm(R2, 4)
            .stx(SIZE_W, R1, 16, R2)
            .mov64_imm(R0, 0)
            .exit();
        let p = build(b);
        let c = compile(&p).expect("compiles");
        assert!(c.ops.contains(&Op::StCtxImm {
            off: 16,
            size: 4,
            v: 7
        }));
        // The mov/add chain is dead once the store is an immediate, and
        // the mov r0/exit epilogue fuses into one superinstruction.
        assert_eq!(c.ops.len(), 2);
        assert_eq!(c.weights.iter().sum::<u32>(), p.len() as u32);
    }

    #[test]
    fn dead_stack_store_eliminated_but_live_one_kept() {
        let mut b = ProgramBuilder::new();
        b.st_imm(SIZE_DW, R10, -8, 1) // dead: never read
            .st_imm(SIZE_DW, R10, -16, 2) // live: reloaded below
            .ldx(SIZE_DW, R0, R10, -16)
            .exit();
        let p = build(b);
        let c = compile(&p).expect("compiles");
        assert!(!c
            .ops
            .iter()
            .any(|o| matches!(o, Op::StStackImm { v: 1, .. } | Op::StStackReg { .. })));
        assert!(c.ops.contains(&Op::StStackImm {
            off: STACK_SIZE as u16 - 16,
            size: 8,
            v: 2
        }));
        assert_eq!(c.weights.iter().sum::<u32>(), p.len() as u32);
    }

    #[test]
    fn stack_stores_before_helper_calls_are_never_dead() {
        use crate::maps::MapDef;
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 4,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R0, R0, 0)
            .exit();
        b.bind(is_null);
        b.mov64_imm(R0, 0).exit();
        let p = build(b);
        let c = compile(&p).expect("compiles");
        // The key store at fp-4 feeds the helper: must survive.
        assert!(c
            .ops
            .iter()
            .any(|o| matches!(o, Op::StStackImm { v: 0, size: 4, .. })));
        assert_eq!(c.weights.iter().sum::<u32>(), p.len() as u32);
    }

    #[test]
    fn join_targets_block_removal_of_predecessor() {
        // r2 = 9 is dead (r2 rewritten on both paths before use), but its
        // successor is a branch whose fall-through leads to a join — the
        // op right after it is the branch, and the join target is the
        // exit block. Build a case where the dead def sits immediately
        // before a join target and verify it is kept (weight parity).
        let mut b = ProgramBuilder::new();
        let join = b.new_label();
        b.ldx(SIZE_W, R3, R1, 0)
            .mov64_imm(R0, 1)
            .jmp_imm(JMP_JEQ, R3, 0, join)
            .mov64_imm(R2, 9); // dead, but next insn is the join target
        b.bind(join);
        b.exit();
        let p = build(b);
        let c = compile(&p).expect("compiles");
        // mov r2, 9 must NOT be folded into the join-target exit: a taken
        // branch would then over-pay for an instruction it skipped.
        assert!(c.ops.contains(&Op::MovImm { dst: R2, v: 9 }));
        assert_eq!(c.weights.iter().sum::<u32>(), p.len() as u32);
        assert!(c.weights.iter().all(|&w| w == 1));
    }

    /// All four superinstruction shapes fuse on the canonical classifier
    /// layout, with jump targets remapped and both halves' weights
    /// charged on the fused op.
    #[test]
    fn fusion_packs_classifier_idioms() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.ldx(SIZE_B, R2, R1, 0)
            .jmp_imm(JMP_JEQ, R2, 7, skip)
            .ldx(SIZE_DW, R3, R1, 16)
            .mov64(R4, R3)
            .alu64(ALU_ADD, R4, R3)
            .add64_imm(R4, 5)
            .stx(SIZE_DW, R1, 16, R4)
            .lddw(R0, 1)
            .exit();
        b.bind(skip);
        b.lddw(R0, 2).exit();
        let p = build(b);
        let c = compile(&p).expect("compiles");
        assert_eq!(
            c.ops,
            vec![
                Op::LdCtxBranchImm {
                    dst: R2,
                    off: 0,
                    size: 1,
                    jmpop: JMP_JEQ,
                    imm: 7,
                    target: 5
                },
                Op::LdCtx {
                    dst: R3,
                    off: 16,
                    size: 8
                },
                Op::AluRegReg {
                    aluop: ALU_ADD,
                    is64: true,
                    dst: R4,
                    a: R3,
                    b: R3
                },
                Op::AluImmStCtx {
                    aluop: ALU_ADD,
                    is64: true,
                    dst: R4,
                    imm: 5,
                    off: 16,
                    size: 8
                },
                Op::MovImmExit { v: 1 },
                Op::MovImmExit { v: 2 },
            ]
        );
        assert_eq!(
            c.weights.iter().sum::<u32>(),
            p.len() as u32,
            "budget parity"
        );
        assert_eq!(c.weights, vec![2, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn fusion_blocked_when_second_half_is_a_jump_target() {
        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        b.ldx(SIZE_W, R2, R1, 0)
            .lddw(R0, 1)
            .jmp_imm(JMP_JEQ, R2, 0, done)
            .lddw(R0, 2);
        b.bind(done);
        b.exit();
        let p = build(b);
        let c = compile(&p).expect("compiles");
        // `exit` is a join target: a taken branch must still be able to
        // land on it alone, so `mov r0, 2; exit` is NOT fused.
        assert!(c.ops.contains(&Op::MovImm { dst: R0, v: 2 }));
        assert!(c.ops.contains(&Op::Exit));
        assert_eq!(c.weights.iter().sum::<u32>(), p.len() as u32);
    }

    #[test]
    fn trace_programs_fall_back_to_interpreter() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R1, 7).call(helpers::TRACE).exit();
        let p = build(b);
        assert!(compile(&p).is_none());
    }

    #[test]
    fn min_ctx_covers_helper_key_reads() {
        use crate::maps::MapDef;
        // Key comes straight from the ctx pointer: no LdCtx op exists,
        // but min_ctx must still cover the helper's 4-byte read at 32.
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 4,
        });
        b.mov64(R2, R1)
            .add64_imm(R2, 32)
            .mov64_imm(R1, m as i32)
            .call(helpers::MAP_LOOKUP)
            .mov64_imm(R0, 0)
            .exit();
        let p = build(b);
        assert_eq!(p.ctx_reads(), &[(32, 36)]);
        let c = compile(&p).expect("compiles");
        assert!(c.min_ctx >= 36);
    }
}
