//! Disassembler: renders vbpf programs in the classic BPF text form used
//! by `bpftool` / `llvm-objdump`, for debugging classifiers and for the
//! `custom_classifier` example's output.

use crate::isa::*;

fn alu_name(op: u8) -> &'static str {
    match op & 0xF0 {
        ALU_ADD => "add",
        ALU_SUB => "sub",
        ALU_MUL => "mul",
        ALU_DIV => "div",
        ALU_OR => "or",
        ALU_AND => "and",
        ALU_LSH => "lsh",
        ALU_RSH => "rsh",
        ALU_NEG => "neg",
        ALU_MOD => "mod",
        ALU_XOR => "xor",
        ALU_MOV => "mov",
        ALU_ARSH => "arsh",
        _ => "alu?",
    }
}

fn jmp_name(op: u8) -> &'static str {
    match op & 0xF0 {
        JMP_JA => "ja",
        JMP_JEQ => "jeq",
        JMP_JGT => "jgt",
        JMP_JGE => "jge",
        JMP_JSET => "jset",
        JMP_JNE => "jne",
        JMP_JSGT => "jsgt",
        JMP_JSGE => "jsge",
        JMP_JLT => "jlt",
        JMP_JLE => "jle",
        JMP_JSLT => "jslt",
        JMP_JSLE => "jsle",
        _ => "jmp?",
    }
}

fn size_suffix(op: u8) -> &'static str {
    match op & 0x18 {
        SIZE_B => "b",
        SIZE_H => "h",
        SIZE_W => "w",
        _ => "dw",
    }
}

/// Renders one instruction at `pc` (used for jump target arithmetic).
pub fn disasm_insn(insn: &Insn, pc: usize) -> String {
    let class = insn.class();
    match class {
        CLASS_ALU | CLASS_ALU64 => {
            let w = if class == CLASS_ALU64 { "64" } else { "32" };
            let name = alu_name(insn.op);
            if insn.op & 0xF0 == ALU_NEG {
                return format!("{name}{w} r{}", insn.dst);
            }
            if insn.op & 0x08 == SRC_X {
                format!("{name}{w} r{}, r{}", insn.dst, insn.src)
            } else {
                format!("{name}{w} r{}, {}", insn.dst, insn.imm)
            }
        }
        CLASS_LD => {
            if insn.is_lddw() {
                format!("lddw r{}, {:#x}", insn.dst, insn.imm as u64)
            } else {
                format!("ld? (op={:#04x})", insn.op)
            }
        }
        CLASS_LDX => format!(
            "ldx{} r{}, [r{}{:+}]",
            size_suffix(insn.op),
            insn.dst,
            insn.src,
            insn.off
        ),
        CLASS_ST => format!(
            "st{} [r{}{:+}], {}",
            size_suffix(insn.op),
            insn.dst,
            insn.off,
            insn.imm
        ),
        CLASS_STX => format!(
            "stx{} [r{}{:+}], r{}",
            size_suffix(insn.op),
            insn.dst,
            insn.off,
            insn.src
        ),
        CLASS_JMP => {
            let jop = insn.op & 0xF0;
            match jop {
                JMP_EXIT => "exit".to_string(),
                JMP_CALL => format!("call {}", insn.imm),
                JMP_JA => format!("ja +{} -> {}", insn.off, pc as i64 + 1 + insn.off as i64),
                _ => {
                    let target = pc as i64 + 1 + insn.off as i64;
                    if insn.op & 0x08 == SRC_X {
                        format!(
                            "{} r{}, r{}, -> {}",
                            jmp_name(insn.op),
                            insn.dst,
                            insn.src,
                            target
                        )
                    } else {
                        format!(
                            "{} r{}, {}, -> {}",
                            jmp_name(insn.op),
                            insn.dst,
                            insn.imm,
                            target
                        )
                    }
                }
            }
        }
        _ => format!("?? (op={:#04x})", insn.op),
    }
}

/// Renders a whole program, one numbered instruction per line.
pub fn disasm(insns: &[Insn]) -> String {
    insns
        .iter()
        .enumerate()
        .map(|(pc, i)| format!("{pc:4}: {}", disasm_insn(i, pc)))
        .collect::<Vec<_>>()
        .join("\n")
}

fn alu_op_from_name(name: &str) -> Option<u8> {
    Some(match name {
        "add" => ALU_ADD,
        "sub" => ALU_SUB,
        "mul" => ALU_MUL,
        "div" => ALU_DIV,
        "or" => ALU_OR,
        "and" => ALU_AND,
        "lsh" => ALU_LSH,
        "rsh" => ALU_RSH,
        "neg" => ALU_NEG,
        "mod" => ALU_MOD,
        "xor" => ALU_XOR,
        "mov" => ALU_MOV,
        "arsh" => ALU_ARSH,
        _ => return None,
    })
}

fn jmp_op_from_name(name: &str) -> Option<u8> {
    Some(match name {
        "jeq" => JMP_JEQ,
        "jgt" => JMP_JGT,
        "jge" => JMP_JGE,
        "jset" => JMP_JSET,
        "jne" => JMP_JNE,
        "jsgt" => JMP_JSGT,
        "jsge" => JMP_JSGE,
        "jlt" => JMP_JLT,
        "jle" => JMP_JLE,
        "jslt" => JMP_JSLT,
        "jsle" => JMP_JSLE,
        _ => return None,
    })
}

fn size_from_suffix(s: &str) -> Option<u8> {
    Some(match s {
        "b" => SIZE_B,
        "h" => SIZE_H,
        "w" => SIZE_W,
        "dw" => SIZE_DW,
        _ => return None,
    })
}

fn parse_reg(tok: &str) -> Result<Reg, String> {
    let t = tok.trim().trim_end_matches(',');
    let n = t
        .strip_prefix('r')
        .ok_or_else(|| format!("expected register, got `{t}`"))?;
    let v: u8 = n.parse().map_err(|_| format!("bad register `{t}`"))?;
    if (v as usize) >= NUM_REGS {
        return Err(format!("bad register `{t}`"));
    }
    Ok(v)
}

fn parse_imm(tok: &str) -> Result<i64, String> {
    let t = tok.trim().trim_end_matches(',');
    if let Some(h) = t.strip_prefix("0x") {
        u64::from_str_radix(h, 16)
            .map(|v| v as i64)
            .map_err(|_| format!("bad immediate `{t}`"))
    } else {
        t.parse::<i64>().map_err(|_| format!("bad immediate `{t}`"))
    }
}

/// Parses a `[rN{+|-}off]` memory operand.
fn parse_mem(tok: &str) -> Result<(Reg, i16), String> {
    let t = tok.trim().trim_end_matches(',');
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [reg+off], got `{t}`"))?;
    let sign = inner
        .find(['+', '-'])
        .ok_or_else(|| format!("missing offset sign in `{t}`"))?;
    let (r, o) = inner.split_at(sign);
    let reg = parse_reg(r)?;
    let off: i16 = o.parse().map_err(|_| format!("bad offset `{o}`"))?;
    Ok((reg, off))
}

/// Splits `"a, b, c"` operand text on commas, trimming each piece.
fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Parses `-> target` into a branch offset relative to `pc`.
fn parse_target(tok: &str, pc: usize) -> Result<i16, String> {
    let t = tok
        .trim()
        .strip_prefix("->")
        .ok_or_else(|| format!("expected `-> target`, got `{tok}`"))?
        .trim();
    let target: i64 = t.parse().map_err(|_| format!("bad jump target `{t}`"))?;
    let off = target - pc as i64 - 1;
    i16::try_from(off).map_err(|_| format!("jump target {target} out of range at pc {pc}"))
}

/// Parses the text format produced by [`disasm`] back into instructions —
/// the inverse direction of the assembler round trip
/// (`assemble → disasm → parse_program` is the identity; see the
/// `full_isa_round_trips_through_text` test).
///
/// Accepts an optional `N:` line-number prefix (as emitted by [`disasm`]);
/// when present, it must match the instruction's position. Blank lines are
/// skipped. Emits canonical encodings: `SRC_K` for `neg`, `MODE_MEM` for
/// register-indirect loads/stores, `MODE_IMM` for `lddw`.
pub fn parse_program(text: &str) -> Result<Vec<Insn>, String> {
    let mut insns: Vec<Insn> = Vec::new();
    for raw in text.lines() {
        let mut line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let pc = insns.len();
        if let Some((num, rest)) = line.split_once(':') {
            let num = num.trim();
            if !num.is_empty() && num.chars().all(|c| c.is_ascii_digit()) {
                let n: usize = num
                    .parse()
                    .map_err(|_| format!("bad line number `{num}`"))?;
                if n != pc {
                    return Err(format!("line numbered {n} but parsed at pc {pc}"));
                }
                line = rest.trim();
            }
        }
        let (mn, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let insn = match mn {
            "exit" => Insn {
                op: CLASS_JMP | JMP_EXIT,
                dst: 0,
                src: 0,
                off: 0,
                imm: 0,
            },
            "call" => Insn {
                op: CLASS_JMP | JMP_CALL,
                dst: 0,
                src: 0,
                off: 0,
                imm: parse_imm(rest)?,
            },
            "lddw" => {
                let ops = operands(rest);
                if ops.len() != 2 {
                    return Err(format!("lddw needs `reg, imm`, got `{rest}`"));
                }
                Insn {
                    op: CLASS_LD | MODE_IMM | SIZE_DW,
                    dst: parse_reg(ops[0])?,
                    src: 0,
                    off: 0,
                    imm: parse_imm(ops[1])?,
                }
            }
            "ja" => {
                let mut toks = rest.split_whitespace();
                let off_tok = toks
                    .next()
                    .ok_or_else(|| "ja needs an offset".to_string())?;
                let off: i16 = off_tok
                    .parse()
                    .map_err(|_| format!("bad ja offset `{off_tok}`"))?;
                Insn {
                    op: CLASS_JMP | JMP_JA,
                    dst: 0,
                    src: 0,
                    off,
                    imm: 0,
                }
            }
            _ if mn.starts_with("ldx") => {
                let size =
                    size_from_suffix(&mn[3..]).ok_or_else(|| format!("bad load size in `{mn}`"))?;
                let ops = operands(rest);
                if ops.len() != 2 {
                    return Err(format!("{mn} needs `reg, [reg+off]`, got `{rest}`"));
                }
                let (src, off) = parse_mem(ops[1])?;
                Insn {
                    op: CLASS_LDX | MODE_MEM | size,
                    dst: parse_reg(ops[0])?,
                    src,
                    off,
                    imm: 0,
                }
            }
            _ if mn.starts_with("stx") => {
                let size = size_from_suffix(&mn[3..])
                    .ok_or_else(|| format!("bad store size in `{mn}`"))?;
                let ops = operands(rest);
                if ops.len() != 2 {
                    return Err(format!("{mn} needs `[reg+off], reg`, got `{rest}`"));
                }
                let (dst, off) = parse_mem(ops[0])?;
                Insn {
                    op: CLASS_STX | MODE_MEM | size,
                    dst,
                    src: parse_reg(ops[1])?,
                    off,
                    imm: 0,
                }
            }
            _ if mn.starts_with("st") => {
                let size = size_from_suffix(&mn[2..])
                    .ok_or_else(|| format!("bad store size in `{mn}`"))?;
                let ops = operands(rest);
                if ops.len() != 2 {
                    return Err(format!("{mn} needs `[reg+off], imm`, got `{rest}`"));
                }
                let (dst, off) = parse_mem(ops[0])?;
                Insn {
                    op: CLASS_ST | MODE_MEM | size,
                    dst,
                    src: 0,
                    off,
                    imm: parse_imm(ops[1])?,
                }
            }
            _ if jmp_op_from_name(mn).is_some() => {
                let jop = jmp_op_from_name(mn).expect("checked");
                let ops = operands(rest);
                if ops.len() != 3 {
                    return Err(format!(
                        "{mn} needs `reg, operand, -> target`, got `{rest}`"
                    ));
                }
                let dst = parse_reg(ops[0])?;
                let off = parse_target(ops[2], pc)?;
                if ops[1].starts_with('r') && parse_reg(ops[1]).is_ok() {
                    Insn {
                        op: CLASS_JMP | SRC_X | jop,
                        dst,
                        src: parse_reg(ops[1])?,
                        off,
                        imm: 0,
                    }
                } else {
                    Insn {
                        op: CLASS_JMP | SRC_K | jop,
                        dst,
                        src: 0,
                        off,
                        imm: parse_imm(ops[1])?,
                    }
                }
            }
            _ => {
                // ALU: `{name}{64|32}` with one (neg) or two operands.
                let (base, class) = if let Some(b) = mn.strip_suffix("64") {
                    (b, CLASS_ALU64)
                } else if let Some(b) = mn.strip_suffix("32") {
                    (b, CLASS_ALU)
                } else {
                    return Err(format!("unknown mnemonic `{mn}`"));
                };
                let aluop =
                    alu_op_from_name(base).ok_or_else(|| format!("unknown mnemonic `{mn}`"))?;
                let ops = operands(rest);
                if aluop == ALU_NEG {
                    if ops.len() != 1 {
                        return Err(format!("{mn} takes one register, got `{rest}`"));
                    }
                    Insn {
                        op: class | SRC_K | ALU_NEG,
                        dst: parse_reg(ops[0])?,
                        src: 0,
                        off: 0,
                        imm: 0,
                    }
                } else {
                    if ops.len() != 2 {
                        return Err(format!("{mn} needs `reg, operand`, got `{rest}`"));
                    }
                    let dst = parse_reg(ops[0])?;
                    if ops[1].starts_with('r') && parse_reg(ops[1]).is_ok() {
                        Insn {
                            op: class | SRC_X | aluop,
                            dst,
                            src: parse_reg(ops[1])?,
                            off: 0,
                            imm: 0,
                        }
                    } else {
                        Insn {
                            op: class | SRC_K | aluop,
                            dst,
                            src: 0,
                            off: 0,
                            imm: parse_imm(ops[1])?,
                        }
                    }
                }
            }
        };
        insns.push(insn);
    }
    Ok(insns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn renders_common_forms() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.mov64_imm(R0, 7)
            .lddw(R2, 0xDEAD_BEEF)
            .ldx(SIZE_W, R3, R1, 8)
            .stx(SIZE_DW, R10, -8, R3)
            .jmp_imm(JMP_JEQ, R0, 7, l)
            .call(3);
        b.bind(l);
        b.exit();
        let (insns, _) = b.build();
        let text = disasm(&insns);
        assert!(text.contains("mov64 r0, 7"));
        assert!(text.contains("lddw r2, 0xdeadbeef"));
        assert!(text.contains("ldxw r3, [r1+8]"));
        assert!(text.contains("stxdw [r10-8], r3"));
        assert!(text.contains("jeq r0, 7, -> 6"));
        assert!(text.contains("call 3"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn every_line_is_numbered() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).exit();
        let (insns, _) = b.build();
        let text = disasm(&insns);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].trim_start().starts_with("0:"));
        assert!(lines[1].trim_start().starts_with("1:"));
    }

    #[test]
    fn real_classifier_disassembles_cleanly() {
        // The encryptor classifier from nvmetro-functions round-trips
        // through encode/decode and disassembles without unknown opcodes.
        use crate::isa::Insn;
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.ldx(SIZE_B, R2, R1, 8)
            .jmp_imm(JMP_JNE, R2, 2, l)
            .mov64_imm(R0, 1)
            .exit();
        b.bind(l);
        b.mov64_imm(R0, 0).exit();
        let (insns, _) = b.build();
        let mut bytes = Vec::new();
        for i in &insns {
            i.encode(&mut bytes);
        }
        let decoded = Insn::decode_program(&bytes).unwrap();
        let text = disasm(&decoded);
        assert!(!text.contains("??"), "unknown opcode in:\n{text}");
        assert!(!text.contains("alu?"));
        assert!(!text.contains("jmp?"));
    }

    #[test]
    fn full_isa_round_trips_through_text() {
        // Every instruction form in the ISA: all ALU ops (64/32,
        // imm/reg), lddw, every load/store size, ja, every conditional
        // jump (imm/reg), call, exit. assemble → disasm → parse must be
        // the identity.
        let alu_ops = [
            ALU_ADD, ALU_SUB, ALU_MUL, ALU_DIV, ALU_OR, ALU_AND, ALU_LSH, ALU_RSH, ALU_MOD,
            ALU_XOR, ALU_MOV, ALU_ARSH,
        ];
        let jmp_ops = [
            JMP_JEQ, JMP_JGT, JMP_JGE, JMP_JSET, JMP_JNE, JMP_JSGT, JMP_JSGE, JMP_JLT, JMP_JLE,
            JMP_JSLT, JMP_JSLE,
        ];
        let mut insns = Vec::new();
        for class in [CLASS_ALU64, CLASS_ALU] {
            for op in alu_ops {
                insns.push(Insn {
                    op: class | SRC_K | op,
                    dst: R3,
                    src: 0,
                    off: 0,
                    imm: -7,
                });
                insns.push(Insn {
                    op: class | SRC_X | op,
                    dst: R3,
                    src: R4,
                    off: 0,
                    imm: 0,
                });
            }
            insns.push(Insn {
                op: class | SRC_K | ALU_NEG,
                dst: R5,
                src: 0,
                off: 0,
                imm: 0,
            });
        }
        insns.push(Insn {
            op: CLASS_LD | MODE_IMM | SIZE_DW,
            dst: R2,
            src: 0,
            off: 0,
            imm: 0x1122_3344_5566_7788u64 as i64,
        });
        insns.push(Insn {
            op: CLASS_LD | MODE_IMM | SIZE_DW,
            dst: R6,
            src: 0,
            off: 0,
            imm: u64::MAX as i64,
        });
        for size in [SIZE_B, SIZE_H, SIZE_W, SIZE_DW] {
            insns.push(Insn {
                op: CLASS_LDX | MODE_MEM | size,
                dst: R2,
                src: R1,
                off: 8,
                imm: 0,
            });
            insns.push(Insn {
                op: CLASS_ST | MODE_MEM | size,
                dst: R10,
                src: 0,
                off: -16,
                imm: 99,
            });
            insns.push(Insn {
                op: CLASS_STX | MODE_MEM | size,
                dst: R10,
                src: R2,
                off: -24,
                imm: 0,
            });
        }
        insns.push(Insn {
            op: CLASS_JMP | JMP_JA,
            dst: 0,
            src: 0,
            off: 3,
            imm: 0,
        });
        for op in jmp_ops {
            insns.push(Insn {
                op: CLASS_JMP | SRC_K | op,
                dst: R2,
                src: 0,
                off: 5,
                imm: -3,
            });
            insns.push(Insn {
                op: CLASS_JMP | SRC_X | op,
                dst: R2,
                src: R3,
                off: 2,
                imm: 0,
            });
        }
        insns.push(Insn {
            op: CLASS_JMP | JMP_CALL,
            dst: 0,
            src: 0,
            off: 0,
            imm: 4,
        });
        insns.push(Insn {
            op: CLASS_JMP | JMP_EXIT,
            dst: 0,
            src: 0,
            off: 0,
            imm: 0,
        });

        let text = disasm(&insns);
        let parsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\ntext was:\n{text}"));
        assert_eq!(parsed, insns, "text was:\n{text}");

        // Un-numbered text (hand-written form) parses identically.
        let bare: String = text
            .lines()
            .map(|l| l.split_once(':').unwrap().1.trim())
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(parse_program(&bare).unwrap(), insns);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_program("frob r1, r2").is_err());
        assert!(parse_program("mov64 r99, 1").is_err());
        assert!(parse_program("ldxw r1, r2").is_err());
        assert!(parse_program("5: exit").is_err(), "mismatched line number");
    }
}
