//! Disassembler: renders vbpf programs in the classic BPF text form used
//! by `bpftool` / `llvm-objdump`, for debugging classifiers and for the
//! `custom_classifier` example's output.

use crate::isa::*;

fn alu_name(op: u8) -> &'static str {
    match op & 0xF0 {
        ALU_ADD => "add",
        ALU_SUB => "sub",
        ALU_MUL => "mul",
        ALU_DIV => "div",
        ALU_OR => "or",
        ALU_AND => "and",
        ALU_LSH => "lsh",
        ALU_RSH => "rsh",
        ALU_NEG => "neg",
        ALU_MOD => "mod",
        ALU_XOR => "xor",
        ALU_MOV => "mov",
        ALU_ARSH => "arsh",
        _ => "alu?",
    }
}

fn jmp_name(op: u8) -> &'static str {
    match op & 0xF0 {
        JMP_JA => "ja",
        JMP_JEQ => "jeq",
        JMP_JGT => "jgt",
        JMP_JGE => "jge",
        JMP_JSET => "jset",
        JMP_JNE => "jne",
        JMP_JSGT => "jsgt",
        JMP_JSGE => "jsge",
        JMP_JLT => "jlt",
        JMP_JLE => "jle",
        JMP_JSLT => "jslt",
        JMP_JSLE => "jsle",
        _ => "jmp?",
    }
}

fn size_suffix(op: u8) -> &'static str {
    match op & 0x18 {
        SIZE_B => "b",
        SIZE_H => "h",
        SIZE_W => "w",
        _ => "dw",
    }
}

/// Renders one instruction at `pc` (used for jump target arithmetic).
pub fn disasm_insn(insn: &Insn, pc: usize) -> String {
    let class = insn.class();
    match class {
        CLASS_ALU | CLASS_ALU64 => {
            let w = if class == CLASS_ALU64 { "64" } else { "32" };
            let name = alu_name(insn.op);
            if insn.op & 0xF0 == ALU_NEG {
                return format!("{name}{w} r{}", insn.dst);
            }
            if insn.op & 0x08 == SRC_X {
                format!("{name}{w} r{}, r{}", insn.dst, insn.src)
            } else {
                format!("{name}{w} r{}, {}", insn.dst, insn.imm)
            }
        }
        CLASS_LD => {
            if insn.is_lddw() {
                format!("lddw r{}, {:#x}", insn.dst, insn.imm as u64)
            } else {
                format!("ld? (op={:#04x})", insn.op)
            }
        }
        CLASS_LDX => format!(
            "ldx{} r{}, [r{}{:+}]",
            size_suffix(insn.op),
            insn.dst,
            insn.src,
            insn.off
        ),
        CLASS_ST => format!(
            "st{} [r{}{:+}], {}",
            size_suffix(insn.op),
            insn.dst,
            insn.off,
            insn.imm
        ),
        CLASS_STX => format!(
            "stx{} [r{}{:+}], r{}",
            size_suffix(insn.op),
            insn.dst,
            insn.off,
            insn.src
        ),
        CLASS_JMP => {
            let jop = insn.op & 0xF0;
            match jop {
                JMP_EXIT => "exit".to_string(),
                JMP_CALL => format!("call {}", insn.imm),
                JMP_JA => format!("ja +{} -> {}", insn.off, pc as i64 + 1 + insn.off as i64),
                _ => {
                    let target = pc as i64 + 1 + insn.off as i64;
                    if insn.op & 0x08 == SRC_X {
                        format!(
                            "{} r{}, r{}, -> {}",
                            jmp_name(insn.op),
                            insn.dst,
                            insn.src,
                            target
                        )
                    } else {
                        format!(
                            "{} r{}, {}, -> {}",
                            jmp_name(insn.op),
                            insn.dst,
                            insn.imm,
                            target
                        )
                    }
                }
            }
        }
        _ => format!("?? (op={:#04x})", insn.op),
    }
}

/// Renders a whole program, one numbered instruction per line.
pub fn disasm(insns: &[Insn]) -> String {
    insns
        .iter()
        .enumerate()
        .map(|(pc, i)| format!("{pc:4}: {}", disasm_insn(i, pc)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn renders_common_forms() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.mov64_imm(R0, 7)
            .lddw(R2, 0xDEAD_BEEF)
            .ldx(SIZE_W, R3, R1, 8)
            .stx(SIZE_DW, R10, -8, R3)
            .jmp_imm(JMP_JEQ, R0, 7, l)
            .call(3);
        b.bind(l);
        b.exit();
        let (insns, _) = b.build();
        let text = disasm(&insns);
        assert!(text.contains("mov64 r0, 7"));
        assert!(text.contains("lddw r2, 0xdeadbeef"));
        assert!(text.contains("ldxw r3, [r1+8]"));
        assert!(text.contains("stxdw [r10-8], r3"));
        assert!(text.contains("jeq r0, 7, -> 6"));
        assert!(text.contains("call 3"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn every_line_is_numbered() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).exit();
        let (insns, _) = b.build();
        let text = disasm(&insns);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].trim_start().starts_with("0:"));
        assert!(lines[1].trim_start().starts_with("1:"));
    }

    #[test]
    fn real_classifier_disassembles_cleanly() {
        // The encryptor classifier from nvmetro-functions round-trips
        // through encode/decode and disassembles without unknown opcodes.
        use crate::isa::Insn;
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.ldx(SIZE_B, R2, R1, 8)
            .jmp_imm(JMP_JNE, R2, 2, l)
            .mov64_imm(R0, 1)
            .exit();
        b.bind(l);
        b.mov64_imm(R0, 0).exit();
        let (insns, _) = b.build();
        let mut bytes = Vec::new();
        for i in &insns {
            i.encode(&mut bytes);
        }
        let decoded = Insn::decode_program(&bytes).unwrap();
        let text = disasm(&decoded);
        assert!(!text.contains("??"), "unknown opcode in:\n{text}");
        assert!(!text.contains("alu?"));
        assert!(!text.contains("jmp?"));
    }
}
