//! The vbpf interpreter.
//!
//! Executes verified programs over a byte-buffer context. Pointer values are
//! *tagged virtual addresses* (context / stack / map-value spaces), so a
//! classifier never holds a real host pointer; every access is re-checked at
//! runtime as defense in depth behind the verifier, mirroring how Linux
//! pairs its verifier with runtime bounds where cheap.

use crate::isa::*;
use crate::maps::ArrayMap;
use crate::Program;

/// Helper function identifiers callable from programs.
pub mod helpers {
    /// `map_lookup(map_idx, key_ptr) -> value_ptr | 0`
    pub const MAP_LOOKUP: u32 = 1;
    /// `map_update(map_idx, key_ptr, value_ptr) -> 0 | u64::MAX`
    pub const MAP_UPDATE: u32 = 2;
    /// `ktime_ns() -> ns` — virtual time injected by the host.
    pub const KTIME_NS: u32 = 3;
    /// `prandom_u32() -> r`
    pub const PRANDOM_U32: u32 = 4;
    /// `trace(value) -> 0` — records a value for debugging/tests.
    pub const TRACE: u32 = 5;
}

const CTX_BASE: u64 = 0x1000_0000_0000_0000;
const STACK_BASE: u64 = 0x2000_0000_0000_0000;
const MAP_BASE: u64 = 0x3000_0000_0000_0000;
const MAP_IDX_SHIFT: u32 = 40;
const MAP_OFF_MASK: u64 = (1 << MAP_IDX_SHIFT) - 1;

/// Runtime execution failures (should be unreachable for verified programs
/// run with a context at least as large as the verified `ctx_size`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access fell outside its region.
    OutOfBounds { pc: usize },
    /// An opcode the interpreter does not implement.
    BadOpcode { pc: usize },
    /// The instruction budget was exhausted.
    BudgetExceeded,
    /// A call to an unknown helper.
    BadHelper { pc: usize },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ExecError {}

/// Interpreter tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Maximum instructions per invocation (forward-only control flow makes
    /// this a formality, but it guards interpreter bugs).
    pub max_insns: u64,
    /// Seed for the `prandom_u32` helper.
    pub prandom_seed: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_insns: 1 << 20,
            prandom_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// An instantiated program: bytecode plus its maps and helper state.
///
/// The router keeps one `Vm` per installed classifier; maps persist across
/// invocations (that is how classifiers keep per-VM configuration such as
/// partition LBA offsets).
pub struct Vm {
    program: Program,
    maps: Vec<ArrayMap>,
    time_ns: u64,
    rng: u64,
    trace: Vec<u64>,
    cfg: VmConfig,
    invocations: u64,
}

impl Vm {
    /// Instantiates a verified program with zero-filled maps.
    pub fn new(program: Program) -> Self {
        Self::with_config(program, VmConfig::default())
    }

    /// Instantiates with explicit configuration.
    pub fn with_config(program: Program, cfg: VmConfig) -> Self {
        let maps = program.maps.iter().map(|d| ArrayMap::new(*d)).collect();
        Vm {
            program,
            maps,
            time_ns: 0,
            rng: cfg.prandom_seed | 1,
            trace: Vec::new(),
            cfg,
            invocations: 0,
        }
    }

    /// Sets the virtual time returned by the `ktime_ns` helper.
    pub fn set_time(&mut self, ns: u64) {
        self.time_ns = ns;
    }

    /// Host-side access to a map (e.g. to configure an LBA offset).
    pub fn map(&self, idx: usize) -> &ArrayMap {
        &self.maps[idx]
    }

    /// Host-side mutable access to a map.
    pub fn map_mut(&mut self, idx: usize) -> &mut ArrayMap {
        &mut self.maps[idx]
    }

    /// Values recorded by the `trace` helper (bounded to 1024).
    pub fn trace_log(&self) -> &[u64] {
        &self.trace
    }

    /// Number of completed invocations.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Runs the program over `ctx`; returns R0 (the routing verdict).
    pub fn run(&mut self, ctx: &mut [u8]) -> Result<u64, ExecError> {
        let mut regs = [0u64; NUM_REGS];
        let mut stack = [0u8; STACK_SIZE];
        regs[R1 as usize] = CTX_BASE;
        regs[R10 as usize] = STACK_BASE + STACK_SIZE as u64;
        let mut pc = 0usize;
        let mut budget = self.cfg.max_insns;
        let insns: *const [Insn] = &self.program.insns[..];
        // SAFETY: `insns` borrows from self.program which is not mutated
        // during the loop; raw pointer avoids aliasing with &mut self for
        // helper calls.
        let insns: &[Insn] = unsafe { &*insns };
        loop {
            if budget == 0 {
                return Err(ExecError::BudgetExceeded);
            }
            budget -= 1;
            let insn = insns.get(pc).copied().ok_or(ExecError::BadOpcode { pc })?;
            let class = insn.class();
            match class {
                CLASS_ALU64 | CLASS_ALU => {
                    exec_alu(&mut regs, insn, class == CLASS_ALU64, pc)?;
                    pc += 1;
                }
                CLASS_LD => {
                    if !insn.is_lddw() {
                        return Err(ExecError::BadOpcode { pc });
                    }
                    regs[insn.dst as usize] = insn.imm as u64;
                    pc += 1;
                }
                CLASS_LDX => {
                    let addr = regs[insn.src as usize].wrapping_add(insn.off as i64 as u64);
                    let v = self.mem_read(ctx, &stack, addr, insn.access_size(), pc)?;
                    regs[insn.dst as usize] = v;
                    pc += 1;
                }
                CLASS_ST | CLASS_STX => {
                    let addr = regs[insn.dst as usize].wrapping_add(insn.off as i64 as u64);
                    let v = if class == CLASS_STX {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as u64
                    };
                    self.mem_write(ctx, &mut stack, addr, insn.access_size(), v, pc)?;
                    pc += 1;
                }
                CLASS_JMP => {
                    let jmpop = insn.op & 0xF0;
                    match jmpop {
                        JMP_EXIT => {
                            self.invocations += 1;
                            return Ok(regs[R0 as usize]);
                        }
                        JMP_CALL => {
                            self.call_helper(ctx, &mut stack, &mut regs, insn.imm as u32, pc)?;
                            pc += 1;
                        }
                        _ => {
                            let a = regs[insn.dst as usize];
                            let b = if insn.op & 0x08 == SRC_X {
                                regs[insn.src as usize]
                            } else {
                                insn.imm as u64
                            };
                            let taken = match jmpop {
                                JMP_JA => true,
                                JMP_JEQ => a == b,
                                JMP_JNE => a != b,
                                JMP_JGT => a > b,
                                JMP_JGE => a >= b,
                                JMP_JLT => a < b,
                                JMP_JLE => a <= b,
                                JMP_JSET => a & b != 0,
                                JMP_JSGT => (a as i64) > b as i64,
                                JMP_JSGE => (a as i64) >= b as i64,
                                JMP_JSLT => (a as i64) < (b as i64),
                                JMP_JSLE => (a as i64) <= b as i64,
                                _ => return Err(ExecError::BadOpcode { pc }),
                            };
                            pc = if taken {
                                (pc as i64 + 1 + insn.off as i64) as usize
                            } else {
                                pc + 1
                            };
                        }
                    }
                }
                _ => return Err(ExecError::BadOpcode { pc }),
            }
        }
    }

    fn mem_read(
        &self,
        ctx: &[u8],
        stack: &[u8; STACK_SIZE],
        addr: u64,
        size: usize,
        pc: usize,
    ) -> Result<u64, ExecError> {
        let bytes = self.resolve(ctx, stack, addr, size, pc)?;
        let mut v = [0u8; 8];
        v[..size].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(v))
    }

    fn resolve<'b>(
        &'b self,
        ctx: &'b [u8],
        stack: &'b [u8; STACK_SIZE],
        addr: u64,
        size: usize,
        pc: usize,
    ) -> Result<&'b [u8], ExecError> {
        let oob = ExecError::OutOfBounds { pc };
        if addr >= MAP_BASE {
            let rel = addr - MAP_BASE;
            let map = (rel >> MAP_IDX_SHIFT) as usize;
            let off = (rel & MAP_OFF_MASK) as usize;
            let m = self.maps.get(map).ok_or(oob)?;
            m.get(0).ok_or(oob)?;
            let total = m.def().value_size * m.def().max_entries as usize;
            if off + size > total {
                return Err(oob);
            }
            // Flat view across slots; lookups always return slot-aligned
            // pointers and the verifier bounds offsets within a value.
            let key = (off / m.def().value_size) as u32;
            let within = off % m.def().value_size;
            let slot = m.get(key).ok_or(oob)?;
            if within + size > slot.len() {
                return Err(oob);
            }
            Ok(&slot[within..within + size])
        } else if addr >= STACK_BASE {
            let off = (addr - STACK_BASE) as usize;
            if off + size > STACK_SIZE {
                return Err(oob);
            }
            Ok(&stack[off..off + size])
        } else if addr >= CTX_BASE {
            let off = (addr - CTX_BASE) as usize;
            if off + size > ctx.len() {
                return Err(oob);
            }
            Ok(&ctx[off..off + size])
        } else {
            Err(oob)
        }
    }

    fn mem_write(
        &mut self,
        ctx: &mut [u8],
        stack: &mut [u8; STACK_SIZE],
        addr: u64,
        size: usize,
        value: u64,
        pc: usize,
    ) -> Result<(), ExecError> {
        let oob = ExecError::OutOfBounds { pc };
        let bytes = value.to_le_bytes();
        if addr >= MAP_BASE {
            let rel = addr - MAP_BASE;
            let map = (rel >> MAP_IDX_SHIFT) as usize;
            let off = (rel & MAP_OFF_MASK) as usize;
            let m = self.maps.get_mut(map).ok_or(oob)?;
            let vsize = m.def().value_size;
            let key = (off / vsize) as u32;
            let within = off % vsize;
            let slot = m.get_mut(key).ok_or(oob)?;
            if within + size > slot.len() {
                return Err(oob);
            }
            slot[within..within + size].copy_from_slice(&bytes[..size]);
            Ok(())
        } else if addr >= STACK_BASE {
            let off = (addr - STACK_BASE) as usize;
            if off + size > STACK_SIZE {
                return Err(oob);
            }
            stack[off..off + size].copy_from_slice(&bytes[..size]);
            Ok(())
        } else if addr >= CTX_BASE {
            let off = (addr - CTX_BASE) as usize;
            if off + size > ctx.len() {
                return Err(oob);
            }
            ctx[off..off + size].copy_from_slice(&bytes[..size]);
            Ok(())
        } else {
            Err(oob)
        }
    }

    fn call_helper(
        &mut self,
        ctx: &mut [u8],
        stack: &mut [u8; STACK_SIZE],
        regs: &mut [u64; NUM_REGS],
        helper: u32,
        pc: usize,
    ) -> Result<(), ExecError> {
        let r0 = match helper {
            helpers::MAP_LOOKUP => {
                let map_idx = regs[R1 as usize] as usize;
                let key = self.mem_read(ctx, stack, regs[R2 as usize], 4, pc)? as u32;
                match self.maps.get(map_idx) {
                    Some(m) if key < m.def().max_entries => {
                        MAP_BASE
                            + ((map_idx as u64) << MAP_IDX_SHIFT)
                            + (key as usize * m.def().value_size) as u64
                    }
                    _ => 0,
                }
            }
            helpers::MAP_UPDATE => {
                let map_idx = regs[R1 as usize] as usize;
                let key = self.mem_read(ctx, stack, regs[R2 as usize], 4, pc)? as u32;
                let vsize = match self.maps.get(map_idx) {
                    Some(m) => m.def().value_size,
                    None => return Err(ExecError::BadHelper { pc }),
                };
                let mut value = vec![0u8; vsize];
                for (i, b) in value.iter_mut().enumerate() {
                    *b =
                        self.mem_read(ctx, stack, regs[R3 as usize].wrapping_add(i as u64), 1, pc)?
                            as u8;
                }
                match self.maps.get_mut(map_idx).unwrap().update(key, &value) {
                    Ok(()) => 0,
                    Err(_) => u64::MAX,
                }
            }
            helpers::KTIME_NS => self.time_ns,
            helpers::PRANDOM_U32 => {
                // xorshift64*
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) & 0xFFFF_FFFF
            }
            helpers::TRACE => {
                if self.trace.len() < 1024 {
                    self.trace.push(regs[R1 as usize]);
                }
                0
            }
            _ => return Err(ExecError::BadHelper { pc }),
        };
        regs[R0 as usize] = r0;
        // Clobber caller-saved registers like the real calling convention.
        for r in R1..=R5 {
            regs[r as usize] = 0;
        }
        Ok(())
    }
}

fn exec_alu(
    regs: &mut [u64; NUM_REGS],
    insn: Insn,
    is64: bool,
    pc: usize,
) -> Result<(), ExecError> {
    let aluop = insn.op & 0xF0;
    let b = if insn.op & 0x08 == SRC_X {
        regs[insn.src as usize]
    } else {
        insn.imm as u64
    };
    let a = regs[insn.dst as usize];
    let (a32, b32) = (a as u32, b as u32);
    let v: u64 = if is64 {
        match aluop {
            ALU_ADD => a.wrapping_add(b),
            ALU_SUB => a.wrapping_sub(b),
            ALU_MUL => a.wrapping_mul(b),
            ALU_DIV => a.checked_div(b).unwrap_or(0),
            ALU_MOD => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            ALU_OR => a | b,
            ALU_AND => a & b,
            ALU_XOR => a ^ b,
            ALU_LSH => a.wrapping_shl((b & 63) as u32),
            ALU_RSH => a.wrapping_shr((b & 63) as u32),
            ALU_ARSH => ((a as i64) >> (b & 63)) as u64,
            ALU_NEG => (a as i64).wrapping_neg() as u64,
            ALU_MOV => b,
            _ => return Err(ExecError::BadOpcode { pc }),
        }
    } else {
        let v32: u32 = match aluop {
            ALU_ADD => a32.wrapping_add(b32),
            ALU_SUB => a32.wrapping_sub(b32),
            ALU_MUL => a32.wrapping_mul(b32),
            ALU_DIV => a32.checked_div(b32).unwrap_or(0),
            ALU_MOD => {
                if b32 == 0 {
                    a32
                } else {
                    a32 % b32
                }
            }
            ALU_OR => a32 | b32,
            ALU_AND => a32 & b32,
            ALU_XOR => a32 ^ b32,
            ALU_LSH => a32.wrapping_shl(b32 & 31),
            ALU_RSH => a32.wrapping_shr(b32 & 31),
            ALU_ARSH => ((a32 as i32) >> (b32 & 31)) as u32,
            ALU_NEG => (a32 as i32).wrapping_neg() as u32,
            ALU_MOV => b32,
            _ => return Err(ExecError::BadOpcode { pc }),
        };
        v32 as u64
    };
    regs[insn.dst as usize] = v;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::maps::MapDef;
    use crate::verifier::{verify, VerifierConfig};

    fn compile(b: ProgramBuilder, ctx_size: usize, writable: std::ops::Range<usize>) -> Vm {
        let (insns, maps) = b.build();
        let cfg = VerifierConfig {
            ctx_size,
            ctx_writable: writable,
        };
        Vm::new(verify(insns, maps, &cfg).expect("program must verify"))
    }

    #[test]
    fn returns_immediate() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 42).exit();
        let mut vm = compile(b, 16, 0..0);
        assert_eq!(vm.run(&mut [0u8; 16]).unwrap(), 42);
        assert_eq!(vm.invocations(), 1);
    }

    #[test]
    fn reads_context_fields() {
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_W, R0, R1, 4).exit();
        let mut vm = compile(b, 16, 0..0);
        let mut ctx = [0u8; 16];
        ctx[4..8].copy_from_slice(&0xAB_CDu32.to_le_bytes());
        assert_eq!(vm.run(&mut ctx).unwrap(), 0xAB_CD);
    }

    #[test]
    fn writes_context_window() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).st_imm(SIZE_DW, R1, 8, 0x55).exit();
        let mut vm = compile(b, 16, 8..16);
        let mut ctx = [0u8; 16];
        vm.run(&mut ctx).unwrap();
        assert_eq!(u64::from_le_bytes(ctx[8..16].try_into().unwrap()), 0x55);
    }

    #[test]
    fn arithmetic_32bit_zero_extends() {
        let mut b = ProgramBuilder::new();
        b.lddw(R0, 0xFFFF_FFFF_FFFF_FFFF)
            .alu32_imm(ALU_ADD, R0, 1)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        // 32-bit add wraps to 0 and clears the upper half.
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0);
    }

    #[test]
    fn division_by_zero_register_yields_zero() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 100)
            .mov64_imm(R2, 0)
            .alu64(ALU_DIV, R0, R2)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0);
    }

    #[test]
    fn modulo_by_zero_keeps_dividend() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 7)
            .mov64_imm(R2, 0)
            .alu64(ALU_MOD, R0, R2)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 7);
    }

    #[test]
    fn branches_select_paths() {
        // return ctx[0] >= 10 ? 1 : 2
        let mut b = ProgramBuilder::new();
        let ge = b.new_label();
        b.ldx(SIZE_B, R2, R1, 0)
            .jmp_imm(JMP_JGE, R2, 10, ge)
            .mov64_imm(R0, 2)
            .exit();
        b.bind(ge);
        b.mov64_imm(R0, 1).exit();
        let mut vm = compile(b, 8, 0..0);
        let mut lo = [5u8, 0, 0, 0, 0, 0, 0, 0];
        let mut hi = [55u8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(vm.run(&mut lo).unwrap(), 2);
        assert_eq!(vm.run(&mut hi).unwrap(), 1);
    }

    #[test]
    fn signed_comparisons() {
        // return (i64)ctx[0..8] < -1 ? 1 : 0
        let mut b = ProgramBuilder::new();
        let neg = b.new_label();
        b.ldx(SIZE_DW, R2, R1, 0)
            .jmp_imm(JMP_JSLT, R2, -1, neg)
            .mov64_imm(R0, 0)
            .exit();
        b.bind(neg);
        b.mov64_imm(R0, 1).exit();
        let mut vm = compile(b, 8, 0..0);
        let mut ctx = (-100i64).to_le_bytes();
        assert_eq!(vm.run(&mut ctx).unwrap(), 1);
        let mut ctx = 100i64.to_le_bytes();
        assert_eq!(vm.run(&mut ctx).unwrap(), 0);
    }

    #[test]
    fn stack_spill_and_reload() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R2, 1234)
            .stx(SIZE_DW, R10, -16, R2)
            .ldx(SIZE_DW, R0, R10, -16)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 1234);
    }

    #[test]
    fn map_state_persists_across_invocations() {
        // counter: v = map[0]; map[0] = v + 1; return v
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 1,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R6, R0, 0)
            .mov64(R2, R6)
            .add64_imm(R2, 1)
            .stx(SIZE_DW, R0, 0, R2)
            .mov64(R0, R6)
            .exit();
        b.bind(is_null);
        b.lddw(R0, u64::MAX).exit();
        let mut vm = compile(b, 8, 0..0);
        let mut ctx = [0u8; 8];
        assert_eq!(vm.run(&mut ctx).unwrap(), 0);
        assert_eq!(vm.run(&mut ctx).unwrap(), 1);
        assert_eq!(vm.run(&mut ctx).unwrap(), 2);
        // Host sees the same state.
        assert_eq!(vm.map(0).get_u64(0), Some(3));
    }

    #[test]
    fn host_configured_map_read_by_program() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 2,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 1)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R0, R0, 0)
            .exit();
        b.bind(is_null);
        b.mov64_imm(R0, 0).exit();
        let mut vm = compile(b, 8, 0..0);
        vm.map_mut(0).set_u64(1, 0xBEEF).unwrap();
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0xBEEF);
    }

    #[test]
    fn ktime_helper_returns_injected_time() {
        let mut b = ProgramBuilder::new();
        b.call(helpers::KTIME_NS).exit();
        let mut vm = compile(b, 8, 0..0);
        vm.set_time(987_654);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 987_654);
    }

    #[test]
    fn trace_helper_records_values() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R1, 77).call(helpers::TRACE).exit();
        let mut vm = compile(b, 8, 0..0);
        vm.run(&mut [0u8; 8]).unwrap();
        assert_eq!(vm.trace_log(), &[77]);
    }

    #[test]
    fn prandom_is_deterministic_per_seed() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.call(helpers::PRANDOM_U32).exit();
            b
        };
        let mut a = compile(build(), 8, 0..0);
        let mut b2 = compile(build(), 8, 0..0);
        assert_eq!(
            a.run(&mut [0u8; 8]).unwrap(),
            b2.run(&mut [0u8; 8]).unwrap()
        );
    }

    #[test]
    fn runtime_rechecks_ctx_bounds() {
        // Verified against ctx_size=16 but run with an 8-byte ctx: the
        // runtime bound must catch it (defense in depth).
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_DW, R0, R1, 8).exit();
        let mut vm = compile(b, 16, 0..0);
        let mut small = [0u8; 8];
        assert!(matches!(
            vm.run(&mut small),
            Err(ExecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn map_update_helper_round_trips() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 2,
        });
        // key=0 at fp-4; value buffer at fp-16 = 0x1122; call update; ret 0
        b.st_imm(SIZE_W, R10, -4, 0)
            .st_imm(SIZE_DW, R10, -16, 0x1122)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .mov64(R3, R10)
            .add64_imm(R3, -16)
            .call(helpers::MAP_UPDATE)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0);
        assert_eq!(vm.map(0).get_u64(0), Some(0x1122));
    }
}
