//! The vbpf interpreter.
//!
//! Executes verified programs over a byte-buffer context. Pointer values are
//! *tagged virtual addresses* (context / stack / map-value spaces), so a
//! classifier never holds a real host pointer; every access is re-checked at
//! runtime as defense in depth behind the verifier, mirroring how Linux
//! pairs its verifier with runtime bounds where cheap.

use crate::compile::{compile, CompiledProgram, Op};
use crate::isa::*;
use crate::maps::ArrayMap;
use crate::memo::{CtxWrite, Key, MemoStats, VerdictCache, MAX_KEY};
use crate::Program;

/// Helper function identifiers callable from programs.
pub mod helpers {
    /// `map_lookup(map_idx, key_ptr) -> value_ptr | 0`
    pub const MAP_LOOKUP: u32 = 1;
    /// `map_update(map_idx, key_ptr, value_ptr) -> 0 | u64::MAX`
    pub const MAP_UPDATE: u32 = 2;
    /// `ktime_ns() -> ns` — virtual time injected by the host.
    pub const KTIME_NS: u32 = 3;
    /// `prandom_u32() -> r`
    pub const PRANDOM_U32: u32 = 4;
    /// `trace(value) -> 0` — records a value for debugging/tests.
    pub const TRACE: u32 = 5;
}

pub(crate) const CTX_BASE: u64 = 0x1000_0000_0000_0000;
pub(crate) const STACK_BASE: u64 = 0x2000_0000_0000_0000;

/// Width of the runtime register file. The ISA has [`NUM_REGS`] (11)
/// registers; executing over a 16-slot array lets the compiled tier's
/// accessors mask indices (`r & 15`) instead of bounds-checking them —
/// the verifier guarantees register numbers are in range, so the masked
/// and checked forms are observably identical.
const REG_FILE: usize = 16;

/// Masked register read for the compiled dispatch loop.
#[inline(always)]
fn reg(regs: &[u64; REG_FILE], r: u8) -> u64 {
    regs[(r & 15) as usize]
}

/// Masked register write slot for the compiled dispatch loop.
#[inline(always)]
fn reg_mut(regs: &mut [u64; REG_FILE], r: u8) -> &mut u64 {
    &mut regs[(r & 15) as usize]
}
const MAP_BASE: u64 = 0x3000_0000_0000_0000;
const MAP_IDX_SHIFT: u32 = 40;
const MAP_OFF_MASK: u64 = (1 << MAP_IDX_SHIFT) - 1;

/// Which execution tier answered an invocation (see
/// [`Vm::run_with_tier`]). The router surfaces per-tier counters and
/// latency histograms through telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Fetch/decode interpreter: the fallback for programs the compile
    /// tier rejects and for undersized contexts.
    Interp,
    /// Pre-decoded op array ([`crate::compile`]).
    Compiled,
    /// Verdict served from the memo cache ([`crate::memo`]); the program
    /// did not execute at all.
    CacheHit,
}

/// Runtime execution failures (should be unreachable for verified programs
/// run with a context at least as large as the verified `ctx_size`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access fell outside its region.
    OutOfBounds { pc: usize },
    /// An opcode the interpreter does not implement.
    BadOpcode { pc: usize },
    /// The instruction budget was exhausted.
    BudgetExceeded,
    /// A call to an unknown helper.
    BadHelper { pc: usize },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ExecError {}

/// Interpreter tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Maximum instructions per invocation (forward-only control flow makes
    /// this a formality, but it guards interpreter bugs).
    pub max_insns: u64,
    /// Seed for the `prandom_u32` helper.
    pub prandom_seed: u64,
    /// Verdict-cache slots for pure programs; 0 disables memoization.
    pub memo_capacity: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_insns: 1 << 20,
            prandom_seed: 0x9E37_79B9_7F4A_7C15,
            memo_capacity: 256,
        }
    }
}

/// An instantiated program: bytecode plus its maps and helper state.
///
/// The router keeps one `Vm` per installed classifier; maps persist across
/// invocations (that is how classifiers keep per-VM configuration such as
/// partition LBA offsets).
pub struct Vm {
    program: Program,
    compiled: Option<CompiledProgram>,
    memo: Option<VerdictCache>,
    /// Bumped by [`Vm::map_mut`]; a mismatch with the cache's stored
    /// generation flushes memoized verdicts (map contents are an input
    /// to pure programs via `map_lookup`).
    map_generation: u64,
    /// Reusable journal buffer for memoized compiled runs.
    journal: Vec<CtxWrite>,
    maps: Vec<ArrayMap>,
    time_ns: u64,
    rng: u64,
    trace: Vec<u64>,
    cfg: VmConfig,
    invocations: u64,
}

impl Vm {
    /// Instantiates a verified program with zero-filled maps.
    pub fn new(program: Program) -> Self {
        Self::with_config(program, VmConfig::default())
    }

    /// Instantiates with explicit configuration.
    pub fn with_config(program: Program, cfg: VmConfig) -> Self {
        let maps = program.maps.iter().map(|d| ArrayMap::new(*d)).collect();
        let compiled = compile(&program);
        let mut vm = Vm {
            program,
            compiled,
            memo: None,
            map_generation: 0,
            journal: Vec::new(),
            maps,
            time_ns: 0,
            rng: cfg.prandom_seed | 1,
            trace: Vec::new(),
            cfg,
            invocations: 0,
        };
        vm.set_memo_capacity(vm.cfg.memo_capacity);
        vm
    }

    /// Resizes (or disables, with 0) the verdict cache. The cache only
    /// ever engages for programs that are pure, compiled, and whose ctx
    /// read-set fits the key; for others this is a no-op beyond storing
    /// the setting.
    pub fn set_memo_capacity(&mut self, capacity: usize) {
        self.cfg.memo_capacity = capacity;
        let key_len: usize = self
            .program
            .analysis
            .ctx_reads
            .iter()
            .map(|(s, e)| e - s)
            .sum();
        let eligible = capacity > 0
            && self.compiled.is_some()
            && self.program.analysis.pure
            && key_len <= MAX_KEY;
        self.memo = eligible.then(|| VerdictCache::new(capacity));
    }

    /// The verified program this Vm executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// True when the pre-decoded compile tier is available.
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Verdict-cache counters (all zero when memoization is disabled or
    /// the program is ineligible).
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.as_ref().map(|m| m.stats).unwrap_or_default()
    }

    /// Sets the virtual time returned by the `ktime_ns` helper.
    pub fn set_time(&mut self, ns: u64) {
        self.time_ns = ns;
    }

    /// Host-side access to a map (e.g. to configure an LBA offset).
    pub fn map(&self, idx: usize) -> &ArrayMap {
        &self.maps[idx]
    }

    /// Host-side mutable access to a map. Conservatively invalidates
    /// memoized verdicts (the caller may write through the reference).
    pub fn map_mut(&mut self, idx: usize) -> &mut ArrayMap {
        self.map_generation += 1;
        &mut self.maps[idx]
    }

    /// Values recorded by the `trace` helper (bounded to 1024).
    pub fn trace_log(&self) -> &[u64] {
        &self.trace
    }

    /// Number of completed invocations.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Runs the program over `ctx`; returns R0 (the routing verdict).
    ///
    /// Picks the fastest applicable tier (memo hit → compiled →
    /// interpreter); use [`Vm::run_with_tier`] to observe which one ran,
    /// or [`Vm::run_interp`] to force the interpreter.
    pub fn run(&mut self, ctx: &mut [u8]) -> Result<u64, ExecError> {
        self.run_with_tier(ctx).map(|(v, _)| v)
    }

    /// Runs the program and reports which execution tier answered.
    #[inline]
    pub fn run_with_tier(&mut self, ctx: &mut [u8]) -> Result<(u64, Tier), ExecError> {
        // Hot path: a memoized program re-seeing the request shape it saw
        // last (the sequential-read pattern) replays the cached verdict
        // and journal without materializing a key or touching the
        // compiled engine at all.
        if let (Some(cache), Some(cp)) = (&mut self.memo, &self.compiled) {
            if ctx.len() >= cp.min_ctx && cache.generation_current(self.map_generation) {
                if let Some(verdict) = cache.replay_last(&cp.key_plan, ctx) {
                    self.invocations += 1;
                    return Ok((verdict, Tier::CacheHit));
                }
            }
        }
        self.run_with_tier_full(ctx)
    }

    /// Tier dispatch past the memo fast path: interpreter fallback for
    /// uncompiled programs or undersized contexts, then memo probe, then
    /// the compiled engine (journaling into the memo when eligible).
    #[inline]
    fn run_with_tier_full(&mut self, ctx: &mut [u8]) -> Result<(u64, Tier), ExecError> {
        let min_ctx = match &self.compiled {
            Some(c) => c.min_ctx,
            None => return self.run_interp(ctx).map(|v| (v, Tier::Interp)),
        };
        if ctx.len() < min_ctx {
            // The compile-time bounds proofs assumed at least the
            // verified ctx footprint; reproduce the interpreter's exact
            // behavior (possibly OutOfBounds) for undersized contexts.
            return self.run_interp(ctx).map(|v| (v, Tier::Interp));
        }
        if self.memo.is_none() {
            return self.run_compiled(ctx, None).map(|v| (v, Tier::Compiled));
        }
        let key = Key::extract(&self.program.analysis.ctx_reads, ctx);
        let generation = self.map_generation;
        let hit = {
            let cache = self.memo.as_mut().expect("memo checked above");
            cache.lookup(&key, generation).map(|(verdict, writes)| {
                for w in writes {
                    store_le(ctx, w.off as usize, w.size as usize, w.v);
                }
                verdict
            })
        };
        if let Some(verdict) = hit {
            self.invocations += 1;
            return Ok((verdict, Tier::CacheHit));
        }
        let mut journal = std::mem::take(&mut self.journal);
        journal.clear();
        let res = self.run_compiled(ctx, Some(&mut journal));
        if let Ok(verdict) = res {
            self.memo
                .as_mut()
                .expect("memo checked above")
                .insert(key, verdict, &journal);
        }
        self.journal = journal;
        res.map(|v| (v, Tier::Compiled))
    }

    /// Executes the pre-decoded op array. Caller guarantees
    /// `self.compiled` is present and `ctx.len() >= min_ctx`; when
    /// `journal` is given, every ctx write is recorded for memo replay.
    #[inline]
    fn run_compiled(
        &mut self,
        ctx: &mut [u8],
        mut journal: Option<&mut Vec<CtxWrite>>,
    ) -> Result<u64, ExecError> {
        let mut regs = [0u64; REG_FILE];
        regs[R1 as usize] = CTX_BASE;
        regs[R10 as usize] = STACK_BASE + STACK_SIZE as u64;
        let mut budget = self.cfg.max_insns;
        let cp: *const CompiledProgram = self.compiled.as_ref().expect("compiled tier present");
        // SAFETY: `cp` borrows from self.compiled, which nothing in this
        // loop mutates (helper calls touch maps/rng/trace only); the raw
        // pointer avoids aliasing with `&mut self` for those calls.
        let cp: &CompiledProgram = unsafe { &*cp };
        // Programs with no retained stack op cannot observe the frame:
        // skip the 512-byte zeroing (a large share of short classifiers'
        // per-invocation cost) and hand the arms an empty slice.
        let mut frame = std::mem::MaybeUninit::<[u8; STACK_SIZE]>::uninit();
        let stack: &mut [u8] = if cp.uses_stack {
            frame.write([0u8; STACK_SIZE])
        } else {
            &mut []
        };
        let ops = &cp.ops[..];
        let weights = &cp.weights[..];
        let pcs = &cp.pcs[..];
        // DAG programs (the verifier rejects backward jumps) charge at
        // most `total_weight`; when the budget covers that, per-op
        // accounting cannot fail and is skipped entirely.
        let check_budget = budget < cp.total_weight;
        let mut i = 0usize;
        loop {
            if check_budget {
                // Budget parity with the interpreter: an op's weight is
                // itself plus the eliminated instructions folded into it.
                let w = weights[i] as u64;
                if budget < w {
                    return Err(ExecError::BudgetExceeded);
                }
                budget -= w;
            }
            // SAFETY: `i` is always in bounds — it starts at 0 (a
            // verified program has at least its exit), branch/ja targets
            // were validated and remapped during compilation, and
            // fall-through `i + 1` is only reachable from non-terminal
            // ops (the verifier's falls-off-end check makes the last op
            // an exit or jump).
            match *unsafe { ops.get_unchecked(i) } {
                Op::MovImm { dst, v } => *reg_mut(&mut regs, dst) = v,
                Op::AluImm {
                    aluop,
                    is64,
                    dst,
                    imm,
                } => {
                    let a = reg(&regs, dst);
                    // `lower` validated the opcode, so `None` (and the
                    // lazily built error) is unreachable here.
                    *reg_mut(&mut regs, dst) =
                        alu_value(aluop, is64, a, imm).ok_or_else(|| ExecError::BadOpcode {
                            pc: pcs[i] as usize,
                        })?;
                }
                Op::AluReg {
                    aluop,
                    is64,
                    dst,
                    src,
                } => {
                    let a = reg(&regs, dst);
                    let b = reg(&regs, src);
                    *reg_mut(&mut regs, dst) =
                        alu_value(aluop, is64, a, b).ok_or_else(|| ExecError::BadOpcode {
                            pc: pcs[i] as usize,
                        })?;
                }
                Op::LdCtx { dst, off, size } => {
                    *reg_mut(&mut regs, dst) = load_le(ctx, off as usize, size as usize);
                }
                Op::LdStack { dst, off, size } => {
                    *reg_mut(&mut regs, dst) = load_le(stack, off as usize, size as usize);
                }
                Op::StCtxReg { src, off, size } => {
                    let v = reg(&regs, src);
                    store_le(ctx, off as usize, size as usize, v);
                    if let Some(j) = journal.as_deref_mut() {
                        j.push(CtxWrite { off, size, v });
                    }
                }
                Op::StCtxImm { off, size, v } => {
                    store_le(ctx, off as usize, size as usize, v);
                    if let Some(j) = journal.as_deref_mut() {
                        j.push(CtxWrite { off, size, v });
                    }
                }
                Op::StStackReg { src, off, size } => {
                    let v = reg(&regs, src);
                    store_le(stack, off as usize, size as usize, v);
                }
                Op::StStackImm { off, size, v } => {
                    store_le(stack, off as usize, size as usize, v);
                }
                Op::LdDyn {
                    dst,
                    src,
                    off,
                    size,
                } => {
                    let addr = reg(&regs, src).wrapping_add(off as i64 as u64);
                    *reg_mut(&mut regs, dst) =
                        self.mem_read(ctx, stack, addr, size as usize, pcs[i] as usize)?;
                }
                Op::StDynReg {
                    dst,
                    src,
                    off,
                    size,
                } => {
                    let addr = reg(&regs, dst).wrapping_add(off as i64 as u64);
                    let v = reg(&regs, src);
                    self.mem_write(ctx, stack, addr, size as usize, v, pcs[i] as usize)?;
                }
                Op::StDynImm { dst, off, size, v } => {
                    let addr = reg(&regs, dst).wrapping_add(off as i64 as u64);
                    self.mem_write(ctx, stack, addr, size as usize, v, pcs[i] as usize)?;
                }
                Op::Call { helper } => {
                    self.call_helper(ctx, stack, &mut regs, helper, pcs[i] as usize)?;
                }
                Op::Ja { target } => {
                    i = target as usize;
                    continue;
                }
                Op::Branch {
                    jmpop,
                    use_reg,
                    dst,
                    src,
                    imm,
                    target,
                } => {
                    let a = reg(&regs, dst);
                    let b = if use_reg { reg(&regs, src) } else { imm };
                    let taken = branch_taken(jmpop, a, b).ok_or_else(|| ExecError::BadOpcode {
                        pc: pcs[i] as usize,
                    })?;
                    i = if taken { target as usize } else { i + 1 };
                    continue;
                }
                Op::Exit => {
                    self.invocations += 1;
                    return Ok(regs[R0 as usize]);
                }
                Op::LdCtxBranchImm {
                    dst,
                    off,
                    size,
                    jmpop,
                    imm,
                    target,
                } => {
                    let v = load_le(ctx, off as usize, size as usize);
                    *reg_mut(&mut regs, dst) = v;
                    let taken =
                        branch_taken(jmpop, v, imm).ok_or_else(|| ExecError::BadOpcode {
                            pc: pcs[i] as usize,
                        })?;
                    i = if taken { target as usize } else { i + 1 };
                    continue;
                }
                Op::AluRegReg {
                    aluop,
                    is64,
                    dst,
                    a,
                    b,
                } => {
                    let av = reg(&regs, a);
                    let bv = reg(&regs, b);
                    *reg_mut(&mut regs, dst) =
                        alu_value(aluop, is64, av, bv).ok_or_else(|| ExecError::BadOpcode {
                            pc: pcs[i] as usize,
                        })?;
                }
                Op::AluImmStCtx {
                    aluop,
                    is64,
                    dst,
                    imm,
                    off,
                    size,
                } => {
                    let a = reg(&regs, dst);
                    let v = alu_value(aluop, is64, a, imm).ok_or_else(|| ExecError::BadOpcode {
                        pc: pcs[i] as usize,
                    })?;
                    *reg_mut(&mut regs, dst) = v;
                    store_le(ctx, off as usize, size as usize, v);
                    if let Some(j) = journal.as_deref_mut() {
                        j.push(CtxWrite { off, size, v });
                    }
                }
                Op::MovImmExit { v } => {
                    self.invocations += 1;
                    return Ok(v);
                }
            }
            i += 1;
        }
    }

    /// Runs the program on the fetch/decode interpreter, bypassing the
    /// compile tier and the memo cache (used as the fallback tier and by
    /// the differential tests/benches as the reference executor).
    pub fn run_interp(&mut self, ctx: &mut [u8]) -> Result<u64, ExecError> {
        let mut regs = [0u64; REG_FILE];
        let mut stack = [0u8; STACK_SIZE];
        regs[R1 as usize] = CTX_BASE;
        regs[R10 as usize] = STACK_BASE + STACK_SIZE as u64;
        let mut pc = 0usize;
        let mut budget = self.cfg.max_insns;
        let insns: *const [Insn] = &self.program.insns[..];
        // SAFETY: `insns` borrows from self.program which is not mutated
        // during the loop; raw pointer avoids aliasing with &mut self for
        // helper calls.
        let insns: &[Insn] = unsafe { &*insns };
        loop {
            if budget == 0 {
                return Err(ExecError::BudgetExceeded);
            }
            budget -= 1;
            let insn = insns.get(pc).copied().ok_or(ExecError::BadOpcode { pc })?;
            let class = insn.class();
            match class {
                CLASS_ALU64 | CLASS_ALU => {
                    exec_alu(&mut regs, insn, class == CLASS_ALU64, pc)?;
                    pc += 1;
                }
                CLASS_LD => {
                    if !insn.is_lddw() {
                        return Err(ExecError::BadOpcode { pc });
                    }
                    regs[insn.dst as usize] = insn.imm as u64;
                    pc += 1;
                }
                CLASS_LDX => {
                    let addr = regs[insn.src as usize].wrapping_add(insn.off as i64 as u64);
                    let v = self.mem_read(ctx, &stack, addr, insn.access_size(), pc)?;
                    regs[insn.dst as usize] = v;
                    pc += 1;
                }
                CLASS_ST | CLASS_STX => {
                    let addr = regs[insn.dst as usize].wrapping_add(insn.off as i64 as u64);
                    let v = if class == CLASS_STX {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as u64
                    };
                    self.mem_write(ctx, &mut stack, addr, insn.access_size(), v, pc)?;
                    pc += 1;
                }
                CLASS_JMP => {
                    let jmpop = insn.op & 0xF0;
                    match jmpop {
                        JMP_EXIT => {
                            self.invocations += 1;
                            return Ok(regs[R0 as usize]);
                        }
                        JMP_CALL => {
                            self.call_helper(ctx, &mut stack, &mut regs, insn.imm as u32, pc)?;
                            pc += 1;
                        }
                        _ => {
                            let a = regs[insn.dst as usize];
                            let b = if insn.op & 0x08 == SRC_X {
                                regs[insn.src as usize]
                            } else {
                                insn.imm as u64
                            };
                            let taken =
                                branch_taken(jmpop, a, b).ok_or(ExecError::BadOpcode { pc })?;
                            pc = if taken {
                                (pc as i64 + 1 + insn.off as i64) as usize
                            } else {
                                pc + 1
                            };
                        }
                    }
                }
                _ => return Err(ExecError::BadOpcode { pc }),
            }
        }
    }

    fn mem_read(
        &self,
        ctx: &[u8],
        stack: &[u8],
        addr: u64,
        size: usize,
        pc: usize,
    ) -> Result<u64, ExecError> {
        let bytes = self.resolve(ctx, stack, addr, size, pc)?;
        let mut v = [0u8; 8];
        v[..size].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(v))
    }

    fn resolve<'b>(
        &'b self,
        ctx: &'b [u8],
        stack: &'b [u8],
        addr: u64,
        size: usize,
        pc: usize,
    ) -> Result<&'b [u8], ExecError> {
        let oob = ExecError::OutOfBounds { pc };
        if addr >= MAP_BASE {
            let rel = addr - MAP_BASE;
            let map = (rel >> MAP_IDX_SHIFT) as usize;
            let off = (rel & MAP_OFF_MASK) as usize;
            let m = self.maps.get(map).ok_or(oob)?;
            m.get(0).ok_or(oob)?;
            let total = m.def().value_size * m.def().max_entries as usize;
            if off + size > total {
                return Err(oob);
            }
            // Flat view across slots; lookups always return slot-aligned
            // pointers and the verifier bounds offsets within a value.
            let key = (off / m.def().value_size) as u32;
            let within = off % m.def().value_size;
            let slot = m.get(key).ok_or(oob)?;
            if within + size > slot.len() {
                return Err(oob);
            }
            Ok(&slot[within..within + size])
        } else if addr >= STACK_BASE {
            let off = (addr - STACK_BASE) as usize;
            // `stack.len()`, not STACK_SIZE: a compiled program with no
            // retained stack op runs on an empty frame, and the verifier
            // guarantees it never forms a stack-tagged address anyway.
            if off + size > stack.len() {
                return Err(oob);
            }
            Ok(&stack[off..off + size])
        } else if addr >= CTX_BASE {
            let off = (addr - CTX_BASE) as usize;
            if off + size > ctx.len() {
                return Err(oob);
            }
            Ok(&ctx[off..off + size])
        } else {
            Err(oob)
        }
    }

    fn mem_write(
        &mut self,
        ctx: &mut [u8],
        stack: &mut [u8],
        addr: u64,
        size: usize,
        value: u64,
        pc: usize,
    ) -> Result<(), ExecError> {
        let oob = ExecError::OutOfBounds { pc };
        let bytes = value.to_le_bytes();
        if addr >= MAP_BASE {
            let rel = addr - MAP_BASE;
            let map = (rel >> MAP_IDX_SHIFT) as usize;
            let off = (rel & MAP_OFF_MASK) as usize;
            let m = self.maps.get_mut(map).ok_or(oob)?;
            let vsize = m.def().value_size;
            let key = (off / vsize) as u32;
            let within = off % vsize;
            let slot = m.get_mut(key).ok_or(oob)?;
            if within + size > slot.len() {
                return Err(oob);
            }
            slot[within..within + size].copy_from_slice(&bytes[..size]);
            Ok(())
        } else if addr >= STACK_BASE {
            let off = (addr - STACK_BASE) as usize;
            if off + size > stack.len() {
                return Err(oob);
            }
            stack[off..off + size].copy_from_slice(&bytes[..size]);
            Ok(())
        } else if addr >= CTX_BASE {
            let off = (addr - CTX_BASE) as usize;
            if off + size > ctx.len() {
                return Err(oob);
            }
            ctx[off..off + size].copy_from_slice(&bytes[..size]);
            Ok(())
        } else {
            Err(oob)
        }
    }

    fn call_helper(
        &mut self,
        ctx: &mut [u8],
        stack: &mut [u8],
        regs: &mut [u64; REG_FILE],
        helper: u32,
        pc: usize,
    ) -> Result<(), ExecError> {
        let r0 = match helper {
            helpers::MAP_LOOKUP => {
                let map_idx = regs[R1 as usize] as usize;
                let key = self.mem_read(ctx, stack, regs[R2 as usize], 4, pc)? as u32;
                match self.maps.get(map_idx) {
                    Some(m) if key < m.def().max_entries => {
                        MAP_BASE
                            + ((map_idx as u64) << MAP_IDX_SHIFT)
                            + (key as usize * m.def().value_size) as u64
                    }
                    _ => 0,
                }
            }
            helpers::MAP_UPDATE => {
                let map_idx = regs[R1 as usize] as usize;
                let key = self.mem_read(ctx, stack, regs[R2 as usize], 4, pc)? as u32;
                let vsize = match self.maps.get(map_idx) {
                    Some(m) => m.def().value_size,
                    None => return Err(ExecError::BadHelper { pc }),
                };
                let mut value = vec![0u8; vsize];
                for (i, b) in value.iter_mut().enumerate() {
                    *b =
                        self.mem_read(ctx, stack, regs[R3 as usize].wrapping_add(i as u64), 1, pc)?
                            as u8;
                }
                match self.maps.get_mut(map_idx).unwrap().update(key, &value) {
                    Ok(()) => 0,
                    Err(_) => u64::MAX,
                }
            }
            helpers::KTIME_NS => self.time_ns,
            helpers::PRANDOM_U32 => {
                // xorshift64*
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) & 0xFFFF_FFFF
            }
            helpers::TRACE => {
                if self.trace.len() < 1024 {
                    self.trace.push(regs[R1 as usize]);
                }
                0
            }
            _ => return Err(ExecError::BadHelper { pc }),
        };
        regs[R0 as usize] = r0;
        // Clobber caller-saved registers like the real calling convention.
        for r in R1..=R5 {
            regs[r as usize] = 0;
        }
        Ok(())
    }
}

fn exec_alu(
    regs: &mut [u64; REG_FILE],
    insn: Insn,
    is64: bool,
    pc: usize,
) -> Result<(), ExecError> {
    let aluop = insn.op & 0xF0;
    let b = if insn.op & 0x08 == SRC_X {
        regs[insn.src as usize]
    } else {
        insn.imm as u64
    };
    let a = regs[insn.dst as usize];
    regs[insn.dst as usize] = alu_value(aluop, is64, a, b).ok_or(ExecError::BadOpcode { pc })?;
    Ok(())
}

/// The single source of ALU semantics, shared by the interpreter, the
/// compiled tier's dispatch loop, and the compile tier's constant folder
/// (so a folded constant is bit-identical to what execution would have
/// produced). `None` means an undefined ALU family (`BadOpcode` at
/// runtime, "don't fold" at compile time).
#[inline(always)]
pub(crate) fn alu_value(aluop: u8, is64: bool, a: u64, b: u64) -> Option<u64> {
    let (a32, b32) = (a as u32, b as u32);
    let v = if is64 {
        match aluop {
            ALU_ADD => a.wrapping_add(b),
            ALU_SUB => a.wrapping_sub(b),
            ALU_MUL => a.wrapping_mul(b),
            ALU_DIV => a.checked_div(b).unwrap_or(0),
            ALU_MOD => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            ALU_OR => a | b,
            ALU_AND => a & b,
            ALU_XOR => a ^ b,
            ALU_LSH => a.wrapping_shl((b & 63) as u32),
            ALU_RSH => a.wrapping_shr((b & 63) as u32),
            ALU_ARSH => ((a as i64) >> (b & 63)) as u64,
            ALU_NEG => (a as i64).wrapping_neg() as u64,
            ALU_MOV => b,
            _ => return None,
        }
    } else {
        let v32: u32 = match aluop {
            ALU_ADD => a32.wrapping_add(b32),
            ALU_SUB => a32.wrapping_sub(b32),
            ALU_MUL => a32.wrapping_mul(b32),
            ALU_DIV => a32.checked_div(b32).unwrap_or(0),
            ALU_MOD => {
                if b32 == 0 {
                    a32
                } else {
                    a32 % b32
                }
            }
            ALU_OR => a32 | b32,
            ALU_AND => a32 & b32,
            ALU_XOR => a32 ^ b32,
            ALU_LSH => a32.wrapping_shl(b32 & 31),
            ALU_RSH => a32.wrapping_shr(b32 & 31),
            ALU_ARSH => ((a32 as i32) >> (b32 & 31)) as u32,
            ALU_NEG => (a32 as i32).wrapping_neg() as u32,
            ALU_MOV => b32,
            _ => return None,
        };
        v32 as u64
    };
    Some(v)
}

/// Branch predicate shared by both execution tiers; `None` means an
/// undefined jump family (`BadOpcode` at runtime).
#[inline(always)]
pub(crate) fn branch_taken(jmpop: u8, a: u64, b: u64) -> Option<bool> {
    Some(match jmpop {
        JMP_JA => true,
        JMP_JEQ => a == b,
        JMP_JNE => a != b,
        JMP_JGT => a > b,
        JMP_JGE => a >= b,
        JMP_JLT => a < b,
        JMP_JLE => a <= b,
        JMP_JSET => a & b != 0,
        JMP_JSGT => (a as i64) > b as i64,
        JMP_JSGE => (a as i64) >= b as i64,
        JMP_JSLT => (a as i64) < (b as i64),
        JMP_JSLE => (a as i64) <= b as i64,
        _ => return None,
    })
}

/// Little-endian load of `size` bytes (1/2/4/8) at a compile-time-proved
/// in-bounds offset — the zero-cost replacement for the interpreter's
/// tagged-address resolve on the compiled fast path.
#[inline(always)]
pub(crate) fn load_le(buf: &[u8], off: usize, size: usize) -> u64 {
    match size {
        1 => buf[off] as u64,
        2 => u16::from_le_bytes(buf[off..off + 2].try_into().unwrap()) as u64,
        4 => u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as u64,
        _ => u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
    }
}

/// Little-endian store counterpart of [`load_le`].
#[inline(always)]
pub(crate) fn store_le(buf: &mut [u8], off: usize, size: usize, v: u64) {
    match size {
        1 => buf[off] = v as u8,
        2 => buf[off..off + 2].copy_from_slice(&(v as u16).to_le_bytes()),
        4 => buf[off..off + 4].copy_from_slice(&(v as u32).to_le_bytes()),
        _ => buf[off..off + 8].copy_from_slice(&v.to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::maps::MapDef;
    use crate::verifier::{verify, VerifierConfig};

    fn compile(b: ProgramBuilder, ctx_size: usize, writable: std::ops::Range<usize>) -> Vm {
        let (insns, maps) = b.build();
        let cfg = VerifierConfig {
            ctx_size,
            ctx_writable: writable,
        };
        Vm::new(verify(insns, maps, &cfg).expect("program must verify"))
    }

    #[test]
    fn returns_immediate() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 42).exit();
        let mut vm = compile(b, 16, 0..0);
        assert_eq!(vm.run(&mut [0u8; 16]).unwrap(), 42);
        assert_eq!(vm.invocations(), 1);
    }

    #[test]
    fn reads_context_fields() {
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_W, R0, R1, 4).exit();
        let mut vm = compile(b, 16, 0..0);
        let mut ctx = [0u8; 16];
        ctx[4..8].copy_from_slice(&0xAB_CDu32.to_le_bytes());
        assert_eq!(vm.run(&mut ctx).unwrap(), 0xAB_CD);
    }

    #[test]
    fn writes_context_window() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).st_imm(SIZE_DW, R1, 8, 0x55).exit();
        let mut vm = compile(b, 16, 8..16);
        let mut ctx = [0u8; 16];
        vm.run(&mut ctx).unwrap();
        assert_eq!(u64::from_le_bytes(ctx[8..16].try_into().unwrap()), 0x55);
    }

    #[test]
    fn arithmetic_32bit_zero_extends() {
        let mut b = ProgramBuilder::new();
        b.lddw(R0, 0xFFFF_FFFF_FFFF_FFFF)
            .alu32_imm(ALU_ADD, R0, 1)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        // 32-bit add wraps to 0 and clears the upper half.
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0);
    }

    #[test]
    fn division_by_zero_register_yields_zero() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 100)
            .mov64_imm(R2, 0)
            .alu64(ALU_DIV, R0, R2)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0);
    }

    #[test]
    fn modulo_by_zero_keeps_dividend() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 7)
            .mov64_imm(R2, 0)
            .alu64(ALU_MOD, R0, R2)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 7);
    }

    #[test]
    fn branches_select_paths() {
        // return ctx[0] >= 10 ? 1 : 2
        let mut b = ProgramBuilder::new();
        let ge = b.new_label();
        b.ldx(SIZE_B, R2, R1, 0)
            .jmp_imm(JMP_JGE, R2, 10, ge)
            .mov64_imm(R0, 2)
            .exit();
        b.bind(ge);
        b.mov64_imm(R0, 1).exit();
        let mut vm = compile(b, 8, 0..0);
        let mut lo = [5u8, 0, 0, 0, 0, 0, 0, 0];
        let mut hi = [55u8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(vm.run(&mut lo).unwrap(), 2);
        assert_eq!(vm.run(&mut hi).unwrap(), 1);
    }

    #[test]
    fn signed_comparisons() {
        // return (i64)ctx[0..8] < -1 ? 1 : 0
        let mut b = ProgramBuilder::new();
        let neg = b.new_label();
        b.ldx(SIZE_DW, R2, R1, 0)
            .jmp_imm(JMP_JSLT, R2, -1, neg)
            .mov64_imm(R0, 0)
            .exit();
        b.bind(neg);
        b.mov64_imm(R0, 1).exit();
        let mut vm = compile(b, 8, 0..0);
        let mut ctx = (-100i64).to_le_bytes();
        assert_eq!(vm.run(&mut ctx).unwrap(), 1);
        let mut ctx = 100i64.to_le_bytes();
        assert_eq!(vm.run(&mut ctx).unwrap(), 0);
    }

    #[test]
    fn stack_spill_and_reload() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R2, 1234)
            .stx(SIZE_DW, R10, -16, R2)
            .ldx(SIZE_DW, R0, R10, -16)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 1234);
    }

    #[test]
    fn map_state_persists_across_invocations() {
        // counter: v = map[0]; map[0] = v + 1; return v
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 1,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R6, R0, 0)
            .mov64(R2, R6)
            .add64_imm(R2, 1)
            .stx(SIZE_DW, R0, 0, R2)
            .mov64(R0, R6)
            .exit();
        b.bind(is_null);
        b.lddw(R0, u64::MAX).exit();
        let mut vm = compile(b, 8, 0..0);
        let mut ctx = [0u8; 8];
        assert_eq!(vm.run(&mut ctx).unwrap(), 0);
        assert_eq!(vm.run(&mut ctx).unwrap(), 1);
        assert_eq!(vm.run(&mut ctx).unwrap(), 2);
        // Host sees the same state.
        assert_eq!(vm.map(0).get_u64(0), Some(3));
    }

    #[test]
    fn host_configured_map_read_by_program() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 2,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 1)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R0, R0, 0)
            .exit();
        b.bind(is_null);
        b.mov64_imm(R0, 0).exit();
        let mut vm = compile(b, 8, 0..0);
        vm.map_mut(0).set_u64(1, 0xBEEF).unwrap();
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0xBEEF);
    }

    #[test]
    fn ktime_helper_returns_injected_time() {
        let mut b = ProgramBuilder::new();
        b.call(helpers::KTIME_NS).exit();
        let mut vm = compile(b, 8, 0..0);
        vm.set_time(987_654);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 987_654);
    }

    #[test]
    fn trace_helper_records_values() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R1, 77).call(helpers::TRACE).exit();
        let mut vm = compile(b, 8, 0..0);
        vm.run(&mut [0u8; 8]).unwrap();
        assert_eq!(vm.trace_log(), &[77]);
    }

    #[test]
    fn prandom_is_deterministic_per_seed() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.call(helpers::PRANDOM_U32).exit();
            b
        };
        let mut a = compile(build(), 8, 0..0);
        let mut b2 = compile(build(), 8, 0..0);
        assert_eq!(
            a.run(&mut [0u8; 8]).unwrap(),
            b2.run(&mut [0u8; 8]).unwrap()
        );
    }

    #[test]
    fn runtime_rechecks_ctx_bounds() {
        // Verified against ctx_size=16 but run with an 8-byte ctx: the
        // runtime bound must catch it (defense in depth).
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_DW, R0, R1, 8).exit();
        let mut vm = compile(b, 16, 0..0);
        let mut small = [0u8; 8];
        assert!(matches!(
            vm.run(&mut small),
            Err(ExecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn map_update_helper_round_trips() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 2,
        });
        // key=0 at fp-4; value buffer at fp-16 = 0x1122; call update; ret 0
        b.st_imm(SIZE_W, R10, -4, 0)
            .st_imm(SIZE_DW, R10, -16, 0x1122)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .mov64(R3, R10)
            .add64_imm(R3, -16)
            .call(helpers::MAP_UPDATE)
            .exit();
        let mut vm = compile(b, 8, 0..0);
        assert_eq!(vm.run(&mut [0u8; 8]).unwrap(), 0);
        assert_eq!(vm.map(0).get_u64(0), Some(0x1122));
    }

    /// ctx[0..8] += map[0]; return 0x11 — pure, compiled, memoizable.
    fn offset_vm() -> Vm {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 1,
        });
        let is_null = b.new_label();
        b.mov64(R6, R1)
            .st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R3, R0, 0)
            .ldx(SIZE_DW, R2, R6, 0)
            .alu64(ALU_ADD, R2, R3)
            .stx(SIZE_DW, R6, 0, R2)
            .mov64_imm(R0, 0x11)
            .exit();
        b.bind(is_null);
        b.mov64_imm(R0, 0x22).exit();
        compile(b, 16, 0..16)
    }

    #[test]
    fn pure_program_hits_memo_on_repeat() {
        let mut vm = offset_vm();
        vm.map_mut(0).set_u64(0, 0x1000).unwrap();
        assert!(vm.is_compiled());
        assert!(vm.program().is_pure());

        let mut ctx = [0u8; 16];
        ctx[..8].copy_from_slice(&0x40u64.to_le_bytes());
        let (v, tier) = vm.run_with_tier(&mut ctx).unwrap();
        assert_eq!((v, tier), (0x11, Tier::Compiled));
        assert_eq!(u64::from_le_bytes(ctx[..8].try_into().unwrap()), 0x1040);

        // Same key again: cache hit, and the journal replays the write.
        let mut ctx = [0u8; 16];
        ctx[..8].copy_from_slice(&0x40u64.to_le_bytes());
        let (v, tier) = vm.run_with_tier(&mut ctx).unwrap();
        assert_eq!((v, tier), (0x11, Tier::CacheHit));
        assert_eq!(u64::from_le_bytes(ctx[..8].try_into().unwrap()), 0x1040);
        assert_eq!(vm.memo_stats().hits, 1);
        assert_eq!(vm.invocations(), 2);
    }

    #[test]
    fn memo_is_keyed_on_ctx_reads() {
        let mut vm = offset_vm();
        vm.map_mut(0).set_u64(0, 7).unwrap();
        let mut a = [0u8; 16];
        a[..8].copy_from_slice(&1u64.to_le_bytes());
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&2u64.to_le_bytes());
        assert_eq!(vm.run(&mut a).unwrap(), 0x11);
        // Different slba → different key → miss, correct fresh result.
        assert_eq!(vm.run(&mut b).unwrap(), 0x11);
        assert_eq!(u64::from_le_bytes(b[..8].try_into().unwrap()), 9);
        assert_eq!(vm.memo_stats().hits, 0);
        assert_eq!(vm.memo_stats().misses, 2);
    }

    #[test]
    fn external_map_update_invalidates_memo() {
        let mut vm = offset_vm();
        vm.map_mut(0).set_u64(0, 0x1000).unwrap();
        let run = |vm: &mut Vm| {
            let mut ctx = [0u8; 16];
            ctx[..8].copy_from_slice(&0x40u64.to_le_bytes());
            vm.run(&mut ctx).unwrap();
            u64::from_le_bytes(ctx[..8].try_into().unwrap())
        };
        assert_eq!(run(&mut vm), 0x1040);
        assert_eq!(run(&mut vm), 0x1040); // cached
        vm.map_mut(0).set_u64(0, 0x2000).unwrap();
        // The host changed an input: the stale verdict must not replay.
        assert_eq!(run(&mut vm), 0x2040);
        assert_eq!(vm.memo_stats().invalidations, 1);
        assert_eq!(vm.memo_stats().hits, 1);
    }

    #[test]
    fn impure_programs_bypass_memo() {
        // prandom makes the program impure: every run must execute.
        let mut b = ProgramBuilder::new();
        b.call(helpers::PRANDOM_U32).exit();
        let mut vm = compile(b, 8, 0..0);
        assert!(!vm.program().is_pure());
        let mut ctx = [0u8; 8];
        let a = vm.run_with_tier(&mut ctx).unwrap();
        let b2 = vm.run_with_tier(&mut ctx).unwrap();
        assert_eq!(a.1, Tier::Compiled);
        assert_eq!(b2.1, Tier::Compiled);
        assert_ne!(a.0, b2.0, "prandom must advance on every invocation");
        assert_eq!(vm.memo_stats(), MemoStats::default());
    }

    #[test]
    fn map_writing_programs_bypass_memo() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 1,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R2, R0, 0)
            .add64_imm(R2, 1)
            .stx(SIZE_DW, R0, 0, R2)
            .mov64(R0, R2)
            .exit();
        b.bind(is_null);
        b.mov64_imm(R0, 0).exit();
        let mut vm = compile(b, 8, 0..0);
        assert!(!vm.program().is_pure());
        let mut ctx = [0u8; 8];
        // The counter must advance every run — no cached replay.
        assert_eq!(vm.run(&mut ctx).unwrap(), 1);
        assert_eq!(vm.run(&mut ctx).unwrap(), 2);
        assert_eq!(vm.run(&mut ctx).unwrap(), 3);
        assert_eq!(vm.memo_stats(), MemoStats::default());
    }

    #[test]
    fn memo_is_bounded_and_counts_evictions() {
        let mut vm = offset_vm();
        vm.set_memo_capacity(2);
        vm.map_mut(0).set_u64(0, 1).unwrap();
        for slba in 0..64u64 {
            let mut ctx = [0u8; 16];
            ctx[..8].copy_from_slice(&slba.to_le_bytes());
            vm.run(&mut ctx).unwrap();
        }
        let stats = vm.memo_stats();
        assert_eq!(stats.misses, 64);
        assert!(stats.evictions >= 62 - 2, "bounded cache must evict");
    }

    #[test]
    fn memo_capacity_zero_disables_cache() {
        let mut vm = offset_vm();
        vm.set_memo_capacity(0);
        let mut ctx = [0u8; 16];
        assert_eq!(vm.run_with_tier(&mut ctx).unwrap().1, Tier::Compiled);
        let mut ctx = [0u8; 16];
        assert_eq!(vm.run_with_tier(&mut ctx).unwrap().1, Tier::Compiled);
        assert_eq!(vm.memo_stats(), MemoStats::default());
    }

    #[test]
    fn trace_program_falls_back_to_interp_tier() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R1, 9).call(helpers::TRACE).exit();
        let mut vm = compile(b, 8, 0..0);
        assert!(!vm.is_compiled());
        let (v, tier) = vm.run_with_tier(&mut [0u8; 8]).unwrap();
        assert_eq!((v, tier), (0, Tier::Interp));
        assert_eq!(vm.trace_log(), &[9]);
    }

    #[test]
    fn short_ctx_falls_back_to_interp_per_invocation() {
        // Verified at ctx_size 16; the compiled tier's bounds proofs only
        // hold for ctx >= min_ctx, so an 8-byte ctx must take the
        // interpreter and reproduce its OutOfBounds.
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_DW, R0, R1, 8).exit();
        let mut vm = compile(b, 16, 0..0);
        assert!(vm.is_compiled());
        let mut small = [0u8; 8];
        assert!(matches!(
            vm.run_with_tier(&mut small),
            Err(ExecError::OutOfBounds { .. })
        ));
        let mut full = [0u8; 16];
        full[8..].copy_from_slice(&0xABu64.to_le_bytes());
        assert_eq!(vm.run_with_tier(&mut full).unwrap().0, 0xAB);
    }

    #[test]
    fn budget_parity_between_tiers_with_dse() {
        // A program with a fold-away body: the compiled tier charges the
        // removed instructions to their successor's weight, so the exact
        // budget at which BudgetExceeded appears matches the interpreter.
        let build = || {
            let mut b = ProgramBuilder::new();
            b.mov64_imm(R2, 1)
                .mov64_imm(R3, 2)
                .alu64(ALU_ADD, R2, R3)
                .mov64(R0, R2)
                .exit();
            b
        };
        let n = 5u64; // instruction count of the program above
        for budget in [n - 1, n] {
            let cfg = VmConfig {
                max_insns: budget,
                ..VmConfig::default()
            };
            let (insns, maps) = build().build();
            let vcfg = VerifierConfig {
                ctx_size: 8,
                ctx_writable: 0..0,
            };
            let program = verify(insns, maps, &vcfg).unwrap();
            let mut tiered = Vm::with_config(program, cfg);
            assert!(tiered.is_compiled());
            let (insns, maps) = build().build();
            let program = verify(insns, maps, &vcfg).unwrap();
            let mut interp = Vm::with_config(program, cfg);
            let a = tiered.run_with_tier(&mut [0u8; 8]).map(|(v, _)| v);
            let b = interp.run_interp(&mut [0u8; 8]);
            assert_eq!(a, b, "budget {budget}");
        }
    }

    #[test]
    fn compiled_tier_matches_interp_on_branchy_program() {
        let build = || {
            let mut b = ProgramBuilder::new();
            let hi = b.new_label();
            b.ldx(SIZE_W, R2, R1, 0)
                .jmp_imm(JMP_JGT, R2, 100, hi)
                .alu64_imm(ALU_MUL, R2, 3)
                .mov64(R0, R2)
                .exit();
            b.bind(hi);
            b.alu64_imm(ALU_RSH, R2, 2).mov64(R0, R2).exit();
            b
        };
        for seed in [0u32, 7, 100, 101, 0xFFFF_FFFF] {
            let mut tiered = compile(build(), 8, 0..0);
            let mut interp = compile(build(), 8, 0..0);
            let mut c1 = [0u8; 8];
            c1[..4].copy_from_slice(&seed.to_le_bytes());
            let mut c2 = c1;
            let (v, tier) = tiered.run_with_tier(&mut c1).unwrap();
            assert_eq!(tier, Tier::Compiled);
            assert_eq!(v, interp.run_interp(&mut c2).unwrap(), "seed {seed}");
            assert_eq!(c1, c2);
        }
    }
}
