//! The vbpf instruction set — a faithful subset of eBPF.
//!
//! Instructions follow the classic 8-byte eBPF encoding:
//! `op:8 | dst:4 src:4 | off:16 | imm:32` (little-endian fields), with
//! `lddw` occupying two slots. Internally we decode into [`Insn`] with a
//! 64-bit immediate so `lddw` is one logical instruction.

/// Register identifiers. R0 is the return value, R1–R5 are helper/entry
/// arguments, R6–R9 are callee-saved, R10 is the read-only frame pointer.
pub type Reg = u8;

/// Return value / scratch register.
pub const R0: Reg = 0;
/// First argument register (the classifier's context pointer).
pub const R1: Reg = 1;
/// Second argument register.
pub const R2: Reg = 2;
/// Third argument register.
pub const R3: Reg = 3;
/// Fourth argument register.
pub const R4: Reg = 4;
/// Fifth argument register.
pub const R5: Reg = 5;
/// Callee-saved register 6.
pub const R6: Reg = 6;
/// Callee-saved register 7.
pub const R7: Reg = 7;
/// Callee-saved register 8.
pub const R8: Reg = 8;
/// Callee-saved register 9.
pub const R9: Reg = 9;
/// Frame pointer (read-only, points one past the top of the 512-byte stack).
pub const R10: Reg = 10;

/// Total number of registers.
pub const NUM_REGS: usize = 11;
/// Stack size available below R10, as in Linux eBPF.
pub const STACK_SIZE: usize = 512;

// Instruction classes (op bits 2:0).
/// Immediate 64-bit load class (`lddw`).
pub const CLASS_LD: u8 = 0x00;
/// Register-indirect load class.
pub const CLASS_LDX: u8 = 0x01;
/// Store-immediate class.
pub const CLASS_ST: u8 = 0x02;
/// Store-register class.
pub const CLASS_STX: u8 = 0x03;
/// 32-bit ALU class.
pub const CLASS_ALU: u8 = 0x04;
/// Jump class.
pub const CLASS_JMP: u8 = 0x05;
/// 64-bit ALU class.
pub const CLASS_ALU64: u8 = 0x07;

// Source modifier (op bit 3).
/// Operand comes from the immediate.
pub const SRC_K: u8 = 0x00;
/// Operand comes from a register.
pub const SRC_X: u8 = 0x08;

// ALU operations (op bits 7:4).
/// Addition.
pub const ALU_ADD: u8 = 0x00;
/// Subtraction.
pub const ALU_SUB: u8 = 0x10;
/// Multiplication.
pub const ALU_MUL: u8 = 0x20;
/// Unsigned division (division by zero yields zero).
pub const ALU_DIV: u8 = 0x30;
/// Bitwise or.
pub const ALU_OR: u8 = 0x40;
/// Bitwise and.
pub const ALU_AND: u8 = 0x50;
/// Logical shift left.
pub const ALU_LSH: u8 = 0x60;
/// Logical shift right.
pub const ALU_RSH: u8 = 0x70;
/// Arithmetic negation.
pub const ALU_NEG: u8 = 0x80;
/// Unsigned modulo (modulo zero yields the dividend, as in Linux).
pub const ALU_MOD: u8 = 0x90;
/// Bitwise xor.
pub const ALU_XOR: u8 = 0xa0;
/// Register/immediate move.
pub const ALU_MOV: u8 = 0xb0;
/// Arithmetic shift right.
pub const ALU_ARSH: u8 = 0xc0;

// Jump operations (op bits 7:4).
/// Unconditional jump.
pub const JMP_JA: u8 = 0x00;
/// Jump if equal.
pub const JMP_JEQ: u8 = 0x10;
/// Jump if unsigned greater.
pub const JMP_JGT: u8 = 0x20;
/// Jump if unsigned greater-or-equal.
pub const JMP_JGE: u8 = 0x30;
/// Jump if `dst & src` nonzero.
pub const JMP_JSET: u8 = 0x40;
/// Jump if not equal.
pub const JMP_JNE: u8 = 0x50;
/// Jump if signed greater.
pub const JMP_JSGT: u8 = 0x60;
/// Jump if signed greater-or-equal.
pub const JMP_JSGE: u8 = 0x70;
/// Helper function call.
pub const JMP_CALL: u8 = 0x80;
/// Program exit; R0 is the return value.
pub const JMP_EXIT: u8 = 0x90;
/// Jump if unsigned less.
pub const JMP_JLT: u8 = 0xa0;
/// Jump if unsigned less-or-equal.
pub const JMP_JLE: u8 = 0xb0;
/// Jump if signed less.
pub const JMP_JSLT: u8 = 0xc0;
/// Jump if signed less-or-equal.
pub const JMP_JSLE: u8 = 0xd0;

// Memory access sizes (op bits 4:3 for LD*/ST*).
/// 32-bit word access.
pub const SIZE_W: u8 = 0x00;
/// 16-bit half-word access.
pub const SIZE_H: u8 = 0x08;
/// 8-bit byte access.
pub const SIZE_B: u8 = 0x10;
/// 64-bit double-word access.
pub const SIZE_DW: u8 = 0x18;

// Memory access modes (op bits 7:5).
/// Immediate mode (only for `lddw`).
pub const MODE_IMM: u8 = 0x00;
/// Register-indirect with offset.
pub const MODE_MEM: u8 = 0x60;

/// A decoded vbpf instruction. `imm` is widened to 64 bits so `lddw`
/// (which spans two encoding slots) is a single logical instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insn {
    /// Opcode byte.
    pub op: u8,
    /// Destination register.
    pub dst: Reg,
    /// Source register.
    pub src: Reg,
    /// Signed 16-bit offset (jump target delta or memory displacement).
    pub off: i16,
    /// Immediate operand (sign-extended for 32-bit forms).
    pub imm: i64,
}

impl Insn {
    /// The instruction class (op bits 2:0).
    pub fn class(&self) -> u8 {
        self.op & 0x07
    }

    /// True for the two-slot `lddw` instruction.
    pub fn is_lddw(&self) -> bool {
        self.op == CLASS_LD | MODE_IMM | SIZE_DW
    }

    /// Memory access width in bytes for LD*/ST* instructions.
    pub fn access_size(&self) -> usize {
        match self.op & 0x18 {
            SIZE_W => 4,
            SIZE_H => 2,
            SIZE_B => 1,
            _ => 8,
        }
    }

    /// Encodes to the on-wire 8-byte format; `lddw` yields two slots.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let regs = (self.src << 4) | (self.dst & 0x0F);
        out.push(self.op);
        out.push(regs);
        out.extend_from_slice(&self.off.to_le_bytes());
        out.extend_from_slice(&(self.imm as i32).to_le_bytes());
        if self.is_lddw() {
            // Second slot: zero op/regs/off, imm = high 32 bits.
            out.push(0);
            out.push(0);
            out.extend_from_slice(&0i16.to_le_bytes());
            out.extend_from_slice(&(((self.imm as u64) >> 32) as u32).to_le_bytes());
        }
    }

    /// Decodes a full program from wire bytes, pairing `lddw` slots.
    pub fn decode_program(bytes: &[u8]) -> Result<Vec<Insn>, String> {
        if !bytes.len().is_multiple_of(8) {
            return Err("program length must be a multiple of 8".into());
        }
        let mut insns = Vec::with_capacity(bytes.len() / 8);
        let mut i = 0;
        while i < bytes.len() {
            let s = &bytes[i..i + 8];
            let op = s[0];
            let dst = s[1] & 0x0F;
            let src = s[1] >> 4;
            let off = i16::from_le_bytes([s[2], s[3]]);
            let imm32 = i32::from_le_bytes([s[4], s[5], s[6], s[7]]);
            let mut insn = Insn {
                op,
                dst,
                src,
                off,
                imm: imm32 as i64,
            };
            i += 8;
            if insn.is_lddw() {
                if i >= bytes.len() {
                    return Err("truncated lddw".into());
                }
                let hi =
                    u32::from_le_bytes([bytes[i + 4], bytes[i + 5], bytes[i + 6], bytes[i + 7]]);
                insn.imm = ((insn.imm as u64 & 0xFFFF_FFFF) | ((hi as u64) << 32)) as i64;
                i += 8;
            }
            insns.push(insn);
        }
        Ok(insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_decode() {
        let mov = Insn {
            op: CLASS_ALU64 | SRC_K | ALU_MOV,
            dst: R0,
            src: 0,
            off: 0,
            imm: 7,
        };
        assert_eq!(mov.class(), CLASS_ALU64);
        assert!(!mov.is_lddw());
    }

    #[test]
    fn access_sizes() {
        for (size_bits, bytes) in [(SIZE_B, 1), (SIZE_H, 2), (SIZE_W, 4), (SIZE_DW, 8)] {
            let i = Insn {
                op: CLASS_LDX | MODE_MEM | size_bits,
                dst: R0,
                src: R1,
                off: 0,
                imm: 0,
            };
            assert_eq!(i.access_size(), bytes);
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let insns = vec![
            Insn {
                op: CLASS_ALU64 | SRC_K | ALU_MOV,
                dst: R6,
                src: 0,
                off: 0,
                imm: -5,
            },
            Insn {
                op: CLASS_LDX | MODE_MEM | SIZE_W,
                dst: R0,
                src: R1,
                off: 16,
                imm: 0,
            },
            Insn {
                op: CLASS_JMP | SRC_K | JMP_JEQ,
                dst: R0,
                src: 0,
                off: 2,
                imm: 1,
            },
            Insn {
                op: CLASS_JMP | JMP_EXIT,
                dst: 0,
                src: 0,
                off: 0,
                imm: 0,
            },
        ];
        let mut bytes = Vec::new();
        for i in &insns {
            i.encode(&mut bytes);
        }
        assert_eq!(bytes.len(), insns.len() * 8);
        assert_eq!(Insn::decode_program(&bytes).unwrap(), insns);
    }

    #[test]
    fn lddw_spans_two_slots_and_round_trips() {
        let lddw = Insn {
            op: CLASS_LD | MODE_IMM | SIZE_DW,
            dst: R2,
            src: 0,
            off: 0,
            imm: 0x1234_5678_9ABC_DEF0u64 as i64,
        };
        let mut bytes = Vec::new();
        lddw.encode(&mut bytes);
        assert_eq!(bytes.len(), 16);
        let decoded = Insn::decode_program(&bytes).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0], lddw);
    }

    #[test]
    fn truncated_lddw_is_an_error() {
        let lddw = Insn {
            op: CLASS_LD | MODE_IMM | SIZE_DW,
            dst: R2,
            src: 0,
            off: 0,
            imm: 42,
        };
        let mut bytes = Vec::new();
        lddw.encode(&mut bytes);
        bytes.truncate(8);
        assert!(Insn::decode_program(&bytes).is_err());
    }

    #[test]
    fn misaligned_program_is_an_error() {
        assert!(Insn::decode_program(&[0u8; 7]).is_err());
    }
}
