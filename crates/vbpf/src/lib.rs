//! vbpf — a sandboxed eBPF-subset virtual machine.
//!
//! NVMetro injects custom routing logic into the host kernel as eBPF
//! classifiers: programs that are *statically verified* before they are
//! allowed to run, then interpreted at every routing decision point
//! (§II-B, §III-C). This crate is that substrate, built from scratch:
//!
//! * [`isa`] — the eBPF instruction set (ALU64/ALU32, jumps, memory
//!   accesses, `lddw`, helper calls) with the real 8-byte wire encoding;
//! * [`builder`] — a label-based assembler for writing programs in Rust
//!   (the encryptor/replicator classifiers in `nvmetro-functions` use it);
//! * [`verifier`] — an abstract interpreter enforcing the kernel's safety
//!   contract: no uninitialized reads, all memory accesses provably in
//!   bounds, helper argument types respected, guaranteed termination;
//! * [`interp`] — the interpreter, with bounds re-checks as defense in
//!   depth, helper functions, and an instruction budget;
//! * [`maps`] — array maps shared between classifier invocations (used for
//!   per-request state and configuration, like Linux BPF maps).
//!
//! Divergences from Linux eBPF are documented in `DESIGN.md` §8: no JIT,
//! no BTF, and termination is guaranteed by rejecting backward jumps
//! (pre-5.3 Linux semantics) rather than by bounded-loop analysis.

pub mod builder;
pub mod disasm;
pub mod interp;
pub mod isa;
pub mod maps;
pub mod verifier;

pub use builder::{Label, ProgramBuilder};
pub use disasm::disasm;
pub use interp::{ExecError, Vm, VmConfig};
pub use isa::{Insn, Reg};
pub use maps::{ArrayMap, MapDef};
pub use verifier::{verify, VerifierConfig, VerifyError};

/// A verified, executable vbpf program.
///
/// Can only be constructed through [`verify`], mirroring the kernel's rule
/// that unverified bytecode never runs.
#[derive(Debug)]
pub struct Program {
    pub(crate) insns: Vec<Insn>,
    pub(crate) maps: Vec<MapDef>,
}

impl Program {
    /// Number of instructions (after `lddw` pairing).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Disassembles the program (bpftool-style text).
    pub fn disasm(&self) -> String {
        disasm::disasm(&self.insns)
    }

    /// True for the trivial empty program (never verifiable).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}
