//! vbpf — a sandboxed eBPF-subset virtual machine.
//!
//! NVMetro injects custom routing logic into the host kernel as eBPF
//! classifiers: programs that are *statically verified* before they are
//! allowed to run, then executed at every routing decision point
//! (§II-B, §III-C). This crate is that substrate, built from scratch:
//!
//! * [`isa`] — the eBPF instruction set (ALU64/ALU32, jumps, memory
//!   accesses, `lddw`, helper calls) with the real 8-byte wire encoding;
//! * [`builder`] — a label-based assembler for writing programs in Rust
//!   (the encryptor/replicator classifiers in `nvmetro-functions` use it);
//! * [`verifier`] — an abstract interpreter enforcing the kernel's safety
//!   contract: no uninitialized reads, all memory accesses provably in
//!   bounds, helper argument types respected, guaranteed termination —
//!   and, as a byproduct, per-instruction access facts plus the program's
//!   ctx read/write footprint and purity ([`verifier::Analysis`]);
//! * [`interp`] — the interpreter, with bounds re-checks as defense in
//!   depth, helper functions, and an instruction budget;
//! * [`compile`] — the tier-up: lowers verified bytecode into a
//!   pre-decoded dense op array (operands resolved, constant ctx/stack
//!   offsets bounds-checked once using verifier facts, constant folding
//!   and dead-store elimination) run by a tight dispatch loop; anything
//!   it rejects falls back to the interpreter, and both tiers agree
//!   instruction for instruction (see `tests/differential.rs`);
//! * [`memo`] — verdict memoization for *pure* programs, keyed on
//!   exactly the ctx bytes the program reads, replaying mediated ctx
//!   writes from a per-entry journal;
//! * [`maps`] — array maps shared between classifier invocations (used for
//!   per-request state and configuration, like Linux BPF maps).
//!
//! Divergences from Linux eBPF are documented in `DESIGN.md` §8: the
//! tier-up is a pre-decoded threaded interpreter rather than native JIT
//! (no unsafe codegen), there is no BTF, and termination is guaranteed by
//! rejecting backward jumps (pre-5.3 Linux semantics) rather than by
//! bounded-loop analysis.

pub mod builder;
pub mod compile;
pub mod disasm;
pub mod interp;
pub mod isa;
pub mod maps;
pub mod memo;
pub mod verifier;

pub use builder::{Label, ProgramBuilder};
pub use disasm::{disasm, parse_program};
pub use interp::{ExecError, Tier, Vm, VmConfig};
pub use isa::{Insn, Reg};
pub use maps::{ArrayMap, MapDef};
pub use memo::MemoStats;
pub use verifier::{verify, AccessFact, Analysis, VerifierConfig, VerifyError};

/// A verified, executable vbpf program.
///
/// Can only be constructed through [`verify`], mirroring the kernel's rule
/// that unverified bytecode never runs. Carries the verifier's
/// [`Analysis`] so the compile tier and the memo cache can trust its
/// access facts without re-deriving them.
#[derive(Debug)]
pub struct Program {
    pub(crate) insns: Vec<Insn>,
    pub(crate) maps: Vec<MapDef>,
    pub(crate) analysis: Analysis,
}

impl Program {
    /// Number of instructions (after `lddw` pairing).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Disassembles the program (bpftool-style text).
    pub fn disasm(&self) -> String {
        disasm::disasm(&self.insns)
    }

    /// True for the trivial empty program (never verifiable).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Sorted, coalesced `(start, end)` byte ranges of every context
    /// read the program can make (loads and helper arguments).
    pub fn ctx_reads(&self) -> &[(usize, usize)] {
        &self.analysis.ctx_reads
    }

    /// Sorted, coalesced `(start, end)` byte ranges of every context
    /// write the program can make (direct mediation footprint).
    pub fn ctx_writes(&self) -> &[(usize, usize)] {
        &self.analysis.ctx_writes
    }

    /// True iff the verdict depends only on the ctx bytes read and on
    /// map contents: no map writes, no `ktime_ns`/`prandom_u32`/`trace`.
    pub fn is_pure(&self) -> bool {
        self.analysis.pure
    }
}
