//! vbpf maps — persistent state shared between classifier invocations.
//!
//! Like Linux BPF array maps: fixed-size values indexed by a `u32` key.
//! NVMetro classifiers use maps for configuration (e.g. the LBA offset of a
//! VM's partition) and for per-request routing state.

/// Static description of a map, declared at build time and checked by the
/// verifier (value bounds for pointers returned from `map_lookup`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapDef {
    /// Size of each value in bytes (1..=4096).
    pub value_size: usize,
    /// Number of slots (keys are `0..max_entries`).
    pub max_entries: u32,
}

/// A rejected map operation (key out of range or value-size mismatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapError;

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map key out of range or value size mismatch")
    }
}

impl std::error::Error for MapError {}

/// An array map instance.
#[derive(Clone, Debug)]
pub struct ArrayMap {
    def: MapDef,
    data: Vec<u8>,
}

impl ArrayMap {
    /// Creates a zero-filled map from its definition.
    pub fn new(def: MapDef) -> Self {
        assert!(
            (1..=4096).contains(&def.value_size),
            "value size out of range"
        );
        assert!(def.max_entries >= 1, "map needs at least one entry");
        ArrayMap {
            def,
            data: vec![0; def.value_size * def.max_entries as usize],
        }
    }

    /// The map's definition.
    pub fn def(&self) -> MapDef {
        self.def
    }

    /// Immutable view of a slot, if the key is in range.
    pub fn get(&self, key: u32) -> Option<&[u8]> {
        (key < self.def.max_entries).then(|| {
            let s = key as usize * self.def.value_size;
            &self.data[s..s + self.def.value_size]
        })
    }

    /// Mutable view of a slot, if the key is in range.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut [u8]> {
        (key < self.def.max_entries).then(|| {
            let s = key as usize * self.def.value_size;
            &mut self.data[s..s + self.def.value_size]
        })
    }

    /// Overwrites a slot from `value` (must match `value_size`).
    pub fn update(&mut self, key: u32, value: &[u8]) -> Result<(), MapError> {
        if value.len() != self.def.value_size {
            return Err(MapError);
        }
        let slot = self.get_mut(key).ok_or(MapError)?;
        slot.copy_from_slice(value);
        Ok(())
    }

    /// Convenience: reads a little-endian u64 from the start of a slot.
    pub fn get_u64(&self, key: u32) -> Option<u64> {
        let v = self.get(key)?;
        if v.len() < 8 {
            return None;
        }
        Some(u64::from_le_bytes(v[..8].try_into().unwrap()))
    }

    /// Convenience: writes a little-endian u64 at the start of a slot.
    pub fn set_u64(&mut self, key: u32, value: u64) -> Result<(), MapError> {
        let slot = self.get_mut(key).ok_or(MapError)?;
        if slot.len() < 8 {
            return Err(MapError);
        }
        slot[..8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ArrayMap {
        ArrayMap::new(MapDef {
            value_size: 8,
            max_entries: 4,
        })
    }

    #[test]
    fn new_map_is_zeroed() {
        let m = map();
        assert_eq!(m.get(0).unwrap(), &[0u8; 8]);
        assert_eq!(m.get_u64(3), Some(0));
    }

    #[test]
    fn out_of_range_key_is_none() {
        let m = map();
        assert!(m.get(4).is_none());
        assert!(m.get_u64(100).is_none());
    }

    #[test]
    fn update_round_trips() {
        let mut m = map();
        m.update(1, &7u64.to_le_bytes()).unwrap();
        assert_eq!(m.get_u64(1), Some(7));
        assert_eq!(m.get_u64(0), Some(0), "other slots untouched");
    }

    #[test]
    fn update_wrong_size_fails() {
        let mut m = map();
        assert!(m.update(0, &[1, 2, 3]).is_err());
    }

    #[test]
    fn set_u64_out_of_range_fails() {
        let mut m = map();
        assert!(m.set_u64(9, 1).is_err());
        m.set_u64(2, 0xFFFF_0000_1111_2222).unwrap();
        assert_eq!(m.get_u64(2), Some(0xFFFF_0000_1111_2222));
    }

    #[test]
    #[should_panic(expected = "value size")]
    fn oversized_value_panics() {
        let _ = ArrayMap::new(MapDef {
            value_size: 8192,
            max_entries: 1,
        });
    }
}
