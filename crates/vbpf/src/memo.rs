//! Verdict memoization for pure classifiers.
//!
//! The common NVMe routing classifier (partition offset, QoS class pick,
//! opcode dispatch) is *pure*: its verdict and its mediated ctx writes
//! depend only on the ctx bytes it reads and on map contents
//! ([`crate::verifier::Analysis`]). For such programs, repeated
//! same-shape requests — the sequential-read fast path — can skip
//! execution entirely: the cache key is exactly the ctx bytes the
//! program reads, and the cached entry carries a *journal* of the ctx
//! writes the original execution performed, replayed verbatim on a hit.
//!
//! Why the journal is recorded at runtime rather than derived from the
//! static write set: a program may write ctx fields conditionally
//! (e.g. only translate the LBA for I/O opcodes), so replaying the
//! static write footprint could fabricate writes the program never made.
//! A pure program's execution is a deterministic function of (key bytes,
//! map state); the cache is keyed on the former and flushed whenever the
//! host touches a map ([`crate::interp::Vm::map_mut`] bumps a generation
//! counter), so the recorded journal is exactly what a re-execution
//! would do.
//!
//! The cache itself is a fixed-size two-way table: each key hashes to
//! two candidate slots and eviction takes the least-recently-touched of
//! the two (a 2-way clock/LRU hybrid — bounded memory, O(1) lookup, no
//! allocation on the hit path). All bookkeeping is surfaced in
//! [`MemoStats`].

use crate::interp::{load_le, store_le};

/// One recorded ctx write `(off, size, value)`; replayed on a cache hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CtxWrite {
    pub(crate) off: u16,
    pub(crate) size: u8,
    pub(crate) v: u64,
}

/// Largest supported key, in bytes of ctx read-set. Programs that read
/// more ctx than this are simply not memoized (the router ABI ctx is 48
/// bytes total, so real classifiers fit easily).
pub(crate) const MAX_KEY: usize = 64;

/// A packed copy of the ctx bytes the program reads. Bytes past `len`
/// are always zero, so derived equality is correct.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Key {
    pub(crate) len: u8,
    pub(crate) bytes: [u8; MAX_KEY],
}

impl Key {
    /// Packs the ctx bytes covered by `reads` (sorted, coalesced ranges
    /// whose ends are all within `ctx` — guaranteed by the compiled
    /// tier's `min_ctx` entry check).
    #[inline]
    pub(crate) fn extract(reads: &[(usize, usize)], ctx: &[u8]) -> Key {
        let mut key = Key {
            len: 0,
            bytes: [0; MAX_KEY],
        };
        let mut at = 0usize;
        for &(s, e) in reads {
            let n = e - s;
            key.bytes[at..at + n].copy_from_slice(&ctx[s..e]);
            at += n;
        }
        key.len = at as u8;
        key
    }

    #[inline]
    fn hash(&self) -> u64 {
        // FNV-1a over the packed key, one 64-bit word per round. Bytes
        // past `len` are zero, so the trailing partial word hashes
        // deterministically.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut at = 0usize;
        while at < self.len as usize {
            h ^= u64::from_le_bytes(self.bytes[at..at + 8].try_into().unwrap());
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            at += 8;
        }
        h
    }
}

/// Counters for the memo cache, exposed via
/// [`crate::interp::Vm::memo_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache (execution skipped).
    pub hits: u64,
    /// Lookups that missed and fell through to the compiled tier.
    pub misses: u64,
    /// Entries displaced because both candidate slots were occupied.
    pub evictions: u64,
    /// Whole-cache flushes caused by external map updates.
    pub invalidations: u64,
}

struct Entry {
    key: Key,
    verdict: u64,
    writes: Vec<CtxWrite>,
    stamp: u64,
}

/// Bounded per-Vm (and therefore, in the sharded router, per-shard)
/// verdict cache. Capacity rounds up to a power of two so probing masks
/// instead of dividing.
pub(crate) struct VerdictCache {
    slots: Vec<Option<Entry>>,
    mask: usize,
    /// Slot of the most recent hit/insert: a repeating request shape (the
    /// sequential-read fast path) matches here and skips hash + probe.
    last: usize,
    generation: u64,
    stamp: u64,
    pub(crate) stats: MemoStats,
}

impl VerdictCache {
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        VerdictCache {
            slots: (0..cap).map(|_| None).collect(),
            mask: cap - 1,
            last: 0,
            generation: 0,
            stamp: 0,
            stats: MemoStats::default(),
        }
    }

    /// Whether entries recorded under `generation` are still valid (the
    /// host has not touched a map since).
    #[inline]
    pub(crate) fn generation_current(&self, generation: u64) -> bool {
        self.generation == generation
    }

    /// Hot-path lookup: if the last-touched slot holds exactly the ctx
    /// bytes covered by the compiled tier's key plan (word-granular
    /// `(ctx_off, size, key_off)` chunks over the analysis read ranges),
    /// replays its journal into `ctx` and returns the verdict — no key
    /// materialization, no hash, no probe. A miss here records nothing;
    /// the caller falls through to the general [`VerdictCache::lookup`],
    /// which does the bookkeeping.
    #[inline]
    pub(crate) fn replay_last(&mut self, plan: &[(u16, u8, u16)], ctx: &mut [u8]) -> Option<u64> {
        let e = self.slots[self.last].as_ref()?;
        // Branchless accumulate-and-test over a few register-width
        // loads: short keys (8–16 bytes) make a memcmp libcall cost
        // more than the compare itself.
        let mut diff = 0u64;
        for &(off, size, at) in plan {
            diff |= load_le(ctx, off as usize, size as usize)
                ^ load_le(&e.key.bytes, at as usize, size as usize);
        }
        if diff != 0 {
            return None;
        }
        debug_assert_eq!(
            plan.iter().map(|&(_, s, _)| s as usize).sum::<usize>(),
            e.key.len as usize
        );
        // No LRU stamping here: the entry is already the freshest by
        // virtue of being `last`, and stamps only arbitrate eviction
        // between the two probe candidates — a stale stamp can at worst
        // cost one re-execution, never correctness.
        for w in &e.writes {
            store_le(ctx, w.off as usize, w.size as usize, w.v);
        }
        let verdict = e.verdict;
        self.stats.hits += 1;
        Some(verdict)
    }

    #[inline]
    fn probe(&self, key: &Key) -> (usize, usize) {
        let h = key.hash();
        (h as usize & self.mask, (h >> 32) as usize & self.mask)
    }

    #[inline]
    fn matches(&self, idx: usize, key: &Key) -> bool {
        matches!(&self.slots[idx], Some(e) if e.key == *key)
    }

    /// Looks up `key`, first flushing the cache if the host has touched
    /// any map since entries were recorded. Returns the cached verdict
    /// and the write journal to replay.
    #[inline]
    pub(crate) fn lookup(&mut self, key: &Key, generation: u64) -> Option<(u64, &[CtxWrite])> {
        if generation != self.generation {
            self.generation = generation;
            if self.slots.iter().any(|s| s.is_some()) {
                self.slots.iter_mut().for_each(|s| *s = None);
                self.stats.invalidations += 1;
            }
            self.stats.misses += 1;
            return None;
        }
        let idx = if self.matches(self.last, key) {
            self.last
        } else {
            let (i1, i2) = self.probe(key);
            if self.matches(i1, key) {
                i1
            } else if self.matches(i2, key) {
                i2
            } else {
                self.stats.misses += 1;
                return None;
            }
        };
        self.stats.hits += 1;
        self.stamp += 1;
        self.last = idx;
        let stamp = self.stamp;
        let e = self.slots[idx].as_mut().expect("matched slot");
        e.stamp = stamp;
        Some((e.verdict, &e.writes))
    }

    /// Records a fresh `(key → verdict, journal)` entry, evicting the
    /// least recently touched of the two candidate slots if both are
    /// occupied by other keys.
    pub(crate) fn insert(&mut self, key: Key, verdict: u64, writes: &[CtxWrite]) {
        self.stamp += 1;
        let stamp = self.stamp;
        let (i1, i2) = self.probe(&key);
        let idx = if self.slots[i1].is_none() || self.matches(i1, &key) {
            i1
        } else if self.slots[i2].is_none() || self.matches(i2, &key) {
            i2
        } else {
            self.stats.evictions += 1;
            let s1 = self.slots[i1].as_ref().expect("occupied").stamp;
            let s2 = self.slots[i2].as_ref().expect("occupied").stamp;
            if s1 <= s2 {
                i1
            } else {
                i2
            }
        };
        self.last = idx;
        self.slots[idx] = Some(Entry {
            key,
            verdict,
            writes: writes.to_vec(),
            stamp,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bytes: &[u8]) -> Key {
        Key::extract(&[(0, bytes.len())], bytes)
    }

    #[test]
    fn key_extraction_packs_ranges() {
        let ctx: Vec<u8> = (0u8..48).collect();
        let k = Key::extract(&[(4, 8), (16, 24)], &ctx);
        assert_eq!(k.len, 12);
        assert_eq!(
            &k.bytes[..12],
            &[4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23]
        );
        assert!(k.bytes[12..].iter().all(|&b| b == 0));
    }

    #[test]
    fn hit_returns_verdict_and_journal() {
        let mut c = VerdictCache::new(8);
        let w = [CtxWrite {
            off: 16,
            size: 8,
            v: 0x1000,
        }];
        c.insert(key(b"abcd"), 7, &w);
        let (v, writes) = c.lookup(&key(b"abcd"), 0).expect("hit");
        assert_eq!(v, 7);
        assert_eq!(writes, &w);
        assert_eq!(c.stats.hits, 1);
        assert!(c.lookup(&key(b"abce"), 0).is_none());
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn generation_change_flushes_everything() {
        let mut c = VerdictCache::new(8);
        c.insert(key(b"k1"), 1, &[]);
        assert!(c.lookup(&key(b"k1"), 0).is_some());
        assert!(c.lookup(&key(b"k1"), 1).is_none());
        assert_eq!(c.stats.invalidations, 1);
        // Same generation again: still gone, no double flush.
        assert!(c.lookup(&key(b"k1"), 1).is_none());
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn capacity_one_evicts_lru_of_probe_pair() {
        let mut c = VerdictCache::new(1);
        c.insert(key(b"a"), 1, &[]);
        c.insert(key(b"b"), 2, &[]);
        assert_eq!(c.stats.evictions, 1);
        assert!(c.lookup(&key(b"a"), 0).is_none());
        assert_eq!(c.lookup(&key(b"b"), 0).map(|(v, _)| v), Some(2));
    }
}
