//! Static verification of vbpf programs.
//!
//! Mirrors the Linux eBPF verifier's contract (§II-B): before a classifier
//! is allowed anywhere near the I/O path, we prove by abstract
//! interpretation that it
//!
//! * never reads an uninitialized register or stack slot,
//! * only dereferences pointers it legitimately holds (context, stack,
//!   map values), always in bounds and naturally aligned,
//! * only writes the context window the host declared writable
//!   (direct mediation, §III-C),
//! * calls helpers with correctly-typed arguments,
//! * and terminates: all jumps are forward, so execution length is bounded
//!   by program length (pre-5.3 Linux semantics; see DESIGN.md §8).
//!
//! Null-ability of `map_lookup` results is tracked and refined through
//! equality branches, exactly like the kernel's `PTR_TO_MAP_VALUE_OR_NULL`.

use crate::isa::*;
use crate::maps::MapDef;
use crate::Program;

/// Maximum program length in instructions.
pub const MAX_INSNS: usize = 4096;

/// Host-supplied contract the program is verified against.
#[derive(Clone, Debug)]
pub struct VerifierConfig {
    /// Size of the context buffer passed in R1.
    pub ctx_size: usize,
    /// Byte range of the context the program may write (direct mediation
    /// window); reads are allowed anywhere in `0..ctx_size`.
    pub ctx_writable: std::ops::Range<usize>,
}

impl VerifierConfig {
    /// A config for a read-only context of `ctx_size` bytes.
    pub fn read_only(ctx_size: usize) -> Self {
        VerifierConfig {
            ctx_size,
            ctx_writable: 0..0,
        }
    }
}

/// Why verification rejected a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Program empty or longer than [`MAX_INSNS`].
    BadProgramSize,
    /// A jump leaves the program or goes backward.
    BadJump { pc: usize },
    /// An instruction can never be reached.
    UnreachableCode { pc: usize },
    /// Use of an uninitialized register.
    UninitRegister { pc: usize, reg: Reg },
    /// Read of uninitialized stack bytes.
    UninitStack { pc: usize },
    /// Out-of-bounds or misaligned memory access.
    BadAccess { pc: usize },
    /// Write to read-only memory (context outside the writable window,
    /// or the frame pointer).
    ReadOnly { pc: usize },
    /// Arithmetic on incompatible types (e.g. multiplying pointers).
    BadAluType { pc: usize },
    /// Division or modulo by a zero immediate.
    DivByZeroImm { pc: usize },
    /// Shift amount out of range.
    BadShift { pc: usize },
    /// Unknown opcode.
    BadOpcode { pc: usize },
    /// Unknown helper or badly-typed helper arguments.
    BadHelperCall { pc: usize },
    /// A map index is not a known constant or out of range.
    BadMapRef { pc: usize },
    /// Dereference of a possibly-null map value before a null check.
    PossiblyNullDeref { pc: usize },
    /// Program can fall off the end without `exit`.
    FallsOffEnd,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for VerifyError {}

/// A memory-access fact the verifier proved for one instruction: which
/// region the pointer operand targets and, for ctx/stack, the *unique*
/// constant byte offset it resolves to.
///
/// Uniqueness falls out of the state lattice: merging two pointers with
/// different offsets yields `Uninit`, so any access that survives
/// verification saw exactly one `(region, offset)` pair. The compile tier
/// ([`crate::compile`]) uses these facts to resolve and bounds-check
/// ctx/stack accesses once, at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessFact {
    /// Context access at absolute byte offset `off`.
    Ctx { off: usize },
    /// Stack access at absolute offset `off` from the bottom of the
    /// 512-byte frame (`0 ..= STACK_SIZE - size`).
    Stack { off: usize },
    /// Map-value access; the address is resolved at runtime through the
    /// tagged-pointer scheme, bounds-checked by the verifier.
    MapValue,
}

/// Byproduct of verification: per-instruction access facts plus the
/// program's context read/write footprint and purity.
///
/// `ctx_reads` / `ctx_writes` are sorted, coalesced `(start, end)` byte
/// ranges covering every context access the program can make, including
/// helper arguments that point into the context. `pure` is true iff the
/// program's verdict depends only on the context bytes it reads and on
/// map contents: no map writes, no `ktime_ns` / `prandom_u32` / `trace`
/// helpers. Purity is what licenses verdict memoization
/// ([`crate::memo`]); map *reads* stay pure because the cache is
/// invalidated whenever a map is touched externally.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// One slot per instruction; `Some` for every LDX/ST/STX the program
    /// can execute (the in-order pass visits all reachable pcs, and
    /// unreachable code is rejected, so the facts are complete).
    pub(crate) access: Vec<Option<AccessFact>>,
    pub(crate) ctx_reads: Vec<(usize, usize)>,
    pub(crate) ctx_writes: Vec<(usize, usize)>,
    pub(crate) pure: bool,
}

impl Analysis {
    fn new(len: usize) -> Self {
        Analysis {
            access: vec![None; len],
            ctx_reads: Vec::new(),
            ctx_writes: Vec::new(),
            pure: true,
        }
    }

    fn finalize(&mut self) {
        coalesce(&mut self.ctx_reads);
        coalesce(&mut self.ctx_writes);
    }
}

/// Sorts and merges overlapping/adjacent `(start, end)` byte ranges.
fn coalesce(ranges: &mut Vec<(usize, usize)>) {
    ranges.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::new();
    for &(s, e) in ranges.iter() {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    *ranges = out;
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RType {
    Uninit,
    Scalar { known: Option<u64> },
    CtxPtr { off: i64 },
    StackPtr { off: i64 },
    MapValue { map: u32, off: i64 },
    MaybeNullMapValue { map: u32 },
}

impl RType {
    fn scalar() -> Self {
        RType::Scalar { known: None }
    }
    fn is_init(&self) -> bool {
        !matches!(self, RType::Uninit)
    }
}

#[derive(Clone, PartialEq, Eq)]
struct State {
    regs: [RType; NUM_REGS],
    /// Byte-granular initialization tracking of the 512-byte stack;
    /// index 0 is the deepest byte (R10 - 512).
    stack_init: [bool; STACK_SIZE],
}

impl State {
    fn entry() -> Self {
        let mut regs = [RType::Uninit; NUM_REGS];
        regs[R1 as usize] = RType::CtxPtr { off: 0 };
        regs[R10 as usize] = RType::StackPtr { off: 0 };
        State {
            regs,
            stack_init: [false; STACK_SIZE],
        }
    }

    fn merge(&self, other: &State) -> State {
        let mut regs = [RType::Uninit; NUM_REGS];
        for (r, (&a, &b)) in regs.iter_mut().zip(self.regs.iter().zip(other.regs.iter())) {
            *r = match (a, b) {
                (a, b) if a == b => a,
                (RType::Scalar { .. }, RType::Scalar { .. }) => RType::scalar(),
                _ => RType::Uninit,
            };
        }
        let mut stack_init = [false; STACK_SIZE];
        for (s, (&a, &b)) in stack_init
            .iter_mut()
            .zip(self.stack_init.iter().zip(other.stack_init.iter()))
        {
            *s = a && b;
        }
        State { regs, stack_init }
    }
}

struct Verifier<'a> {
    insns: &'a [Insn],
    cfg: &'a VerifierConfig,
    maps: &'a [MapDef],
    states: Vec<Option<State>>,
    analysis: Analysis,
}

/// Verifies a program against `cfg` and `maps`; on success returns the
/// executable [`Program`].
pub fn verify(
    insns: Vec<Insn>,
    maps: Vec<MapDef>,
    cfg: &VerifierConfig,
) -> Result<Program, VerifyError> {
    if insns.is_empty() || insns.len() > MAX_INSNS {
        return Err(VerifyError::BadProgramSize);
    }
    let mut v = Verifier {
        insns: &insns,
        cfg,
        maps: &maps,
        states: vec![None; insns.len()],
        analysis: Analysis::new(insns.len()),
    };
    v.run()?;
    let mut analysis = v.analysis;
    analysis.finalize();
    Ok(Program {
        insns,
        maps,
        analysis,
    })
}

impl<'a> Verifier<'a> {
    fn run(&mut self) -> Result<(), VerifyError> {
        // Structural pre-pass: register numbers must be valid, and register
        // writes must not target the frame pointer.
        for (pc, insn) in self.insns.iter().enumerate() {
            if insn.dst as usize >= NUM_REGS || insn.src as usize >= NUM_REGS {
                return Err(VerifyError::BadOpcode { pc });
            }
            let writes_dst_reg = matches!(insn.class(), CLASS_LDX | CLASS_LD);
            if writes_dst_reg && insn.dst == R10 {
                return Err(VerifyError::ReadOnly { pc });
            }
        }
        self.states[0] = Some(State::entry());
        // Forward-only control flow lets us verify in a single in-order
        // pass: every predecessor of pc has index < pc.
        for pc in 0..self.insns.len() {
            let state = match self.states[pc].clone() {
                Some(s) => s,
                None => return Err(VerifyError::UnreachableCode { pc }),
            };
            self.step(pc, state)?;
        }
        Ok(())
    }

    fn flow_to(&mut self, pc: usize, target: usize, state: State) -> Result<(), VerifyError> {
        if target >= self.insns.len() {
            return Err(VerifyError::BadJump { pc });
        }
        if target <= pc {
            return Err(VerifyError::BadJump { pc });
        }
        self.states[target] = Some(match self.states[target].take() {
            Some(existing) => existing.merge(&state),
            None => state,
        });
        Ok(())
    }

    fn fall_through(&mut self, pc: usize, state: State) -> Result<(), VerifyError> {
        if pc + 1 >= self.insns.len() {
            return Err(VerifyError::FallsOffEnd);
        }
        self.states[pc + 1] = Some(match self.states[pc + 1].take() {
            Some(existing) => existing.merge(&state),
            None => state,
        });
        Ok(())
    }

    fn check_init(&self, pc: usize, st: &State, reg: Reg) -> Result<(), VerifyError> {
        if !st.regs[reg as usize].is_init() {
            return Err(VerifyError::UninitRegister { pc, reg });
        }
        Ok(())
    }

    /// Checks a memory access through `ptr` at `off` of `size` bytes.
    /// Returns Ok(()) if in-bounds, aligned, and (for reads) initialized.
    fn check_access(
        &self,
        pc: usize,
        st: &State,
        ptr: RType,
        off: i64,
        size: usize,
        write: bool,
    ) -> Result<(), VerifyError> {
        match ptr {
            RType::CtxPtr { off: base } => {
                let a = base + off;
                if a < 0 || (a as usize) + size > self.cfg.ctx_size {
                    return Err(VerifyError::BadAccess { pc });
                }
                if !(a as usize).is_multiple_of(size) {
                    return Err(VerifyError::BadAccess { pc });
                }
                if write {
                    let w = &self.cfg.ctx_writable;
                    if (a as usize) < w.start || (a as usize) + size > w.end {
                        return Err(VerifyError::ReadOnly { pc });
                    }
                }
                Ok(())
            }
            RType::StackPtr { off: base } => {
                let a = base + off; // relative to R10 (top); valid [-512, 0)
                if a < -(STACK_SIZE as i64) || a + size as i64 > 0 {
                    return Err(VerifyError::BadAccess { pc });
                }
                if !write {
                    let start = (a + STACK_SIZE as i64) as usize;
                    if !st.stack_init[start..start + size].iter().all(|&b| b) {
                        return Err(VerifyError::UninitStack { pc });
                    }
                }
                Ok(())
            }
            RType::MapValue { map, off: base } => {
                let vsize = self.maps[map as usize].value_size as i64;
                let a = base + off;
                if a < 0 || a + size as i64 > vsize {
                    return Err(VerifyError::BadAccess { pc });
                }
                Ok(())
            }
            RType::MaybeNullMapValue { .. } => Err(VerifyError::PossiblyNullDeref { pc }),
            _ => Err(VerifyError::BadAccess { pc }),
        }
    }

    /// Records the access fact for a just-checked LDX/ST/STX at `pc`.
    /// Must be called only after `check_access` succeeded, so the
    /// resolved offsets are known in-bounds.
    fn record_access(&mut self, pc: usize, ptr: RType, off: i64, size: usize, write: bool) {
        let fact = match ptr {
            RType::CtxPtr { off: base } => {
                let a = (base + off) as usize;
                if write {
                    self.analysis.ctx_writes.push((a, a + size));
                } else {
                    self.analysis.ctx_reads.push((a, a + size));
                }
                AccessFact::Ctx { off: a }
            }
            RType::StackPtr { off: base } => AccessFact::Stack {
                off: (base + off + STACK_SIZE as i64) as usize,
            },
            RType::MapValue { .. } => {
                if write {
                    // Writing map state makes the verdict depend on
                    // invocation history: not memoizable.
                    self.analysis.pure = false;
                }
                AccessFact::MapValue
            }
            _ => return,
        };
        self.analysis.access[pc] = Some(fact);
    }

    /// Records a ctx read performed *through a helper argument* (the
    /// helper dereferences the pointer on the program's behalf).
    fn record_helper_ctx_read(&mut self, st: &State, reg: Reg, size: usize) {
        if let RType::CtxPtr { off } = st.regs[reg as usize] {
            let a = off as usize;
            self.analysis.ctx_reads.push((a, a + size));
        }
    }

    fn mark_stack_written(st: &mut State, base: i64, off: i64, size: usize) {
        let a = (base + off + STACK_SIZE as i64) as usize;
        st.stack_init[a..a + size]
            .iter_mut()
            .for_each(|b| *b = true);
    }

    /// Checks that `reg` points at `size` readable bytes (helper argument).
    fn check_readable(
        &self,
        pc: usize,
        st: &State,
        reg: Reg,
        size: usize,
    ) -> Result<(), VerifyError> {
        let t = st.regs[reg as usize];
        // Natural-alignment requirement applies per access, not to helper
        // buffers — check byte-wise.
        match t {
            RType::StackPtr { off } => {
                if off < -(STACK_SIZE as i64) || off + size as i64 > 0 {
                    return Err(VerifyError::BadHelperCall { pc });
                }
                let start = (off + STACK_SIZE as i64) as usize;
                if !st.stack_init[start..start + size].iter().all(|&b| b) {
                    return Err(VerifyError::UninitStack { pc });
                }
                Ok(())
            }
            RType::CtxPtr { off } => {
                if off < 0 || off as usize + size > self.cfg.ctx_size {
                    return Err(VerifyError::BadHelperCall { pc });
                }
                Ok(())
            }
            RType::MapValue { map, off } => {
                let vsize = self.maps[map as usize].value_size as i64;
                if off < 0 || off + size as i64 > vsize {
                    return Err(VerifyError::BadHelperCall { pc });
                }
                Ok(())
            }
            _ => Err(VerifyError::BadHelperCall { pc }),
        }
    }

    fn step(&mut self, pc: usize, mut st: State) -> Result<(), VerifyError> {
        let insn = self.insns[pc];
        let class = insn.class();
        match class {
            CLASS_ALU | CLASS_ALU64 => {
                self.step_alu(pc, &mut st, insn)?;
                self.fall_through(pc, st)
            }
            CLASS_LD => {
                if !insn.is_lddw() {
                    return Err(VerifyError::BadOpcode { pc });
                }
                st.regs[insn.dst as usize] = RType::Scalar {
                    known: Some(insn.imm as u64),
                };
                self.fall_through(pc, st)
            }
            CLASS_LDX => {
                let size = insn.access_size();
                let ptr = st.regs[insn.src as usize];
                self.check_access(pc, &st, ptr, insn.off as i64, size, false)?;
                self.record_access(pc, ptr, insn.off as i64, size, false);
                st.regs[insn.dst as usize] = RType::scalar();
                self.fall_through(pc, st)
            }
            CLASS_ST | CLASS_STX => {
                let size = insn.access_size();
                let ptr = st.regs[insn.dst as usize];
                if class == CLASS_STX {
                    self.check_init(pc, &st, insn.src)?;
                }
                self.check_access(pc, &st, ptr, insn.off as i64, size, true)?;
                self.record_access(pc, ptr, insn.off as i64, size, true);
                if let RType::StackPtr { off: base } = ptr {
                    Self::mark_stack_written(&mut st, base, insn.off as i64, size);
                }
                self.fall_through(pc, st)
            }
            CLASS_JMP => self.step_jmp(pc, st, insn),
            _ => Err(VerifyError::BadOpcode { pc }),
        }
    }

    fn step_alu(&self, pc: usize, st: &mut State, insn: Insn) -> Result<(), VerifyError> {
        let aluop = insn.op & 0xF0;
        let is64 = insn.class() == CLASS_ALU64;
        let use_reg = insn.op & 0x08 == SRC_X;
        if insn.dst as usize >= NUM_REGS - 1 {
            // R10 is read-only.
            return Err(VerifyError::ReadOnly { pc });
        }
        let src_val: Option<u64> = if use_reg {
            self.check_init(pc, st, insn.src)?;
            match st.regs[insn.src as usize] {
                RType::Scalar { known } => known,
                _ if aluop == ALU_MOV => None, // handled below
                RType::CtxPtr { .. }
                | RType::StackPtr { .. }
                | RType::MapValue { .. }
                | RType::MaybeNullMapValue { .. } => {
                    // Pointer as a source only allowed for MOV (copy) —
                    // handled below; arithmetic with pointer source only for
                    // ADD with scalar dst is NOT allowed (keep it simple).
                    None
                }
                RType::Uninit => unreachable!(),
            }
        } else {
            Some(insn.imm as u64)
        };

        if aluop == ALU_MOV {
            st.regs[insn.dst as usize] = if use_reg {
                if !is64 {
                    // mov32 truncates; only scalars allowed.
                    match st.regs[insn.src as usize] {
                        RType::Scalar { known } => RType::Scalar {
                            known: known.map(|v| v & 0xFFFF_FFFF),
                        },
                        _ => return Err(VerifyError::BadAluType { pc }),
                    }
                } else {
                    st.regs[insn.src as usize]
                }
            } else {
                RType::Scalar {
                    known: Some(if is64 {
                        insn.imm as u64
                    } else {
                        (insn.imm as u64) & 0xFFFF_FFFF
                    }),
                }
            };
            return Ok(());
        }

        if aluop == ALU_NEG {
            match st.regs[insn.dst as usize] {
                RType::Scalar { known } => {
                    st.regs[insn.dst as usize] = RType::Scalar {
                        known: known.map(|v| (v as i64).wrapping_neg() as u64),
                    };
                    return Ok(());
                }
                RType::Uninit => return Err(VerifyError::UninitRegister { pc, reg: insn.dst }),
                _ => return Err(VerifyError::BadAluType { pc }),
            }
        }

        self.check_init(pc, st, insn.dst)?;

        if matches!(aluop, ALU_DIV | ALU_MOD) && !use_reg && insn.imm == 0 {
            return Err(VerifyError::DivByZeroImm { pc });
        }
        if matches!(aluop, ALU_LSH | ALU_RSH | ALU_ARSH) && !use_reg {
            let limit = if is64 { 64 } else { 32 };
            if insn.imm < 0 || insn.imm >= limit {
                return Err(VerifyError::BadShift { pc });
            }
        }

        let dst_t = st.regs[insn.dst as usize];
        let src_is_scalar = if use_reg {
            matches!(st.regs[insn.src as usize], RType::Scalar { .. })
        } else {
            true
        };

        // Pointer arithmetic: ADD/SUB of a known or unknown scalar onto a
        // pointer, 64-bit only. Unknown offsets are rejected on pointers
        // (all classifier offsets are constant).
        match dst_t {
            RType::Scalar { known } => {
                if use_reg && !src_is_scalar {
                    return Err(VerifyError::BadAluType { pc });
                }
                let newv = match (known, src_val) {
                    (Some(a), Some(b)) => eval_alu(aluop, is64, a, b),
                    _ => None,
                };
                st.regs[insn.dst as usize] = RType::Scalar { known: newv };
                Ok(())
            }
            RType::CtxPtr { off } | RType::StackPtr { off } if is64 => {
                if !matches!(aluop, ALU_ADD | ALU_SUB) || !src_is_scalar {
                    return Err(VerifyError::BadAluType { pc });
                }
                let delta = src_val.ok_or(VerifyError::BadAluType { pc })? as i64;
                let delta = if aluop == ALU_SUB { -delta } else { delta };
                st.regs[insn.dst as usize] = match dst_t {
                    RType::CtxPtr { .. } => RType::CtxPtr { off: off + delta },
                    _ => RType::StackPtr { off: off + delta },
                };
                Ok(())
            }
            RType::MapValue { map, off } if is64 => {
                if !matches!(aluop, ALU_ADD | ALU_SUB) || !src_is_scalar {
                    return Err(VerifyError::BadAluType { pc });
                }
                let delta = src_val.ok_or(VerifyError::BadAluType { pc })? as i64;
                let delta = if aluop == ALU_SUB { -delta } else { delta };
                st.regs[insn.dst as usize] = RType::MapValue {
                    map,
                    off: off + delta,
                };
                Ok(())
            }
            _ => Err(VerifyError::BadAluType { pc }),
        }
    }

    fn step_jmp(&mut self, pc: usize, mut st: State, insn: Insn) -> Result<(), VerifyError> {
        let jmpop = insn.op & 0xF0;
        match jmpop {
            JMP_EXIT if insn.op == CLASS_JMP | JMP_EXIT => {
                match st.regs[R0 as usize] {
                    RType::Scalar { .. } => Ok(()),
                    RType::Uninit => Err(VerifyError::UninitRegister { pc, reg: R0 }),
                    // Returning a pointer would leak it to the host; the
                    // router interprets R0 as a verdict bitmask.
                    _ => Err(VerifyError::BadAluType { pc }),
                }
            }
            JMP_CALL if insn.op == CLASS_JMP | JMP_CALL => {
                self.check_call(pc, &mut st, insn.imm as u32)?;
                self.fall_through(pc, st)
            }
            JMP_JA => {
                let target = pc as i64 + 1 + insn.off as i64;
                if target < 0 {
                    return Err(VerifyError::BadJump { pc });
                }
                self.flow_to(pc, target as usize, st)
            }
            _ => {
                let use_reg = insn.op & 0x08 == SRC_X;
                self.check_init(pc, &st, insn.dst)?;
                if use_reg {
                    self.check_init(pc, &st, insn.src)?;
                }
                let dst_t = st.regs[insn.dst as usize];
                // Only scalars may be compared, except the null check on a
                // possibly-null map value against immediate 0.
                let null_check = matches!(dst_t, RType::MaybeNullMapValue { .. })
                    && !use_reg
                    && insn.imm == 0
                    && matches!(jmpop, JMP_JEQ | JMP_JNE);
                if !null_check {
                    let ok_dst = matches!(dst_t, RType::Scalar { .. });
                    let ok_src =
                        !use_reg || matches!(st.regs[insn.src as usize], RType::Scalar { .. });
                    if !ok_dst || !ok_src {
                        return Err(VerifyError::BadAluType { pc });
                    }
                }
                let target = pc as i64 + 1 + insn.off as i64;
                if target < 0 {
                    return Err(VerifyError::BadJump { pc });
                }
                let mut taken = st.clone();
                let mut fall = st;
                if null_check {
                    if let RType::MaybeNullMapValue { map } = dst_t {
                        let (null_state, nonnull_state) = if jmpop == JMP_JEQ {
                            (&mut taken, &mut fall)
                        } else {
                            (&mut fall, &mut taken)
                        };
                        null_state.regs[insn.dst as usize] = RType::Scalar { known: Some(0) };
                        nonnull_state.regs[insn.dst as usize] = RType::MapValue { map, off: 0 };
                    }
                }
                self.flow_to(pc, target as usize, taken)?;
                self.fall_through(pc, fall)
            }
        }
    }

    fn known_const(st: &State, reg: Reg) -> Option<u64> {
        match st.regs[reg as usize] {
            RType::Scalar { known } => known,
            _ => None,
        }
    }

    fn check_call(&mut self, pc: usize, st: &mut State, helper: u32) -> Result<(), VerifyError> {
        use crate::interp::helpers::*;
        let ret = match helper {
            MAP_LOOKUP => {
                let map = Self::known_const(st, R1).ok_or(VerifyError::BadMapRef { pc })? as usize;
                if map >= self.maps.len() {
                    return Err(VerifyError::BadMapRef { pc });
                }
                self.check_readable(pc, st, R2, 4)?;
                // Map reads stay pure: the memo cache is invalidated on
                // external map updates, so only the key bytes matter.
                self.record_helper_ctx_read(st, R2, 4);
                RType::MaybeNullMapValue { map: map as u32 }
            }
            MAP_UPDATE => {
                let map = Self::known_const(st, R1).ok_or(VerifyError::BadMapRef { pc })? as usize;
                if map >= self.maps.len() {
                    return Err(VerifyError::BadMapRef { pc });
                }
                let value_size = self.maps[map].value_size;
                self.check_readable(pc, st, R2, 4)?;
                self.check_readable(pc, st, R3, value_size)?;
                self.record_helper_ctx_read(st, R2, 4);
                self.record_helper_ctx_read(st, R3, value_size);
                self.analysis.pure = false;
                RType::scalar()
            }
            KTIME_NS | PRANDOM_U32 => {
                self.analysis.pure = false;
                RType::scalar()
            }
            TRACE => {
                self.check_init(pc, st, R1)?;
                // Trace output is an observable side effect a cache hit
                // would silently drop.
                self.analysis.pure = false;
                RType::scalar()
            }
            _ => return Err(VerifyError::BadHelperCall { pc }),
        };
        // Helper calls clobber the caller-saved registers.
        for r in R1..=R5 {
            st.regs[r as usize] = RType::Uninit;
        }
        st.regs[R0 as usize] = ret;
        Ok(())
    }
}

fn eval_alu(aluop: u8, is64: bool, a: u64, b: u64) -> Option<u64> {
    let (a, b) = if is64 {
        (a, b)
    } else {
        (a & 0xFFFF_FFFF, b & 0xFFFF_FFFF)
    };
    let v = match aluop {
        ALU_ADD => a.wrapping_add(b),
        ALU_SUB => a.wrapping_sub(b),
        ALU_MUL => a.wrapping_mul(b),
        ALU_DIV => a.checked_div(b).unwrap_or(0),
        ALU_MOD => a.checked_rem(b).unwrap_or(a),
        ALU_OR => a | b,
        ALU_AND => a & b,
        ALU_XOR => a ^ b,
        ALU_LSH => a.wrapping_shl(b as u32),
        ALU_RSH => {
            if is64 {
                a.wrapping_shr(b as u32)
            } else {
                ((a as u32).wrapping_shr(b as u32)) as u64
            }
        }
        ALU_ARSH => {
            if is64 {
                ((a as i64).wrapping_shr(b as u32)) as u64
            } else {
                (((a as u32) as i32).wrapping_shr(b as u32)) as u64
            }
        }
        _ => return None,
    };
    Some(if is64 { v } else { v & 0xFFFF_FFFF })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn cfg() -> VerifierConfig {
        VerifierConfig {
            ctx_size: 64,
            ctx_writable: 16..32,
        }
    }

    fn check(b: ProgramBuilder) -> Result<Program, VerifyError> {
        let (insns, maps) = b.build();
        verify(insns, maps, &cfg())
    }

    #[test]
    fn trivial_return_verifies() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 1).exit();
        assert!(check(b).is_ok());
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            verify(vec![], vec![], &cfg()).unwrap_err(),
            VerifyError::BadProgramSize
        );
    }

    #[test]
    fn uninitialized_r0_at_exit_rejected() {
        let mut b = ProgramBuilder::new();
        b.exit();
        assert_eq!(
            check(b).unwrap_err(),
            VerifyError::UninitRegister { pc: 0, reg: R0 }
        );
    }

    #[test]
    fn uninit_register_use_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64(R0, R6).exit(); // R6 never written
        assert!(matches!(
            check(b).unwrap_err(),
            VerifyError::UninitRegister { reg: R6, .. }
        ));
    }

    #[test]
    fn ctx_read_in_bounds_ok() {
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_W, R0, R1, 8).exit();
        assert!(check(b).is_ok());
    }

    #[test]
    fn ctx_read_out_of_bounds_rejected() {
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_DW, R0, R1, 60).exit(); // 60+8 > 64
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAccess { pc: 0 });
    }

    #[test]
    fn misaligned_ctx_read_rejected() {
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_W, R0, R1, 2).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAccess { pc: 0 });
    }

    #[test]
    fn ctx_write_inside_window_ok() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).st_imm(SIZE_DW, R1, 16, 5).exit();
        assert!(check(b).is_ok());
    }

    #[test]
    fn ctx_write_outside_window_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).st_imm(SIZE_DW, R1, 0, 5).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::ReadOnly { pc: 1 });
    }

    #[test]
    fn stack_read_before_write_rejected() {
        let mut b = ProgramBuilder::new();
        b.ldx(SIZE_DW, R0, R10, -8).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::UninitStack { pc: 0 });
    }

    #[test]
    fn stack_write_then_read_ok() {
        let mut b = ProgramBuilder::new();
        b.st_imm(SIZE_DW, R10, -8, 42)
            .ldx(SIZE_DW, R0, R10, -8)
            .exit();
        assert!(check(b).is_ok());
    }

    #[test]
    fn stack_overflow_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0)
            .st_imm(SIZE_DW, R10, -(STACK_SIZE as i16) - 8, 1)
            .exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAccess { pc: 1 });
    }

    #[test]
    fn stack_underflow_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).st_imm(SIZE_DW, R10, 0, 1).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAccess { pc: 1 });
    }

    #[test]
    fn scalar_deref_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R2, 0x1000).ldx(SIZE_W, R0, R2, 0).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAccess { pc: 1 });
    }

    #[test]
    fn backward_jump_rejected_at_verify_level() {
        // Hand-build a backward jump (the builder also refuses them).
        let insns = vec![
            Insn {
                op: CLASS_ALU64 | SRC_K | ALU_MOV,
                dst: R0,
                src: 0,
                off: 0,
                imm: 0,
            },
            Insn {
                op: CLASS_JMP | JMP_JA,
                dst: 0,
                src: 0,
                off: -2,
                imm: 0,
            },
        ];
        assert_eq!(
            verify(insns, vec![], &cfg()).unwrap_err(),
            VerifyError::BadJump { pc: 1 }
        );
    }

    #[test]
    fn jump_out_of_program_rejected() {
        let insns = vec![Insn {
            op: CLASS_JMP | JMP_JA,
            dst: 0,
            src: 0,
            off: 5,
            imm: 0,
        }];
        assert_eq!(
            verify(insns, vec![], &cfg()).unwrap_err(),
            VerifyError::BadJump { pc: 0 }
        );
    }

    #[test]
    fn fall_off_end_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 1);
        assert_eq!(check(b).unwrap_err(), VerifyError::FallsOffEnd);
    }

    #[test]
    fn unreachable_code_rejected() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.mov64_imm(R0, 1).ja(end).mov64_imm(R0, 2); // unreachable
        b.bind(end);
        b.exit();
        assert!(matches!(
            check(b).unwrap_err(),
            VerifyError::UnreachableCode { pc: 2 }
        ));
    }

    #[test]
    fn div_by_zero_imm_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 10).alu64_imm(ALU_DIV, R0, 0).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::DivByZeroImm { pc: 1 });
    }

    #[test]
    fn oversized_shift_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 1).alu64_imm(ALU_LSH, R0, 64).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadShift { pc: 1 });
    }

    #[test]
    fn pointer_multiplication_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64(R2, R1)
            .alu64_imm(ALU_MUL, R2, 2)
            .mov64_imm(R0, 0)
            .exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAluType { pc: 1 });
    }

    #[test]
    fn pointer_arithmetic_then_access_checks_bounds() {
        let mut b = ProgramBuilder::new();
        b.mov64(R2, R1)
            .add64_imm(R2, 8)
            .ldx(SIZE_W, R0, R2, 0)
            .exit();
        assert!(check(b).is_ok());

        let mut b2 = ProgramBuilder::new();
        b2.mov64(R2, R1)
            .add64_imm(R2, 64)
            .ldx(SIZE_W, R0, R2, 0)
            .exit();
        assert_eq!(check(b2).unwrap_err(), VerifyError::BadAccess { pc: 2 });
    }

    #[test]
    fn returning_pointer_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64(R0, R1).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAluType { pc: 1 });
    }

    #[test]
    fn writing_r10_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R10 as Reg, 0).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::ReadOnly { pc: 0 });
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 4,
        });
        b.st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(crate::interp::helpers::MAP_LOOKUP)
            .ldx(SIZE_DW, R0, R0, 0) // deref without null check!
            .exit();
        assert_eq!(
            check(b).unwrap_err(),
            VerifyError::PossiblyNullDeref { pc: 5 }
        );
    }

    #[test]
    fn map_lookup_with_null_check_verifies() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 4,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(crate::interp::helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R0, R0, 0)
            .exit();
        b.bind(is_null);
        b.mov64_imm(R0, 0).exit();
        assert!(check(b).is_ok());
    }

    #[test]
    fn map_value_bounds_enforced() {
        let mut b = ProgramBuilder::new();
        let m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 4,
        });
        let is_null = b.new_label();
        b.st_imm(SIZE_W, R10, -4, 0)
            .mov64_imm(R1, m as i32)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(crate::interp::helpers::MAP_LOOKUP)
            .jmp_imm(JMP_JEQ, R0, 0, is_null)
            .ldx(SIZE_DW, R3, R0, 8) // one past the end of the value
            .mov64_imm(R0, 0)
            .exit();
        b.bind(is_null);
        b.mov64_imm(R0, 0).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadAccess { pc: 6 });
    }

    #[test]
    fn unknown_helper_rejected() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R0, 0).call(999).exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadHelperCall { pc: 1 });
    }

    #[test]
    fn nonconstant_map_index_rejected() {
        let mut b = ProgramBuilder::new();
        let _m = b.declare_map(MapDef {
            value_size: 8,
            max_entries: 4,
        });
        b.st_imm(SIZE_W, R10, -4, 0)
            .ldx(SIZE_W, R1, R1, 0) // map index from ctx: not a constant
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(crate::interp::helpers::MAP_LOOKUP)
            .mov64_imm(R0, 0)
            .exit();
        assert_eq!(check(b).unwrap_err(), VerifyError::BadMapRef { pc: 4 });
    }

    #[test]
    fn helper_clobbers_arg_registers() {
        let mut b = ProgramBuilder::new();
        b.mov64_imm(R3, 7)
            .call(crate::interp::helpers::KTIME_NS)
            .mov64(R0, R3) // R3 is dead after the call
            .exit();
        assert!(matches!(
            check(b).unwrap_err(),
            VerifyError::UninitRegister { reg: R3, .. }
        ));
    }

    #[test]
    fn branch_merge_degrades_conflicting_types_to_uninit() {
        let mut b = ProgramBuilder::new();
        let else_l = b.new_label();
        let join = b.new_label();
        b.ldx(SIZE_W, R0, R1, 0)
            .jmp_imm(JMP_JEQ, R0, 0, else_l)
            .mov64(R2, R1) // R2 = pointer on this path
            .ja(join);
        b.bind(else_l);
        b.mov64_imm(R2, 5); // R2 = scalar on that path
        b.bind(join);
        // R2 has conflicting types: any use must fail.
        b.ldx(SIZE_W, R0, R2, 0).exit();
        assert!(matches!(
            check(b).unwrap_err(),
            VerifyError::UninitRegister { reg: R2, .. } | VerifyError::BadAccess { .. }
        ));
    }

    #[test]
    fn program_of_max_size_accepted_and_over_rejected() {
        let mut insns = Vec::new();
        for _ in 0..MAX_INSNS - 2 {
            insns.push(Insn {
                op: CLASS_ALU64 | SRC_K | ALU_MOV,
                dst: R0,
                src: 0,
                off: 0,
                imm: 1,
            });
        }
        insns.push(Insn {
            op: CLASS_ALU64 | SRC_K | ALU_MOV,
            dst: R0,
            src: 0,
            off: 0,
            imm: 1,
        });
        insns.push(Insn {
            op: CLASS_JMP | JMP_EXIT,
            dst: 0,
            src: 0,
            off: 0,
            imm: 0,
        });
        assert!(verify(insns.clone(), vec![], &cfg()).is_ok());
        insns.push(insns[0]);
        assert_eq!(
            verify(insns, vec![], &cfg()).unwrap_err(),
            VerifyError::BadProgramSize
        );
    }
}
