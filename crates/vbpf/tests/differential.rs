//! Differential property test: the tiered executor (compiled op array +
//! verdict memoization) must be observationally identical to the
//! fetch/decode interpreter on every verified program.
//!
//! Strategy: generate seeded random programs through [`ProgramBuilder`]
//! from a constrained grammar (scalar ALU, in-bounds ctx loads,
//! writable-window ctx stores, stack spill/reload, forward branch
//! diamonds, canonical helper sequences), rejection-sample them through
//! the verifier, then run the same program in two fresh Vms — one through
//! the tiered `run()`, one pinned to `run_interp()` — and demand
//! identical verdicts, identical `ExecError`s, identical mediated ctx
//! bytes, identical map state, and identical trace logs. Repeated
//! contexts exercise memo hits; tiny budgets exercise `BudgetExceeded`
//! parity (including the dead-store weight accounting); truncated
//! contexts exercise the per-invocation interpreter fallback.

use nvmetro_vbpf::builder::ProgramBuilder;
use nvmetro_vbpf::interp::helpers;
use nvmetro_vbpf::isa::*;
use nvmetro_vbpf::{verify, MapDef, VerifierConfig, Vm, VmConfig};

const CTX_SIZE: usize = 48;
const WRITE_LO: usize = 16;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

const SIZES: [u8; 4] = [SIZE_B, SIZE_H, SIZE_W, SIZE_DW];
const ALU_OPS: [u8; 12] = [
    ALU_ADD, ALU_SUB, ALU_MUL, ALU_DIV, ALU_OR, ALU_AND, ALU_LSH, ALU_RSH, ALU_MOD, ALU_XOR,
    ALU_MOV, ALU_ARSH,
];
const COND_OPS: [u8; 11] = [
    JMP_JEQ, JMP_JNE, JMP_JGT, JMP_JGE, JMP_JLT, JMP_JLE, JMP_JSET, JMP_JSGT, JMP_JSGE, JMP_JSLT,
    JMP_JSLE,
];
/// Registers the generator is allowed to treat as scalar scratch
/// (R1 holds the ctx pointer, R6 its saved copy, R10 the frame pointer).
const SCRATCH: [Reg; 7] = [R0, R2, R3, R4, R5, R7, R8];

fn size_bytes(size: u8) -> usize {
    match size {
        SIZE_B => 1,
        SIZE_H => 2,
        SIZE_W => 4,
        _ => 8,
    }
}

/// Emits one random program. Returns the instruction/map lists ready for
/// the verifier (which may still reject some — the caller
/// rejection-samples).
fn gen_program(rng: &mut Rng) -> (Vec<Insn>, Vec<MapDef>) {
    let mut b = ProgramBuilder::new();
    let map = b.declare_map(MapDef {
        value_size: 8,
        max_entries: 4,
    });
    b.mov64(R6, R1); // ctx pointer survives helper clobbers
    let mut scalars: Vec<Reg> = vec![];
    let mut stack_init: Vec<i16> = vec![]; // initialized dword slots (offsets from R10)
    let steps = 4 + rng.below(14);
    for _ in 0..steps {
        match rng.below(12) {
            0 => {
                let dst = rng.pick(&SCRATCH);
                b.mov64_imm(dst, rng.next() as i32);
                if !scalars.contains(&dst) {
                    scalars.push(dst);
                }
            }
            1 if !scalars.is_empty() => {
                let dst = rng.pick(&scalars);
                b.alu64_imm(rng.pick(&ALU_OPS), dst, rng.next() as i32);
            }
            2 if scalars.len() >= 2 => {
                let dst = rng.pick(&scalars);
                let src = rng.pick(&scalars);
                b.alu64(rng.pick(&ALU_OPS), dst, src);
            }
            3 if !scalars.is_empty() => {
                let dst = rng.pick(&scalars);
                b.alu32_imm(rng.pick(&ALU_OPS), dst, rng.next() as i32);
            }
            4 => {
                // Aligned in-bounds ctx load.
                let size = rng.pick(&SIZES);
                let s = size_bytes(size);
                let off = (rng.below((CTX_SIZE / s) as u64) as usize * s) as i16;
                let dst = rng.pick(&SCRATCH);
                b.ldx(size, dst, R6, off);
                if !scalars.contains(&dst) {
                    scalars.push(dst);
                }
            }
            5 if !scalars.is_empty() => {
                // Aligned store into the writable ctx window.
                let size = rng.pick(&SIZES);
                let s = size_bytes(size);
                let slots = ((CTX_SIZE - WRITE_LO) / s) as u64;
                let off = (WRITE_LO + rng.below(slots) as usize * s) as i16;
                let src = rng.pick(&scalars);
                b.stx(size, R6, off, src);
            }
            6 => {
                let size = rng.pick(&SIZES);
                let s = size_bytes(size);
                let slots = ((CTX_SIZE - WRITE_LO) / s) as u64;
                let off = (WRITE_LO + rng.below(slots) as usize * s) as i16;
                b.st_imm(size, R6, off, rng.next() as i32);
            }
            7 if !scalars.is_empty() => {
                // Stack spill; remember the slot so later loads read
                // initialized memory only.
                let off = -8 * (1 + rng.below(8) as i16);
                let src = rng.pick(&scalars);
                b.stx(SIZE_DW, R10, off, src);
                if !stack_init.contains(&off) {
                    stack_init.push(off);
                }
            }
            8 if !stack_init.is_empty() => {
                let off = rng.pick(&stack_init);
                let dst = rng.pick(&SCRATCH);
                b.ldx(SIZE_DW, dst, R10, off);
                if !scalars.contains(&dst) {
                    scalars.push(dst);
                }
            }
            9 if !scalars.is_empty() => {
                // Forward branch diamond over a couple of ALU fillers.
                let l = b.new_label();
                let reg = rng.pick(&scalars);
                let op = rng.pick(&COND_OPS);
                if scalars.len() >= 2 && rng.below(2) == 0 {
                    let other = rng.pick(&scalars);
                    b.jmp_reg(op, reg, other, l);
                } else {
                    b.jmp_imm(op, reg, rng.next() as i32, l);
                }
                for _ in 0..=rng.below(2) {
                    let dst = rng.pick(&scalars);
                    b.alu64_imm(rng.pick(&ALU_OPS), dst, rng.next() as i32);
                }
                b.bind(l);
            }
            10 => {
                // Canonical map_lookup + null check; key may be out of
                // range to exercise the null path. Optionally writes the
                // value back (making the program impure).
                let key = rng.below(6) as i32;
                let skip = b.new_label();
                b.st_imm(SIZE_W, R10, -4, key)
                    .mov64_imm(R1, map as i32)
                    .mov64(R2, R10)
                    .add64_imm(R2, -4)
                    .call(helpers::MAP_LOOKUP)
                    .jmp_imm(JMP_JEQ, R0, 0, skip)
                    .ldx(SIZE_DW, R7, R0, 0);
                if rng.below(3) == 0 {
                    b.add64_imm(R7, 1).stx(SIZE_DW, R0, 0, R7);
                }
                b.bind(skip);
                b.mov64_imm(R0, rng.next() as i32);
                scalars.retain(|r| !(R1..=R5).contains(r) && *r != R7);
                if !scalars.contains(&R0) {
                    scalars.push(R0);
                }
            }
            11 => {
                // Impure helpers: ktime / prandom / trace.
                match rng.below(3) {
                    0 => {
                        b.call(helpers::KTIME_NS);
                    }
                    1 => {
                        b.call(helpers::PRANDOM_U32);
                    }
                    _ => {
                        b.mov64_imm(R1, rng.next() as i32).call(helpers::TRACE);
                    }
                }
                scalars.retain(|r| !(R1..=R5).contains(r));
                if !scalars.contains(&R0) {
                    scalars.push(R0);
                }
            }
            _ => {}
        }
    }
    // R0 must hold a scalar verdict at exit.
    if scalars.contains(&R0) && rng.below(2) == 0 {
        // keep whatever computation landed in R0
    } else if let Some(&r) = scalars.iter().find(|&&r| r != R0) {
        b.mov64(R0, r);
    } else {
        b.mov64_imm(R0, rng.next() as i32);
    }
    b.exit();
    b.build()
}

fn build_vm(insns: &[Insn], maps: &[MapDef], cfg: VmConfig) -> Option<Vm> {
    let vcfg = VerifierConfig {
        ctx_size: CTX_SIZE,
        ctx_writable: WRITE_LO..CTX_SIZE,
    };
    verify(insns.to_vec(), maps.to_vec(), &vcfg)
        .ok()
        .map(|p| Vm::with_config(p, cfg))
}

fn random_ctx(rng: &mut Rng) -> [u8; CTX_SIZE] {
    let mut ctx = [0u8; CTX_SIZE];
    for chunk in ctx.chunks_mut(8) {
        // Small byte values keep comparisons/branches interesting.
        let v = rng.next() & 0x0F0F_0F0F_0F0F_0F0F;
        chunk.copy_from_slice(&v.to_le_bytes()[..chunk.len()]);
    }
    ctx
}

/// Asserts that the tiered Vm `a` and the interpreter-pinned Vm `b`
/// agree on one invocation over `ctx`: result (verdict or error),
/// mediated ctx bytes.
fn assert_one_run(a: &mut Vm, b: &mut Vm, ctx: &[u8], label: &str) {
    let mut ca = ctx.to_vec();
    let mut cb = ctx.to_vec();
    let ra = a.run(&mut ca);
    let rb = b.run_interp(&mut cb);
    assert_eq!(
        ra,
        rb,
        "{label}: verdict/error diverged\n{}",
        a.program().disasm()
    );
    assert_eq!(
        ca,
        cb,
        "{label}: mediated ctx bytes diverged\n{}",
        a.program().disasm()
    );
}

/// Asserts that all externally observable Vm state matches after a batch
/// of runs: map contents and trace logs.
fn assert_state(a: &Vm, b: &Vm, maps: &[MapDef], label: &str) {
    for (i, def) in maps.iter().enumerate() {
        for k in 0..def.max_entries {
            assert_eq!(
                a.map(i).get(k),
                b.map(i).get(k),
                "{label}: map {i} slot {k} diverged\n{}",
                a.program().disasm()
            );
        }
    }
    assert_eq!(a.trace_log(), b.trace_log(), "{label}: trace logs diverged");
}

#[test]
fn random_programs_agree_across_tiers() {
    let mut rng = Rng::new(0x5EED_0001);
    let mut verified = 0u32;
    let mut compiled = 0u32;
    let mut pure = 0u32;
    for seed in 0..300 {
        let (insns, maps) = gen_program(&mut rng);
        let cfg = VmConfig::default();
        let Some(mut a) = build_vm(&insns, &maps, cfg) else {
            continue;
        };
        let mut b = build_vm(&insns, &maps, cfg).expect("same program verifies twice");
        verified += 1;
        compiled += a.is_compiled() as u32;
        pure += a.program().is_pure() as u32;
        a.set_time(123_456);
        b.set_time(123_456);
        // Pre-seed one map slot so lookup paths see data.
        a.map_mut(0).set_u64(1, 0xAA55).unwrap();
        b.map_mut(0).set_u64(1, 0xAA55).unwrap();

        let c0 = random_ctx(&mut rng);
        let c1 = random_ctx(&mut rng);
        let mut runs: Vec<[u8; CTX_SIZE]> = vec![c0, c1];
        for _ in 0..4 {
            runs.push(random_ctx(&mut rng));
        }
        // Repeats drive memo hits on pure programs; the hit must replay
        // the identical journal.
        runs.push(c0);
        runs.push(c1);
        runs.push(c0);
        for (i, ctx) in runs.iter().enumerate() {
            assert_one_run(&mut a, &mut b, ctx, &format!("seed {seed} run {i}"));
        }
        assert_state(&a, &b, &maps, &format!("seed {seed}"));
        assert_eq!(a.invocations(), b.invocations(), "seed {seed}");
    }
    // The generator must actually exercise the tiers, not degenerate.
    assert!(verified >= 150, "only {verified}/300 programs verified");
    assert!(compiled >= 100, "only {compiled} programs compiled");
    assert!(pure >= 20, "only {pure} programs were pure");
}

#[test]
fn random_programs_agree_on_budget_exhaustion() {
    let mut rng = Rng::new(0x5EED_0002);
    let mut checked = 0u32;
    for seed in 0..120 {
        let (insns, maps) = gen_program(&mut rng);
        let n = insns.len() as u64;
        let ctx = random_ctx(&mut rng);
        for budget in [1, n / 2, n.saturating_sub(1), n, n + 2] {
            let cfg = VmConfig {
                max_insns: budget,
                ..VmConfig::default()
            };
            let Some(mut a) = build_vm(&insns, &maps, cfg) else {
                continue;
            };
            let mut b = build_vm(&insns, &maps, cfg).expect("verifies twice");
            a.set_time(9);
            b.set_time(9);
            checked += 1;
            // Run twice: the second run exercises memo interaction with
            // budget errors (errors must never be cached).
            assert_one_run(
                &mut a,
                &mut b,
                &ctx,
                &format!("seed {seed} budget {budget}"),
            );
            assert_one_run(
                &mut a,
                &mut b,
                &ctx,
                &format!("seed {seed} budget {budget} rerun"),
            );
            assert_state(&a, &b, &maps, &format!("seed {seed} budget {budget}"));
        }
    }
    assert!(checked >= 200, "only {checked} budget cases checked");
}

#[test]
fn random_programs_agree_on_truncated_ctx() {
    let mut rng = Rng::new(0x5EED_0003);
    let mut checked = 0u32;
    for seed in 0..120 {
        let (insns, maps) = gen_program(&mut rng);
        let cfg = VmConfig::default();
        let Some(mut a) = build_vm(&insns, &maps, cfg) else {
            continue;
        };
        let mut b = build_vm(&insns, &maps, cfg).expect("verifies twice");
        a.set_time(7);
        b.set_time(7);
        checked += 1;
        let full = random_ctx(&mut rng);
        for len in [0usize, 8, 17, 33, CTX_SIZE] {
            let mut ca = full[..len].to_vec();
            let mut cb = full[..len].to_vec();
            let ra = a.run(&mut ca);
            let rb = b.run_interp(&mut cb);
            assert_eq!(ra, rb, "seed {seed} len {len}\n{}", a.program().disasm());
            assert_eq!(ca, cb, "seed {seed} len {len}");
        }
        assert_state(&a, &b, &maps, &format!("seed {seed}"));
    }
    assert!(checked >= 60, "only {checked} truncation cases checked");
}
