//! Seeded heavy-tail load shaping for fleet rigs.
//!
//! Real multi-tenant fleets are not uniform: a handful of tenants carry
//! most of the traffic (Zipf across tenants) and each tenant's own
//! arrivals are bursty (heavy-tailed inter-arrival gaps), which is
//! exactly the regime the fleet scheduler and read-coalescing window are
//! built for. This module provides the two seeded generators the
//! [`fleet`](crate::fleet) rig composes:
//!
//! * [`zipf_weights`] — a normalized Zipf(θ) share vector over `n`
//!   tenant ranks, plus [`seeded_permutation`] so the whale tenant is not
//!   always tenant 0;
//! * [`HeavyTailArrivals`] — an open-loop arrival process whose gaps are
//!   drawn from a bounded [`Pareto`] distribution, so a tenant alternates
//!   dense bursts with long quiet stretches while keeping a finite,
//!   configurable mean rate.
//!
//! Everything is driven by [`nvmetro_sim::SimRng`], so a seed fully
//! determines the offered load.

use nvmetro_sim::{Ns, SimRng};

/// Normalized Zipf weights over `n` ranks: `w_i ∝ 1/(i+1)^theta`,
/// `Σ w_i = 1`. Rank 0 is the heaviest tenant.
pub fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    assert!(n > 0, "zipf_weights needs at least one rank");
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// Seeded Fisher–Yates permutation of `0..n`, used to map tenants to
/// Zipf ranks so heavy tenants land on seed-dependent ids.
pub fn seeded_permutation(n: usize, rng: &mut SimRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        p.swap(i, j);
    }
    p
}

/// Bounded Pareto sampler: `x = x_m · u^(-1/α)` clipped to `cap`.
///
/// The bound keeps a single draw from freezing a virtual-time rig (an
/// unbounded Pareto with α ≤ 2 has infinite variance), at the cost of a
/// slightly smaller realized mean than the nominal one.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    alpha: f64,
    xm: f64,
    cap: f64,
}

impl Pareto {
    /// Cap, as a multiple of the nominal mean.
    const CAP_MEANS: f64 = 50.0;

    /// A sampler with the given nominal mean (`α > 1` required; the
    /// scale is derived as `x_m = mean·(α-1)/α`).
    pub fn with_mean(mean: f64, alpha: f64) -> Self {
        assert!(alpha > 1.0, "Pareto mean is infinite for alpha <= 1");
        assert!(mean > 0.0, "Pareto mean must be positive");
        Pareto {
            alpha,
            xm: mean * (alpha - 1.0) / alpha,
            cap: mean * Self::CAP_MEANS,
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // u in (0, 1]: f64() is [0, 1), and u = 0 would blow up the power.
        let u = 1.0 - rng.f64();
        (self.xm * u.powf(-1.0 / self.alpha)).min(self.cap)
    }
}

/// Open-loop arrival process with bounded-Pareto inter-arrival gaps.
///
/// `next_at` is the virtual time of the next arrival; callers poll it
/// against `now` and [`advance`](Self::advance) past each consumed
/// arrival. Gaps round to at least 1 ns so time always moves.
pub struct HeavyTailArrivals {
    gaps: Pareto,
    rng: SimRng,
    next_at: Ns,
}

impl HeavyTailArrivals {
    /// A process with the given mean gap (ns) and tail index `alpha`
    /// (smaller α ⇒ burstier; 1.5 is a reasonable fleet default).
    pub fn new(seed: u64, mean_gap_ns: f64, alpha: f64) -> Self {
        let gaps = Pareto::with_mean(mean_gap_ns, alpha);
        let mut rng = SimRng::new(seed);
        // Desynchronise tenants: the first arrival is itself one gap in.
        let first = gaps.sample(&mut rng).max(1.0) as Ns;
        HeavyTailArrivals {
            gaps,
            rng,
            next_at: first,
        }
    }

    /// Virtual time of the next pending arrival.
    pub fn next_at(&self) -> Ns {
        self.next_at
    }

    /// Consumes the pending arrival, schedules the one after it, and
    /// returns the new [`next_at`](Self::next_at).
    pub fn advance(&mut self) -> Ns {
        let gap = self.gaps.sample(&mut self.rng).max(1.0) as Ns;
        self.next_at += gap;
        self.next_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_are_normalized_and_skewed() {
        let w = zipf_weights(1000, 1.1);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights must sum to 1, got {sum}");
        assert!(
            w.windows(2).all(|p| p[0] >= p[1]),
            "ranks must be nonincreasing"
        );
        // The head must dominate: top 10% of ranks carry well over their
        // uniform share (10%) of the load.
        let head: f64 = w[..100].iter().sum();
        assert!(head > 0.35, "top-decile share {head:.3} not heavy enough");
        // And the single heaviest rank towers over the median rank.
        assert!(w[0] / w[499] > 100.0);
    }

    #[test]
    fn permutation_is_seeded_and_complete() {
        let mut rng = SimRng::new(42);
        let p = seeded_permutation(256, &mut rng);
        let mut seen = vec![false; 256];
        for &i in &p {
            assert!(!seen[i], "duplicate rank {i}");
            seen[i] = true;
        }
        let mut rng2 = SimRng::new(42);
        assert_eq!(p, seeded_permutation(256, &mut rng2), "same seed, same map");
        let mut rng3 = SimRng::new(43);
        assert_ne!(p, seeded_permutation(256, &mut rng3), "seed must matter");
    }

    #[test]
    fn pareto_gaps_have_the_right_mean_and_a_heavy_tail() {
        let mean = 10_000.0;
        let mut arr = HeavyTailArrivals::new(7, mean, 1.5);
        let n = 50_000usize;
        let mut gaps = Vec::with_capacity(n);
        let mut prev = 0;
        for _ in 0..n {
            let at = arr.next_at();
            gaps.push((at - prev) as f64);
            prev = at;
            arr.advance();
        }
        let m: f64 = gaps.iter().sum::<f64>() / n as f64;
        assert!(
            m > 0.7 * mean && m < 1.1 * mean,
            "realized mean {m:.0} too far from nominal {mean:.0}"
        );
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = gaps[n / 2];
        let p99 = gaps[n * 99 / 100];
        // Exponential gaps would give p99/p50 = ln(100)/ln(2) ≈ 6.6; the
        // α=1.5 Pareto sits near 13.5. Demand clearly-super-exponential.
        let ratio = p99 / p50;
        assert!(
            ratio > 8.0 && ratio < 30.0,
            "tail ratio p99/p50 = {ratio:.1} out of the heavy-tail band"
        );
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let mut a = HeavyTailArrivals::new(99, 5_000.0, 1.5);
        let mut b = HeavyTailArrivals::new(99, 5_000.0, 1.5);
        for _ in 0..100 {
            assert_eq!(a.next_at(), b.next_at());
            a.advance();
            b.advance();
        }
        let c = HeavyTailArrivals::new(100, 5_000.0, 1.5);
        let d = HeavyTailArrivals::new(99, 5_000.0, 1.5);
        assert_ne!(c.next_at(), d.next_at(), "seeds must decorrelate");
    }
}
