//! fio-style workload engine.

use nvmetro_nvme::{CqConsumer, SqProducer, SubmissionEntry, LBA_SIZE};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, SimRng, SEC};
use nvmetro_stats::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// fio benchmark modes (Table II's abbreviations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FioMode {
    /// Random read.
    RandRead,
    /// Random write.
    RandWrite,
    /// Mixed random read/write (50/50).
    RandRw,
    /// Sequential read.
    SeqRead,
    /// Sequential write.
    SeqWrite,
    /// Mixed sequential read/write.
    SeqRw,
}

impl FioMode {
    /// Table II's abbreviation for this mode.
    pub fn abbrev(self) -> &'static str {
        match self {
            FioMode::RandRead => "RR",
            FioMode::RandWrite => "RW",
            FioMode::RandRw => "RRW",
            FioMode::SeqRead => "SR",
            FioMode::SeqWrite => "SW",
            FioMode::SeqRw => "SRW",
        }
    }

    /// True for the random-access modes.
    pub fn is_random(self) -> bool {
        matches!(
            self,
            FioMode::RandRead | FioMode::RandWrite | FioMode::RandRw
        )
    }
}

/// One fio run's parameters.
#[derive(Clone, Debug)]
pub struct FioConfig {
    /// Block size in bytes.
    pub bs: usize,
    /// Access mode.
    pub mode: FioMode,
    /// Queue depth per job.
    pub qd: u32,
    /// Parallel jobs.
    pub jobs: usize,
    /// Virtual run duration.
    pub duration: Ns,
    /// Open-loop submission rate across all jobs (latency runs, Fig. 4);
    /// `None` = closed loop at full depth.
    pub rate_iops: Option<u64>,
    /// RNG seed base.
    pub seed: u64,
}

impl FioConfig {
    /// A config with the paper's defaults (closed loop, 1 virtual second).
    pub fn new(bs: usize, mode: FioMode, qd: u32, jobs: usize) -> Self {
        FioConfig {
            bs,
            mode,
            qd,
            jobs,
            duration: SEC,
            rate_iops: None,
            seed: 0xF10,
        }
    }

    /// Table II label, e.g. `bs=512B qd=128 jobs=4 RR`.
    pub fn label(&self) -> String {
        let bs = if self.bs < 1024 {
            format!("{}B", self.bs)
        } else {
            format!("{}K", self.bs / 1024)
        };
        format!(
            "bs={} qd={} jobs={} {}",
            bs,
            self.qd,
            self.jobs,
            self.mode.abbrev()
        )
    }
}

/// The complete Table II configuration list.
pub fn table2_configs() -> Vec<FioConfig> {
    let mut out = Vec::new();
    // 512 B random: QD 1/128 x 1 job, plus QD 128 x 4 jobs.
    for mode in [FioMode::RandRead, FioMode::RandWrite, FioMode::RandRw] {
        for qd in [1, 128] {
            out.push(FioConfig::new(512, mode, qd, 1));
        }
        out.push(FioConfig::new(512, mode, 128, 4));
    }
    // 16 KiB sequential: QD 1/128 x jobs 1/4.
    for mode in [FioMode::SeqRead, FioMode::SeqWrite, FioMode::SeqRw] {
        for qd in [1, 128] {
            for jobs in [1, 4] {
                out.push(FioConfig::new(16 * 1024, mode, qd, jobs));
            }
        }
    }
    // 128 KiB sequential: SR QD 1/128, SW QD 128, SRW QD 1/128; jobs 1/4.
    for jobs in [1, 4] {
        for qd in [1, 128] {
            out.push(FioConfig::new(128 * 1024, FioMode::SeqRead, qd, jobs));
        }
        out.push(FioConfig::new(128 * 1024, FioMode::SeqWrite, 128, jobs));
        for qd in [1, 128] {
            out.push(FioConfig::new(128 * 1024, FioMode::SeqRw, qd, jobs));
        }
    }
    out
}

/// Shared, thread-safe view of one job's results.
#[derive(Default)]
pub struct JobStats {
    /// Completion latency histogram (ns).
    pub latency: Mutex<Histogram>,
    /// I/Os completed.
    pub completed: AtomicU64,
    /// I/Os submitted.
    pub submitted: AtomicU64,
    /// Completions that carried an error status.
    pub errors: AtomicU64,
}

impl JobStats {
    /// IOPS over `duration`.
    pub fn iops(&self, duration: Ns) -> f64 {
        if duration == 0 {
            return 0.0;
        }
        self.completed.load(Ordering::Relaxed) as f64 * SEC as f64 / duration as f64
    }
}

/// One fio job: submits to a guest submission queue, reaps its completion
/// queue, and records per-I/O latency. Models the guest's fio process +
/// block stack, burning its vCPU while the benchmark runs (fio's polling
/// I/O engine).
pub struct FioJob {
    name: String,
    cfg: FioConfig,
    cost: CostModel,
    sq: SqProducer,
    cq: CqConsumer,
    stats: Arc<JobStats>,
    rng: SimRng,
    /// LBA region this job works in.
    region_start: u64,
    region_lbas: u64,
    seq_cursor: u64,
    in_flight: u64,
    /// Submit timestamp per cid slot.
    submit_time: Vec<Ns>,
    free_slots: Vec<u16>,
    next_submit: Ns,
    rate_interval: Option<Ns>,
    charged: Ns,
    stop_at: Ns,
}

impl FioJob {
    /// Creates a job over the given guest queue ends. `region` is the LBA
    /// span this job addresses (jobs get disjoint spans).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        cfg: FioConfig,
        cost: CostModel,
        sq: SqProducer,
        cq: CqConsumer,
        region_start: u64,
        region_lbas: u64,
        seed: u64,
    ) -> (Self, Arc<JobStats>) {
        let stats = Arc::new(JobStats::default());
        let qd = cfg.qd as usize;
        let rate_interval = cfg.rate_iops.map(|r| (SEC as f64 / r as f64) as Ns);
        let stop_at = cfg.duration;
        let job = FioJob {
            name: name.to_string(),
            cfg,
            cost,
            sq,
            cq,
            stats: stats.clone(),
            rng: SimRng::new(seed),
            region_start,
            region_lbas,
            seq_cursor: 0,
            in_flight: 0,
            submit_time: vec![0; qd],
            free_slots: (0..qd as u16).rev().collect(),
            next_submit: 0,
            rate_interval,
            charged: 0,
            stop_at,
        };
        (job, stats)
    }

    fn blocks_per_op(&self) -> u64 {
        (self.cfg.bs / LBA_SIZE) as u64
    }

    fn pick_op(&mut self) -> (bool, u64) {
        let nlb = self.blocks_per_op();
        let span = self.region_lbas / nlb;
        let lba = if self.cfg.mode.is_random() {
            self.region_start + self.rng.below(span.max(1)) * nlb
        } else {
            let lba = self.region_start + (self.seq_cursor % span.max(1)) * nlb;
            self.seq_cursor += 1;
            lba
        };
        let write = match self.cfg.mode {
            FioMode::RandRead | FioMode::SeqRead => false,
            FioMode::RandWrite | FioMode::SeqWrite => true,
            FioMode::RandRw | FioMode::SeqRw => self.rng.chance(0.5),
        };
        (write, lba)
    }

    fn try_submit(&mut self, now: Ns) -> bool {
        if now >= self.stop_at {
            return false;
        }
        if let Some(interval) = self.rate_interval {
            if now < self.next_submit {
                return false;
            }
            self.next_submit = self.next_submit.max(now) + interval;
        }
        let Some(slot) = self.free_slots.pop() else {
            return false;
        };
        let (write, lba) = self.pick_op();
        let nlb = self.blocks_per_op() as u32;
        // Performance runs do not move data: PRPs point at a fixed dummy
        // page (the device is configured with move_data=false).
        let mut cmd = if write {
            SubmissionEntry::write(1, lba, nlb, 0x1000, 0)
        } else {
            SubmissionEntry::read(1, lba, nlb, 0x1000, 0)
        };
        cmd.cid = slot;
        if self.sq.push(cmd).is_err() {
            self.free_slots.push(slot);
            return false;
        }
        self.submit_time[slot as usize] = now;
        self.in_flight += 1;
        self.charged += self.cost.guest_submit;
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl Actor for FioJob {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        // Reap completions.
        while let Some(cqe) = self.cq.pop() {
            progressed = true;
            let slot = cqe.cid as usize;
            let lat = now.saturating_sub(self.submit_time[slot]);
            self.stats.latency.lock().unwrap().record(lat);
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            if cqe.status().is_error() {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            self.free_slots.push(cqe.cid);
            self.in_flight -= 1;
            self.charged += self.cost.guest_complete;
        }
        // Refill the queue (closed loop) or submit on schedule (open loop).
        while self.try_submit(now) {
            progressed = true;
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        // Open-loop mode self-schedules; closed loop is driven entirely by
        // completions cascading through the executor.
        match self.rate_interval {
            Some(_) if self.next_submit < self.stop_at => Some(self.next_submit),
            _ => None,
        }
    }

    fn charged(&self) -> Ns {
        self.charged
    }

    fn cpu_mode(&self) -> CpuMode {
        // The guest's fio is interrupt-driven (same in every solution);
        // its CPU is the per-I/O submit/complete work. Host-side agents
        // are what differentiate the solutions in Figs. 11-13.
        CpuMode::EventDriven
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmetro_nvme::{CqPair, SqPair};

    #[test]
    fn table2_has_the_papers_grid() {
        let configs = table2_configs();
        // 3 random modes x 3 + 3 seq modes x 4 + 128K: (2+1+2) x 2 = 31.
        assert_eq!(configs.len(), 9 + 12 + 10);
        assert!(configs
            .iter()
            .any(|c| c.label() == "bs=512B qd=128 jobs=4 RRW"));
        assert!(configs.iter().any(|c| c.label() == "bs=16K qd=1 jobs=4 SW"));
        assert!(configs
            .iter()
            .any(|c| c.label() == "bs=128K qd=128 jobs=1 SR"));
    }

    #[test]
    fn closed_loop_fills_queue_depth() {
        let (sq_p, sq_c) = SqPair::new(256);
        let (_cq_p, cq_c) = CqPair::new(256);
        let cfg = FioConfig::new(512, FioMode::RandRead, 8, 1);
        let (mut job, stats) =
            FioJob::new("job", cfg, CostModel::default(), sq_p, cq_c, 0, 1 << 20, 1);
        assert_eq!(job.poll(0), Progress::Busy);
        assert_eq!(stats.submitted.load(Ordering::Relaxed), 8);
        assert_eq!(sq_c.len(), 8);
        // Queue full: no more submissions.
        assert_eq!(job.poll(0), Progress::Idle);
    }

    #[test]
    fn completions_recycle_slots_and_record_latency() {
        let (sq_p, sq_c) = SqPair::new(64);
        let (cq_p, cq_c) = CqPair::new(64);
        let cfg = FioConfig::new(512, FioMode::RandWrite, 2, 1);
        let (mut job, stats) =
            FioJob::new("job", cfg, CostModel::default(), sq_p, cq_c, 0, 1 << 20, 2);
        job.poll(0);
        let (cmd, _) = sq_c.pop().unwrap();
        cq_p.push(nvmetro_nvme::CompletionEntry::new(
            cmd.cid,
            nvmetro_nvme::Status::SUCCESS,
        ))
        .unwrap();
        job.poll(50_000);
        assert_eq!(stats.completed.load(Ordering::Relaxed), 1);
        assert_eq!(stats.latency.lock().unwrap().median(), 50_000);
        // Slot reused: 3 submitted total.
        assert_eq!(stats.submitted.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn open_loop_spaces_submissions() {
        let (sq_p, _sq_c) = SqPair::new(256);
        let (_cq_p, cq_c) = CqPair::new(256);
        let mut cfg = FioConfig::new(512, FioMode::RandRead, 128, 1);
        cfg.rate_iops = Some(10_000); // 100us interarrival
        let (mut job, stats) =
            FioJob::new("job", cfg, CostModel::default(), sq_p, cq_c, 0, 1 << 20, 3);
        job.poll(0);
        assert_eq!(stats.submitted.load(Ordering::Relaxed), 1);
        assert_eq!(job.next_event(), Some(100_000));
        job.poll(100_000);
        assert_eq!(stats.submitted.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn sequential_mode_advances_cursor() {
        let (sq_p, sq_c) = SqPair::new(256);
        let (_cq_p, cq_c) = CqPair::new(256);
        let cfg = FioConfig::new(4096, FioMode::SeqRead, 4, 1);
        let (mut job, _) = FioJob::new(
            "job",
            cfg,
            CostModel::default(),
            sq_p,
            cq_c,
            1000,
            1 << 20,
            4,
        );
        job.poll(0);
        let lbas: Vec<u64> = std::iter::from_fn(|| sq_c.pop().map(|(c, _)| c.slba())).collect();
        assert_eq!(lbas, vec![1000, 1008, 1016, 1024]);
    }

    #[test]
    fn stops_submitting_after_duration() {
        let (sq_p, _sq_c) = SqPair::new(256);
        let (_cq_p, cq_c) = CqPair::new(256);
        let mut cfg = FioConfig::new(512, FioMode::RandRead, 4, 1);
        cfg.duration = 1_000;
        let (mut job, stats) =
            FioJob::new("job", cfg, CostModel::default(), sq_p, cq_c, 0, 1 << 20, 5);
        job.poll(2_000); // past the deadline
        assert_eq!(stats.submitted.load(Ordering::Relaxed), 0);
    }
}
