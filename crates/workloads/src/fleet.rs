//! The fleet rig: a thousands-of-VMs virtual-time consolidation run.
//!
//! One [`run_fleet`] call builds a complete rig — a sharded router with
//! the fleet scheduler and cross-VM read-coalescing window from
//! `nvmetro-fleet`, one single-queue-group VM per tenant (so 1024 tenants
//! means 1024 VM queue groups bound through the engine), one shared
//! simulated SSD, the insight stall watchdog, and optionally the
//! insight→governor feedback loop — then drives it with heavy-tailed
//! per-tenant load shaped by [`crate::arrivals`]:
//!
//! * tenant *rates* follow a Zipf(θ) split (a few whales, a long tail),
//! * each tenant's *arrivals* are bursty (bounded-Pareto gaps),
//! * a configurable fraction of reads lands on a small shared hot set
//!   (the common base-image blocks that make cross-VM coalescing pay),
//!   the rest on the tenant's private stripe.
//!
//! The run is open-loop with a per-tenant outstanding cap; after the
//! load deadline every in-flight request drains, so at the end
//! `completed == submitted` holds *iff* the datapath delivered exactly
//! one terminal completion per command. The report cross-checks that
//! guest-side invariant against insight's span reconstruction
//! (duplicate-terminal count, completed-span coverage) — the
//! exactly-once proof the coalescing fan-out must not break.

use crate::arrivals::{seeded_permutation, zipf_weights, HeavyTailArrivals};
use nvmetro_core::classify::Classifier;
use nvmetro_core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro_core::policy::EnginePolicy;
use nvmetro_core::{passthrough_program, Partition};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro_fleet::{
    CoalesceConfig, FeedbackConfig, FleetConfig, GovernorView, InsightFeedback, RateLimit,
    TenantGovernor,
};
use nvmetro_insight::{StallWatchdog, WatchdogConfig};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, Executor, Ns, Progress, SimRng, MS, SEC, US};
use nvmetro_stats::Histogram;
use nvmetro_telemetry::{Metric, Percentiles, Telemetry, TelemetryConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Blocks per read; hot-set reads are slot-aligned so identical
/// `(slba, nlb)` keys recur across tenants and coalesce.
const NLB: u32 = 8;

/// Knobs for one fleet run. `Default` is the full-scale rig: 1024
/// tenants (≥ 1000 VM queue groups), 4 shards, scheduler + coalescing +
/// feedback on, spans kept for the exactly-once check.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Tenant (VM) count; one queue group each.
    pub tenants: usize,
    /// Router shards.
    pub shards: usize,
    /// Load-generation window (virtual ns); in-flight requests drain
    /// past it.
    pub duration: Ns,
    /// Master seed (rig layout, per-tenant arrival streams, device).
    pub seed: u64,
    /// Aggregate offered arrival rate across all tenants (IOPS).
    pub total_iops: f64,
    /// Zipf skew of the per-tenant rate split.
    pub theta: f64,
    /// Per-tenant outstanding cap (arrivals past it are dropped, as an
    /// open-loop generator's queue would overflow).
    pub cap: usize,
    /// Slots in the shared hot set (each `NLB` blocks).
    pub hot_slots: u64,
    /// Probability a read targets the hot set instead of the tenant's
    /// private stripe.
    pub hot_fraction: f64,
    /// Enable the per-tenant DRR/token-bucket scheduler.
    pub fleet: bool,
    /// Per-tenant token-bucket rate; `None` = weights only, no pacing.
    pub rate_iops: Option<u64>,
    /// Enable the cross-VM read-coalescing window.
    pub coalesce: bool,
    /// Enable the insight→governor feedback loop.
    pub feedback: bool,
    /// Keep spans in the health log for the exactly-once check.
    pub keep_spans: bool,
    /// Device parallelism (concurrent flash operations). The default is
    /// generous so the router and scheduler shape the outcome; benches
    /// that want a device-bound rig (where coalescing buys throughput,
    /// not just occupancy) turn it down.
    pub device_channels: usize,
    /// Device flash read latency (ns).
    pub device_read_lat: Ns,
    /// Engine datapath policy (poll governor / batch tuning / placement).
    /// The default keeps the legacy always-spin engine so calibrated
    /// fleet figures are unchanged; a 1000-VM rig with mostly-idle
    /// tenants is exactly where `EnginePolicy::adaptive()` pays.
    pub policy: EnginePolicy,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            tenants: 1024,
            shards: 4,
            duration: 20 * MS,
            seed: 0xF1EE7,
            total_iops: 2_000_000.0,
            theta: 1.1,
            cap: 4,
            hot_slots: 64,
            hot_fraction: 0.5,
            fleet: true,
            rate_iops: None,
            coalesce: true,
            feedback: true,
            keep_spans: true,
            device_channels: 64,
            device_read_lat: 5_000,
            policy: EnginePolicy::new(),
        }
    }
}

/// What one [`run_fleet`] call produced.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Tenants in the run (== VM queue groups bound).
    pub tenants: usize,
    /// Reads submitted by all guests.
    pub submitted: u64,
    /// Completions popped by all guests.
    pub completed: u64,
    /// Completions that carried an error status.
    pub errors: u64,
    /// Guest-observed completion rate over the load window.
    pub iops: f64,
    /// Median guest latency (ns).
    pub p50_ns: u64,
    /// p99 guest latency (ns).
    pub p99_ns: u64,
    /// Commands the device actually served (`Metric::DeviceIos`).
    pub device_ios: u64,
    /// Duplicate reads parked as coalescing followers.
    pub coalesced: u64,
    /// Completions fanned out to followers.
    pub fanned_out: u64,
    /// Admissions denied by empty token buckets.
    pub throttled: u64,
    /// DRR deficit exhaustions.
    pub preemptions: u64,
    /// Per-tenant completions, indexed by tenant id.
    pub per_tenant_completed: Vec<u64>,
    /// Per-tenant offered-load weight, indexed by tenant id.
    pub per_tenant_weight: Vec<f64>,
    /// Governor state at the end of the run.
    pub governor: Vec<GovernorView>,
    /// Tighten/relax actions the feedback loop took.
    pub feedback_actions: usize,
    /// Spans the watchdog saw complete (0 when spans are off).
    pub span_completed: u64,
    /// Spans that received more than one terminal event — must be 0.
    pub duplicate_terminals: u64,
    /// Trace events lost to ring overflow (poisons span coverage).
    pub drain_missed: u64,
    /// The exactly-once verdict: every submitted command completed
    /// exactly once, confirmed by span reconstruction when available.
    pub exactly_once: bool,
}

impl FleetReport {
    /// Jain fairness index over per-tenant *weight-normalized* service:
    /// 1.0 means every tenant got throughput exactly proportional to its
    /// offered load; 1/n means one tenant got everything.
    pub fn jain_fairness(&self) -> f64 {
        let shares: Vec<f64> = self
            .per_tenant_completed
            .iter()
            .zip(&self.per_tenant_weight)
            .filter(|(_, w)| **w > 0.0)
            .map(|(c, w)| *c as f64 / w)
            .collect();
        let n = shares.len() as f64;
        let sum: f64 = shares.iter().sum();
        let sq: f64 = shares.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return 0.0;
        }
        sum * sum / (n * sq)
    }
}

/// Shared counters one tenant load exposes to the harness.
#[derive(Default)]
struct LoadStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<Histogram>,
}

/// Open-loop, capped, heavy-tailed read generator for one tenant.
struct TenantLoad {
    name: String,
    sq: SqProducer,
    cq: CqConsumer,
    arrivals: HeavyTailArrivals,
    rng: SimRng,
    deadline: Ns,
    done: bool,
    cap: usize,
    outstanding: usize,
    next_cid: u16,
    submit_ts: HashMap<u16, Ns>,
    hot_slots: u64,
    hot_fraction: f64,
    private_base: u64,
    private_slots: u64,
    stats: Arc<LoadStats>,
}

impl Actor for TenantLoad {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while let Some(cqe) = self.cq.pop() {
            self.outstanding -= 1;
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            if cqe.status().is_error() {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = self.submit_ts.remove(&cqe.cid) {
                self.stats.latency.lock().unwrap().record(now - t);
            }
            progressed = true;
        }
        if self.done {
            return if progressed {
                Progress::Busy
            } else {
                Progress::Idle
            };
        }
        while self.arrivals.next_at() <= now {
            if now >= self.deadline {
                self.done = true;
                break;
            }
            // An arrival past the cap is dropped, not queued: the
            // generator stays open-loop instead of turning into a
            // closed-loop backlog.
            if self.outstanding < self.cap {
                let slot = if self.rng.chance(self.hot_fraction) {
                    self.rng.below(self.hot_slots)
                } else {
                    self.private_base + self.rng.below(self.private_slots)
                };
                let mut cmd = SubmissionEntry::read(1, slot * NLB as u64, NLB, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_ok() {
                    self.submit_ts.insert(self.next_cid, now);
                    self.next_cid = self.next_cid.wrapping_add(1);
                    self.outstanding += 1;
                    self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                    progressed = true;
                }
            }
            self.arrivals.advance();
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        if self.done {
            None
        } else {
            Some(self.arrivals.next_at().min(self.deadline))
        }
    }
}

/// By default a device fast enough that the router and scheduler, not
/// the flash, shape the outcome — the same trick the sharding smoke
/// uses; [`FleetOptions::device_channels`] dials contention back in.
fn fleet_device_cost(opts: &FleetOptions) -> CostModel {
    CostModel {
        ssd_channels: opts.device_channels,
        ssd_read_lat: opts.device_read_lat,
        ssd_cmd_overhead: 150,
        ssd_cmd_overhead_write: 300,
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

/// Builds, runs, and tears down one fleet rig. See the module docs.
pub fn run_fleet(opts: &FleetOptions) -> FleetReport {
    assert!(opts.tenants > 0 && opts.shards > 0);
    let telemetry = Telemetry::with_config(TelemetryConfig {
        trace_capacity: 1 << 16,
    });
    let cost = fleet_device_cost(opts);
    let private_slots = 64u64;
    let capacity_lbas = (opts.hot_slots + opts.tenants as u64 * private_slots + 16) * NLB as u64;

    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas,
            cost: cost.clone(),
            move_data: false,
            seed: opts.seed ^ 0x55D,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker_named("ssd"));
    let mem = Arc::new(GuestMemory::new(1 << 20));

    // Zipf rate split, permuted so the whales land on seed-dependent ids.
    let mut layout_rng = SimRng::new(opts.seed);
    let ranks = seeded_permutation(opts.tenants, &mut layout_rng);
    let zipf = zipf_weights(opts.tenants, opts.theta);
    let weights: Vec<f64> = (0..opts.tenants).map(|t| zipf[ranks[t]]).collect();

    let governor = TenantGovernor::new();
    let mut ex = Executor::new();
    let mut builder = RouterBuilder::new("router")
        .cost(cost)
        .shards(opts.shards)
        .policy(opts.policy)
        .table_capacity(4096)
        .telemetry(&telemetry);
    if opts.fleet {
        let mut cfg = FleetConfig {
            governor: governor.clone(),
            ..Default::default()
        };
        if let Some(iops) = opts.rate_iops {
            cfg = cfg.default_rate(RateLimit::per_second(iops));
        }
        builder = builder.fleet(cfg);
    }
    if opts.coalesce {
        builder = builder.coalesce(CoalesceConfig::default());
    }

    let mut stats = Vec::with_capacity(opts.tenants);
    for (tenant, weight) in weights.iter().enumerate().take(opts.tenants) {
        let (vsq_p, vsq_c) = SqPair::new(256);
        let (vcq_p, vcq_c) = CqPair::new(256);
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        builder = builder.vm(EngineVm {
            vm_id: tenant as u32,
            mem: mem.clone(),
            // Every tenant sees the whole namespace: the hot set is a
            // shared read-only base image, which is what makes cross-VM
            // coalescing legal and profitable.
            partition: Partition::whole(capacity_lbas),
            queues: vec![QueueBinding {
                vsqs: vec![vsq_c],
                vcqs: vec![vcq_p],
                hsq: hsq_p,
                hcq: hcq_c,
                kernel: None,
                notify: None,
                classifier: Classifier::Bpf(passthrough_program()),
            }],
        });

        // Mean gap from this tenant's Zipf share of the aggregate rate,
        // clamped so tail tenants still send a few requests per run.
        let rate = (opts.total_iops * weight).max(50.0);
        let mean_gap = SEC as f64 / rate;
        let load = TenantLoad {
            name: format!("tenant-{tenant}"),
            sq: vsq_p,
            cq: vcq_c,
            arrivals: HeavyTailArrivals::new(
                opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tenant as u64 + 1)),
                mean_gap,
                1.5,
            ),
            rng: SimRng::new(opts.seed ^ (tenant as u64) << 17),
            deadline: opts.duration,
            done: false,
            cap: opts.cap,
            outstanding: 0,
            next_cid: 0,
            submit_ts: HashMap::new(),
            hot_slots: opts.hot_slots,
            hot_fraction: opts.hot_fraction,
            private_base: opts.hot_slots + tenant as u64 * private_slots,
            private_slots,
            stats: Arc::new(LoadStats::default()),
        };
        stats.push(load.stats.clone());
        ex.add(Box::new(load));
    }

    let engine = builder.build();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));

    let (watchdog, health) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: 200 * US,
            keep_spans: opts.keep_spans,
            ..Default::default()
        },
    );
    ex.add(Box::new(watchdog));

    let mut feedback_log = None;
    if opts.feedback {
        let (fb, log) =
            InsightFeedback::new(health.clone(), governor.clone(), FeedbackConfig::default());
        feedback_log = Some(log);
        ex.add(Box::new(fb));
    }

    let report = ex.run(u64::MAX);

    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut hist = Histogram::new();
    let mut per_tenant = Vec::with_capacity(opts.tenants);
    for s in &stats {
        let c = s.completed.load(Ordering::Relaxed);
        submitted += s.submitted.load(Ordering::Relaxed);
        completed += c;
        errors += s.errors.load(Ordering::Relaxed);
        per_tenant.push(c);
        hist.merge(&s.latency.lock().unwrap());
    }

    let snap = telemetry.snapshot();
    let span_stats = health.stats();
    let drain_missed = health.drain_missed();
    let spans_ok = !opts.keep_spans
        || (drain_missed == 0
            && span_stats.duplicate_terminals == 0
            && span_stats.spans_completed == completed);
    let pct = Percentiles::of(&hist);
    FleetReport {
        tenants: opts.tenants,
        submitted,
        completed,
        errors,
        iops: completed as f64 * SEC as f64 / report.duration.max(1) as f64,
        p50_ns: pct.p50,
        p99_ns: pct.p99,
        device_ios: snap.get(Metric::DeviceIos),
        coalesced: snap.get(Metric::CoalescedReads),
        fanned_out: snap.get(Metric::CoalesceFanout),
        throttled: snap.get(Metric::ThrottleApplied),
        preemptions: snap.get(Metric::SchedulerPreemptions),
        per_tenant_completed: per_tenant,
        per_tenant_weight: weights,
        governor: governor.snapshot(),
        feedback_actions: feedback_log.map_or(0, |l| l.actions().len()),
        span_completed: span_stats.spans_completed,
        duplicate_terminals: span_stats.duplicate_terminals,
        drain_missed,
        exactly_once: submitted == completed && spans_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small rig end-to-end: everything completes exactly once, the
    /// hot set actually coalesces, and the report's books balance.
    #[test]
    fn small_fleet_runs_to_completion_exactly_once() {
        let opts = FleetOptions {
            tenants: 32,
            shards: 2,
            duration: 5 * MS,
            total_iops: 400_000.0,
            ..Default::default()
        };
        let r = run_fleet(&opts);
        assert!(
            r.submitted > 1_000,
            "rig too idle: {} submitted",
            r.submitted
        );
        assert_eq!(r.completed, r.submitted);
        assert_eq!(r.errors, 0);
        assert!(r.exactly_once, "exactly-once violated: {r:?}");
        assert!(r.coalesced > 0, "hot-set duplicates should coalesce: {r:?}");
        assert_eq!(r.fanned_out, r.coalesced, "every follower must fan out");
        assert_eq!(
            r.device_ios + r.coalesced,
            r.completed,
            "each completion is either a device I/O or a fanned-out follower"
        );
        let jain = r.jain_fairness();
        assert!(jain > 0.0 && jain <= 1.0 + 1e-9, "jain {jain} out of range");
    }

    /// Coalescing off ⇒ no followers, and the device serves every read.
    #[test]
    fn coalescing_off_means_no_followers() {
        let opts = FleetOptions {
            tenants: 16,
            shards: 1,
            duration: 2 * MS,
            total_iops: 200_000.0,
            coalesce: false,
            feedback: false,
            ..Default::default()
        };
        let r = run_fleet(&opts);
        assert_eq!(r.coalesced, 0);
        assert_eq!(r.fanned_out, 0);
        assert_eq!(r.device_ios, r.completed);
        assert!(r.exactly_once, "exactly-once violated: {r:?}");
    }
}
