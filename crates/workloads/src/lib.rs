//! Workload engines and solution assembly for the NVMetro evaluation.
//!
//! * [`fio`] — an fio-style I/O engine: block sizes, random/sequential
//!   read/write/mixed modes, queue depths, parallel jobs, open-loop
//!   fixed-rate submission for latency runs, HDR-style latency recording
//!   (the paper's §V-A fio methodology, Table II).
//! * [`rig`] — builds a complete virtual-time rig for any solution (the
//!   six basic stacks plus the encryption/replication variants): device,
//!   stack actors, and per-job guest queue endpoints.
//! * [`runner`] — one-call experiment execution: `run_fio(kind, cfg)`
//!   returns IOPS, median/p99 latency and CPU consumption.
//! * [`ycsb`] — the YCSB workload suite: Zipfian/latest generators,
//!   workloads A–F, a *functional* driver over `lsmkv`, and a calibrated
//!   LSM I/O model for virtual-time database runs (Figs. 6, 8, 10).

pub mod arrivals;
pub mod fio;
pub mod fleet;
pub mod rig;
pub mod runner;
pub mod ycsb;

pub use arrivals::{seeded_permutation, zipf_weights, HeavyTailArrivals, Pareto};
pub use fio::{FioConfig, FioJob, FioMode, JobStats};
pub use fleet::{run_fleet, FleetOptions, FleetReport};
pub use rig::{RigOptions, SolutionKind};
pub use runner::{run_fio, FioResult};
pub use ycsb::{YcsbSpec, YcsbWorkload, ZipfianGenerator};
