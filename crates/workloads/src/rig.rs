//! Solution assembly: builds a complete virtual-time rig for any stack.

use crate::fio::{FioConfig, FioJob, JobStats};
use nvmetro_baselines::mdev::MdevTranslate;
use nvmetro_baselines::{bind_passthrough, build_mdev_router, QemuVirtioBlk, SpdkVhost, VhostScsi};
use nvmetro_core::classify::Classifier;
use nvmetro_core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro_core::policy::EnginePolicy;
use nvmetro_core::recovery::RecoveryConfig;
use nvmetro_core::router::{NotifyBinding, VmBinding};
use nvmetro_core::uif::UifRunner;
use nvmetro_core::{offset_program, Partition, VirtualController, VmConfig};
use nvmetro_device::{CompletionMode, SimSsd, SsdConfig, Transport};
use nvmetro_faults::FaultPlan;
use nvmetro_functions::{
    build_encryptor_classifier, build_replicator_classifier, CryptoBackend, EncryptorUif,
    ReplicatorUif,
};
use nvmetro_kernel::{DmConfig, KernelDm};
use nvmetro_mem::GuestMemory;
use nvmetro_nvme::{CqPair, SqPair};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Executor, Ns, Progress};
use nvmetro_telemetry::Telemetry;
use std::sync::Arc;

/// Which storage-virtualization solution to build (§V-B/C/D comparators).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolutionKind {
    /// NVMetro with the dummy (passthrough) vbpf classifier.
    Nvmetro,
    /// MDev-NVMe mediated pass-through.
    Mdev,
    /// Direct PCIe passthrough.
    Passthrough,
    /// In-kernel vhost-scsi.
    Vhost,
    /// QEMU virtio-blk with io_uring.
    Qemu,
    /// SPDK vhost-user.
    Spdk,
    /// NVMetro encryption function (optionally the SGX variant).
    NvmetroEncrypt {
        /// Keep the key in the (simulated) SGX enclave.
        sgx: bool,
    },
    /// dm-crypt under vhost-scsi.
    DmCrypt,
    /// NVMetro replication to a remote NVMe-oF secondary.
    NvmetroReplicate,
    /// dm-mirror under vhost-scsi (remote secondary leg).
    DmMirror,
}

impl SolutionKind {
    /// Display name used in tables (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            SolutionKind::Nvmetro => "NVMetro",
            SolutionKind::Mdev => "MDev",
            SolutionKind::Passthrough => "Passthrough",
            SolutionKind::Vhost => "Vhost",
            SolutionKind::Qemu => "QEMU",
            SolutionKind::Spdk => "SPDK",
            SolutionKind::NvmetroEncrypt { sgx: false } => "NVMetro Encr.",
            SolutionKind::NvmetroEncrypt { sgx: true } => "NVMetro SGX",
            SolutionKind::DmCrypt => "dm-crypt",
            SolutionKind::NvmetroReplicate => "NVMetro Repl.",
            SolutionKind::DmMirror => "dm-mirror",
        }
    }

    /// The six basic-evaluation solutions (Figs. 3, 4, 6, 11).
    pub fn basic_six() -> [SolutionKind; 6] {
        [
            SolutionKind::Nvmetro,
            SolutionKind::Mdev,
            SolutionKind::Passthrough,
            SolutionKind::Vhost,
            SolutionKind::Qemu,
            SolutionKind::Spdk,
        ]
    }
}

/// Rig-wide options.
#[derive(Clone, Debug)]
pub struct RigOptions {
    /// Calibrated cost model.
    pub cost: CostModel,
    /// Number of VMs (Fig. 5 scalability uses several; everything else 1).
    pub vms: usize,
    /// Device capacity in LBAs (partitioned across VMs).
    pub capacity_lbas: u64,
    /// RNG seed.
    pub seed: u64,
    /// Telemetry registry; disabled by default. When enabled, every actor
    /// built here registers a worker shard and the rig's routers, devices,
    /// kernel paths, and UIFs emit lifecycle events into it.
    pub telemetry: Telemetry,
    /// Seeded fault plan handed to the primary device (and consulted by
    /// any other site the plan names). Empty by default.
    pub fault_plan: FaultPlan,
    /// Router recovery engine configuration; `None` (default) leaves the
    /// router surfacing faults to the guest verbatim.
    pub recovery: Option<RecoveryConfig>,
    /// Router shard count. With more than one shard, router-based rigs
    /// give each VM one queue group per queue pair and the builder spreads
    /// the groups round-robin across shards; `1` (default) reproduces the
    /// single-router wiring used by the calibrated figures.
    pub shards: usize,
    /// Engine datapath policy: poll governor, batch sizing, placement,
    /// workers. The default (`EnginePolicy::new()`) is the legacy
    /// always-spin / fixed-batch / round-robin engine; pass
    /// `EnginePolicy::adaptive()` for the self-tuning datapath.
    pub policy: EnginePolicy,
}

impl Default for RigOptions {
    fn default() -> Self {
        RigOptions {
            cost: CostModel::default(),
            vms: 1,
            capacity_lbas: 1 << 24, // 8 GiB span: enough spread, fast sim
            seed: 42,
            telemetry: Telemetry::disabled(),
            fault_plan: FaultPlan::none(),
            recovery: None,
            shards: 1,
            policy: EnginePolicy::new(),
        }
    }
}

/// A fully-wired virtual-time rig ready to run.
pub struct BuiltRig {
    /// The executor owning every actor.
    pub ex: Executor,
    /// Per-job result handles (jobs x VMs).
    pub jobs: Vec<Arc<JobStats>>,
}

/// An actor representing a dedicated thread that spins without doing work
/// accounted elsewhere (SGX switchless worker, extra SPDK reactors).
pub struct IdleBurner {
    name: String,
}

impl IdleBurner {
    /// Creates a burner with a display name.
    pub fn new(name: &str) -> Self {
        IdleBurner {
            name: name.to_string(),
        }
    }
}

impl Actor for IdleBurner {
    fn name(&self) -> &str {
        &self.name
    }
    fn poll(&mut self, _now: Ns) -> Progress {
        Progress::Idle
    }
    fn next_event(&self) -> Option<Ns> {
        None
    }
    fn cpu_mode(&self) -> CpuMode {
        CpuMode::BusyPoll
    }
}

fn ring_depth(qd: u32) -> usize {
    ((qd as usize * 2).next_power_of_two()).max(64)
}

/// Builds the complete rig for `kind` under the given fio config.
pub fn build_fio_rig(kind: SolutionKind, cfg: &FioConfig, opts: &RigOptions) -> BuiltRig {
    let mut jobs: Vec<Arc<JobStats>> = Vec::new();
    let cfg2 = cfg.clone();
    let cost2 = opts.cost.clone();
    let seed = opts.seed;
    let ex = build_rig(
        kind,
        opts,
        cfg.jobs,
        cfg.qd,
        |vm, j, gsq, gcq, partition| {
            let job_lbas = (partition.lba_count / cfg2.jobs as u64).max(1);
            let (job, stats) = FioJob::new(
                &format!("fio-vm{vm}-j{j}"),
                cfg2.clone(),
                cost2.clone(),
                gsq,
                gcq,
                j as u64 * job_lbas,
                job_lbas,
                seed ^ ((vm as u64) << 32) ^ j as u64,
            );
            jobs.push(stats);
            Box::new(job)
        },
    );
    BuiltRig { ex, jobs }
}

/// Builds the rig for `kind` with caller-supplied job actors: one job per
/// queue pair per VM, created by `make_job(vm, job, guest_sq, guest_cq,
/// partition)`. Used by both the fio and YCSB harnesses.
pub fn build_rig<F>(
    kind: SolutionKind,
    opts: &RigOptions,
    queue_pairs: usize,
    qd: u32,
    mut make_job: F,
) -> Executor
where
    F: FnMut(
        usize,
        usize,
        nvmetro_nvme::SqProducer,
        nvmetro_nvme::CqConsumer,
        Partition,
    ) -> Box<dyn Actor>,
{
    let cost = opts.cost.clone();
    let telemetry = opts.telemetry.clone();
    let mut ex = Executor::new();

    // The physical device (data movement off: perf runs model costs only).
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: opts.capacity_lbas,
            cost: cost.clone(),
            move_data: false,
            seed: opts.seed,
            transport: None,
            faults: opts.fault_plan.clone(),
        },
    );
    ssd.attach_telemetry(telemetry.register_worker_named("ssd"));

    // Remote secondary for the replication solutions.
    let needs_remote = matches!(
        kind,
        SolutionKind::NvmetroReplicate | SolutionKind::DmMirror
    );
    let mut remote = needs_remote.then(|| {
        SimSsd::new(
            "remote-ssd",
            SsdConfig {
                capacity_lbas: opts.capacity_lbas,
                cost: cost.clone(),
                move_data: false,
                seed: opts.seed ^ 0xABCD,
                transport: Some(Transport {
                    one_way: cost.nvmeof_one_way,
                    per_byte: cost.nvmeof_per_byte,
                }),
                // Replica-leg outages are injected at the replicator UIF
                // (`FaultSite::ReplicaLink`); the remote drive itself
                // stays clean so resync has somewhere to land.
                faults: FaultPlan::none(),
            },
        )
    });
    if let Some(remote) = remote.as_mut() {
        remote.attach_telemetry(telemetry.register_worker_named("remote-ssd"));
    }

    let part_lbas = opts.capacity_lbas / opts.vms as u64;
    let depth = ring_depth(qd);

    // Router-based solutions share the router shards across all VMs; the
    // table capacity is per shard, sized for the whole rig so a single
    // shard can absorb every queue group.
    let shards = opts.shards.max(1);
    let table_capacity = (opts.vms * queue_pairs * qd as usize * 2 + 64).min(60_000);
    let mut builder: Option<RouterBuilder> = match kind {
        SolutionKind::Nvmetro
        | SolutionKind::NvmetroEncrypt { .. }
        | SolutionKind::NvmetroReplicate => Some(RouterBuilder::new("router").cost(cost.clone())),
        SolutionKind::Mdev => Some(build_mdev_router(&cost)),
        _ => None,
    };
    builder = builder.map(|b| {
        let mut b = b
            .shards(shards)
            .policy(opts.policy)
            .table_capacity(table_capacity)
            .telemetry(&telemetry);
        if let Some(recovery) = opts.recovery {
            b = b.recovery(recovery);
        }
        b
    });

    for vm in 0..opts.vms {
        let partition = Partition {
            lba_offset: vm as u64 * part_lbas,
            lba_count: part_lbas,
        };
        let mut vc = VirtualController::new(VmConfig {
            id: vm as u32,
            mem_bytes: 1 << 24,
            queue_pairs,
            queue_depth: depth,
            partition,
        });
        let mem = vc.memory();

        // Jobs: one per queue pair.
        for j in 0..queue_pairs {
            let (gsq, gcq) = vc.take_guest_queue(j);
            ex.add(make_job(vm, j, gsq, gcq, partition));
        }

        match kind {
            SolutionKind::Passthrough => {
                // No partition translation: passthrough owns the device
                // (give each VM its own namespace slice by mapping queue
                // regions; with one VM this is the whole disk).
                bind_passthrough(&mut ssd, &mut vc);
            }
            SolutionKind::Nvmetro | SolutionKind::Mdev => {
                let (vsqs, vcqs) = vc.take_router_queues();
                let make_classifier = |kind: SolutionKind| {
                    if kind == SolutionKind::Mdev {
                        Classifier::Native(Box::new(MdevTranslate {
                            lba_offset: partition.lba_offset,
                        }))
                    } else {
                        Classifier::Bpf(offset_program(partition.lba_offset))
                    }
                };
                let mut queues = Vec::new();
                if shards > 1 {
                    // One queue group per VSQ/VCQ pair: each gets its own
                    // host queue on the device and its own classifier, so
                    // the builder can spread the pairs across shards.
                    for (vsq, vcq) in vsqs.into_iter().zip(vcqs) {
                        let (hsq_p, hsq_c) = SqPair::new(4096);
                        let (hcq_p, hcq_c) = CqPair::new(4096);
                        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
                        queues.push(QueueBinding {
                            vsqs: vec![vsq],
                            vcqs: vec![vcq],
                            hsq: hsq_p,
                            hcq: hcq_c,
                            kernel: None,
                            notify: None,
                            classifier: make_classifier(kind),
                        });
                    }
                } else {
                    let (hsq_p, hsq_c) = SqPair::new(4096);
                    let (hcq_p, hcq_c) = CqPair::new(4096);
                    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
                    queues.push(QueueBinding {
                        vsqs,
                        vcqs,
                        hsq: hsq_p,
                        hcq: hcq_c,
                        kernel: None,
                        notify: None,
                        classifier: make_classifier(kind),
                    });
                }
                builder = Some(builder.take().unwrap().vm(EngineVm {
                    vm_id: vm as u32,
                    mem: mem.clone(),
                    partition,
                    queues,
                }));
            }
            SolutionKind::NvmetroEncrypt { sgx } => {
                let (vsqs, vcqs) = vc.take_router_queues();
                let (hsq_p, hsq_c) = SqPair::new(4096);
                let (hcq_p, hcq_c) = CqPair::new(4096);
                ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
                let (nsq_p, nsq_c) = SqPair::new(4096);
                let (ncq_p, ncq_c) = CqPair::new(4096);
                let (bsq_p, bsq_c) = SqPair::new(4096);
                let (bcq_p, bcq_c) = CqPair::new(4096);
                let host_mem = Arc::new(GuestMemory::new(1 << 24));
                ssd.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);
                let workers = if sgx { 1 } else { cost.uif_crypto_threads };
                let mut runner = UifRunner::new(
                    &format!("uif-encrypt-vm{vm}"),
                    cost.clone(),
                    nsq_c,
                    ncq_p,
                    mem.clone(),
                    (bsq_p, bcq_c),
                    host_mem,
                    Box::new(
                        EncryptorUif::new(CryptoBackend::ModelOnly { sgx }, partition.lba_offset)
                            .with_telemetry(
                                telemetry.register_worker_named(&format!("encryptor-vm{vm}")),
                            ),
                    ),
                    workers,
                    false,
                );
                runner.attach_telemetry(telemetry.register_worker_named(&format!("uif-vm{vm}")));
                ex.add(Box::new(runner));
                // The SGX switchless thread parks when no calls are
                // pending; its steady-state CPU is inside the runner's
                // adaptive accounting.
                builder = Some(builder.take().unwrap().vm(VmBinding {
                    vm_id: vm as u32,
                    mem: mem.clone(),
                    partition,
                    vsqs,
                    vcqs,
                    hsq: hsq_p,
                    hcq: hcq_c,
                    kernel: None,
                    notify: Some(NotifyBinding {
                        nsq: nsq_p,
                        ncq: ncq_c,
                    }),
                    classifier: Classifier::Bpf(build_encryptor_classifier(partition.lba_offset)),
                }));
            }
            SolutionKind::NvmetroReplicate => {
                let (vsqs, vcqs) = vc.take_router_queues();
                let (hsq_p, hsq_c) = SqPair::new(4096);
                let (hcq_p, hcq_c) = CqPair::new(4096);
                ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
                let (nsq_p, nsq_c) = SqPair::new(4096);
                let (ncq_p, ncq_c) = CqPair::new(4096);
                let (bsq_p, bsq_c) = SqPair::new(4096);
                let (bcq_p, bcq_c) = CqPair::new(4096);
                let host_mem = Arc::new(GuestMemory::new(1 << 24));
                remote.as_mut().unwrap().add_queue(
                    bsq_c,
                    bcq_p,
                    host_mem.clone(),
                    CompletionMode::Polled,
                );
                let mut runner = UifRunner::new(
                    &format!("uif-replicate-vm{vm}"),
                    cost.clone(),
                    nsq_c,
                    ncq_p,
                    mem.clone(),
                    (bsq_p, bcq_c),
                    host_mem,
                    Box::new(
                        ReplicatorUif::new()
                            .with_telemetry(
                                telemetry.register_worker_named(&format!("replicator-vm{vm}")),
                            )
                            .with_faults(&opts.fault_plan),
                    ),
                    1,
                    false,
                );
                runner.attach_telemetry(telemetry.register_worker_named(&format!("uif-vm{vm}")));
                ex.add(Box::new(runner));
                builder = Some(builder.take().unwrap().vm(VmBinding {
                    vm_id: vm as u32,
                    mem: mem.clone(),
                    partition,
                    vsqs,
                    vcqs,
                    hsq: hsq_p,
                    hcq: hcq_c,
                    kernel: None,
                    notify: Some(NotifyBinding {
                        nsq: nsq_p,
                        ncq: ncq_c,
                    }),
                    classifier: Classifier::Bpf(build_replicator_classifier(partition.lba_offset)),
                }));
            }
            SolutionKind::Vhost | SolutionKind::DmCrypt | SolutionKind::DmMirror => {
                let (vsqs, vcqs) = vc.take_router_queues();
                let (dsq_p, dsq_c) = SqPair::new(4096);
                let (dcq_p, dcq_c) = CqPair::new(4096);
                ssd.add_queue(dsq_c, dcq_p, mem.clone(), CompletionMode::Interrupt);
                let mut ports = vec![(dsq_p, dcq_c)];
                let dm_config = match kind {
                    SolutionKind::DmCrypt => DmConfig::Crypt {
                        offset: partition.lba_offset,
                        key: None,
                    },
                    SolutionKind::DmMirror => {
                        let (rsq_p, rsq_c) = SqPair::new(4096);
                        let (rcq_p, rcq_c) = CqPair::new(4096);
                        remote.as_mut().unwrap().add_queue(
                            rsq_c,
                            rcq_p,
                            mem.clone(),
                            CompletionMode::Interrupt,
                        );
                        ports.push((rsq_p, rcq_c));
                        DmConfig::Mirror {
                            offset: partition.lba_offset,
                        }
                    }
                    _ => DmConfig::Linear {
                        offset: partition.lba_offset,
                    },
                };
                let dm = KernelDm::new(cost.clone(), dm_config, ports, mem.clone());
                ex.add(Box::new(VhostScsi::new(
                    &format!("vhost-vm{vm}"),
                    cost.clone(),
                    vsqs,
                    vcqs,
                    dm,
                )));
            }
            SolutionKind::Qemu => {
                let (vsqs, vcqs) = vc.take_router_queues();
                let (dsq_p, dsq_c) = SqPair::new(4096);
                let (dcq_p, dcq_c) = CqPair::new(4096);
                ssd.add_queue(dsq_c, dcq_p, mem.clone(), CompletionMode::Polled);
                ex.add(Box::new(QemuVirtioBlk::new(
                    &format!("qemu-vm{vm}"),
                    cost.clone(),
                    vsqs,
                    vcqs,
                    dsq_p,
                    dcq_c,
                    partition.lba_offset,
                    true,
                )));
            }
            SolutionKind::Spdk => {
                let (vsqs, vcqs) = vc.take_router_queues();
                let (dsq_p, dsq_c) = SqPair::new(4096);
                let (dcq_p, dcq_c) = CqPair::new(4096);
                ssd.add_queue(dsq_c, dcq_p, mem.clone(), CompletionMode::Polled);
                ex.add(Box::new(SpdkVhost::new(
                    &format!("spdk-vm{vm}"),
                    cost.clone(),
                    vsqs,
                    vcqs,
                    dsq_p,
                    dcq_c,
                    partition.lba_offset,
                )));
                for r in 1..cost.spdk_reactors {
                    ex.add(Box::new(IdleBurner::new(&format!("spdk-reactor-{r}"))));
                }
            }
        }
    }

    if let Some(builder) = builder {
        builder.build().run_virtual(&mut ex);
    }
    ex.add(Box::new(ssd));
    if let Some(remote) = remote {
        ex.add(Box::new(remote));
    }

    ex
}
