//! One-call experiment execution.

use crate::fio::FioConfig;
use crate::rig::{build_fio_rig, RigOptions, SolutionKind};
use nvmetro_sim::{Ns, SEC};
use nvmetro_stats::Histogram;
use nvmetro_telemetry::Percentiles;

/// Results of one fio run.
#[derive(Clone, Debug)]
pub struct FioResult {
    /// Aggregate I/O per second across jobs.
    pub iops: f64,
    /// Median completion latency (ns).
    pub median_ns: u64,
    /// 99th-percentile completion latency (ns).
    pub p99_ns: u64,
    /// Total CPU consumed (ns summed over all actors).
    pub cpu_ns: Ns,
    /// Average busy cores over the run.
    pub cpu_cores: f64,
    /// Virtual run duration (ns).
    pub duration: Ns,
    /// Completions with error status (must be 0 in healthy runs).
    pub errors: u64,
    /// Total I/Os completed.
    pub completed: u64,
}

impl FioResult {
    /// Kilo-IOPS, as plotted in Figs. 3, 5, 7, 9.
    pub fn kiops(&self) -> f64 {
        self.iops / 1_000.0
    }

    /// Throughput in MB/s for the given block size.
    pub fn mbps(&self, bs: usize) -> f64 {
        self.iops * bs as f64 / 1e6
    }

    /// CPU seconds consumed per second of runtime (Figs. 11-13 unit,
    /// normalized by duration).
    pub fn cpu_secs_per_sec(&self) -> f64 {
        self.cpu_cores
    }
}

/// Builds the rig for `kind`, runs the configured workload to completion,
/// and aggregates job statistics.
pub fn run_fio(kind: SolutionKind, cfg: &FioConfig, opts: &RigOptions) -> FioResult {
    let mut rig = build_fio_rig(kind, cfg, opts);
    // Jobs stop submitting at cfg.duration; let in-flight I/O drain.
    let report = rig.ex.run(u64::MAX);
    let mut hist = Histogram::new();
    let mut completed = 0u64;
    let mut errors = 0u64;
    for job in &rig.jobs {
        hist.merge(&job.latency.lock().unwrap());
        completed += job.completed.load(std::sync::atomic::Ordering::Relaxed);
        errors += job.errors.load(std::sync::atomic::Ordering::Relaxed);
    }
    let duration = report.duration.max(1);
    // Rate over the FULL run including the drain tail — otherwise deeply
    // backlogged stacks (e.g. dm-crypt's serialized pipeline at QD128)
    // would be credited their queued-up completions against the short
    // submission window, inflating their throughput.
    let window = duration;
    let lat = Percentiles::of(&hist);
    FioResult {
        iops: completed as f64 * SEC as f64 / window as f64,
        median_ns: lat.p50,
        p99_ns: lat.p99,
        cpu_ns: report.total_cpu(),
        cpu_cores: report.cpu_cores(),
        duration,
        errors,
        completed,
    }
}

/// Shard-scaling scenario: runs `cfg` once per shard count with everything
/// else held fixed, returning `(shards, result)` rows. Only meaningful for
/// the router-based kinds (`Nvmetro`, `Mdev`, the storage functions); other
/// kinds ignore the shard knob.
pub fn shard_sweep(
    kind: SolutionKind,
    cfg: &FioConfig,
    opts: &RigOptions,
    shard_counts: &[usize],
) -> Vec<(usize, FioResult)> {
    shard_counts
        .iter()
        .map(|&shards| {
            let mut o = opts.clone();
            o.shards = shards;
            (shards, run_fio(kind, cfg, &o))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fio::FioMode;
    use nvmetro_sim::MS;

    fn quick(bs: usize, mode: FioMode, qd: u32, jobs: usize) -> FioConfig {
        let mut cfg = FioConfig::new(bs, mode, qd, jobs);
        cfg.duration = 30 * MS;
        cfg
    }

    #[test]
    fn all_solutions_complete_io_without_errors() {
        for kind in SolutionKind::basic_six() {
            let r = run_fio(
                kind,
                &quick(4096, FioMode::RandRead, 8, 1),
                &RigOptions::default(),
            );
            assert_eq!(r.errors, 0, "{:?} produced errors", kind);
            assert!(
                r.completed > 50,
                "{:?} completed only {}",
                kind,
                r.completed
            );
            assert!(r.median_ns > 0);
        }
    }

    #[test]
    fn storage_functions_complete_io_without_errors() {
        for kind in [
            SolutionKind::NvmetroEncrypt { sgx: false },
            SolutionKind::NvmetroEncrypt { sgx: true },
            SolutionKind::DmCrypt,
            SolutionKind::NvmetroReplicate,
            SolutionKind::DmMirror,
        ] {
            let r = run_fio(
                kind,
                &quick(4096, FioMode::RandRw, 8, 1),
                &RigOptions::default(),
            );
            assert_eq!(r.errors, 0, "{:?} produced errors", kind);
            assert!(
                r.completed > 50,
                "{:?} completed only {}",
                kind,
                r.completed
            );
        }
    }

    #[test]
    fn polling_solutions_beat_qemu_at_qd1_random_read() {
        let cfg = quick(512, FioMode::RandRead, 1, 1);
        let opts = RigOptions::default();
        let nvmetro = run_fio(SolutionKind::Nvmetro, &cfg, &opts);
        let qemu = run_fio(SolutionKind::Qemu, &cfg, &opts);
        assert!(
            nvmetro.iops > qemu.iops * 1.8,
            "NVMetro {} vs QEMU {} (paper: 2.7x)",
            nvmetro.iops,
            qemu.iops
        );
    }

    #[test]
    fn higher_queue_depth_increases_throughput() {
        let opts = RigOptions::default();
        let qd1 = run_fio(
            SolutionKind::Nvmetro,
            &quick(512, FioMode::RandRead, 1, 1),
            &opts,
        );
        let qd128 = run_fio(
            SolutionKind::Nvmetro,
            &quick(512, FioMode::RandRead, 128, 1),
            &opts,
        );
        assert!(
            qd128.iops > qd1.iops * 5.0,
            "QD128 {} should be several x QD1 {}",
            qd128.iops,
            qd1.iops
        );
    }

    #[test]
    fn vhost_latency_exceeds_polling_paths() {
        let mut cfg = quick(512, FioMode::RandRead, 1, 1);
        cfg.rate_iops = Some(10_000);
        cfg.duration = 50 * MS;
        let opts = RigOptions::default();
        let nvmetro = run_fio(SolutionKind::Nvmetro, &cfg, &opts);
        let vhost = run_fio(SolutionKind::Vhost, &cfg, &opts);
        assert!(
            vhost.median_ns as f64 > nvmetro.median_ns as f64 * 1.4,
            "vhost {} vs NVMetro {} (paper: +73.6%)",
            vhost.median_ns,
            nvmetro.median_ns
        );
    }

    #[test]
    fn sharded_rig_completes_io_without_errors() {
        // Four queue pairs over four shards: every pair must keep flowing
        // and the sweep helper must carry the shard counts through.
        let cfg = quick(4096, FioMode::RandRead, 8, 4);
        let rows = shard_sweep(SolutionKind::Nvmetro, &cfg, &RigOptions::default(), &[1, 4]);
        assert_eq!(rows.len(), 2);
        for (shards, r) in &rows {
            assert_eq!(r.errors, 0, "{shards} shards produced errors");
            assert!(
                r.completed > 50,
                "{shards} shards completed only {}",
                r.completed
            );
        }
    }

    #[test]
    fn multi_vm_rig_scales_out() {
        let opts = RigOptions {
            vms: 4,
            ..Default::default()
        };
        // QD1 so a single VM is far from device saturation.
        let cfg = quick(512, FioMode::RandRead, 1, 1);
        let r = run_fio(SolutionKind::Nvmetro, &cfg, &opts);
        assert_eq!(r.errors, 0);
        let single = run_fio(SolutionKind::Nvmetro, &cfg, &RigOptions::default());
        assert!(
            r.iops > single.iops * 2.5,
            "4 VMs {} should out-throughput 1 VM {}",
            r.iops,
            single.iops
        );
    }
}
