//! The YCSB benchmark suite (§V-A: six built-in workloads over RocksDB).
//!
//! Two consumers share the workload definitions:
//!
//! * [`run_real`] drives an actual [`lsmkv::LsmKv`] store — used by
//!   functional tests and the `kv_store` example;
//! * [`run_ycsb`] runs the virtual-time database model over any
//!   [`SolutionKind`] stack: each operation becomes the I/O sequence an
//!   LSM tree issues for it (WAL appends, bloom-filtered table reads,
//!   amortized flush/compaction bursts) plus client/db think time, executed
//!   synchronously per job like a YCSB client thread.

use crate::rig::{build_rig, RigOptions, SolutionKind};
use lsmkv::{LsmKv, Storage};
use nvmetro_nvme::{CqConsumer, SqProducer, SubmissionEntry, LBA_SIZE};
use nvmetro_sim::cost::CostModel;
use nvmetro_sim::{Actor, CpuMode, Ns, Progress, SimRng, SEC, US};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The six standard workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// 50% read / 50% update, zipfian.
    A,
    /// 95% read / 5% update, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 95% read / 5% insert, latest distribution.
    D,
    /// 95% scan / 5% insert, zipfian.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
}

impl YcsbWorkload {
    /// All six, in order.
    pub fn all() -> [YcsbWorkload; 6] {
        [
            YcsbWorkload::A,
            YcsbWorkload::B,
            YcsbWorkload::C,
            YcsbWorkload::D,
            YcsbWorkload::E,
            YcsbWorkload::F,
        ]
    }

    /// Letter label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }

    /// Operation mix.
    pub fn spec(self) -> YcsbSpec {
        match self {
            YcsbWorkload::A => YcsbSpec {
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                latest: false,
            },
            YcsbWorkload::B => YcsbSpec {
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                latest: false,
            },
            YcsbWorkload::C => YcsbSpec {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                latest: false,
            },
            YcsbWorkload::D => YcsbSpec {
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                scan: 0.0,
                rmw: 0.0,
                latest: true,
            },
            YcsbWorkload::E => YcsbSpec {
                read: 0.0,
                update: 0.0,
                insert: 0.05,
                scan: 0.95,
                rmw: 0.0,
                latest: false,
            },
            YcsbWorkload::F => YcsbSpec {
                read: 0.5,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.5,
                latest: false,
            },
        }
    }
}

/// Operation-mix proportions.
#[derive(Clone, Copy, Debug)]
pub struct YcsbSpec {
    /// Point-read fraction.
    pub read: f64,
    /// Update fraction.
    pub update: f64,
    /// Insert fraction.
    pub insert: f64,
    /// Scan fraction.
    pub scan: f64,
    /// Read-modify-write fraction.
    pub rmw: f64,
    /// Use the "latest" distribution instead of zipfian.
    pub latest: bool,
}

/// The YCSB scrambled-zipfian generator (Gray et al. / YCSB's
/// `ZipfianGenerator` with FNV scrambling).
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianGenerator {
    /// Builds a generator over `[0, n)` with the standard constant 0.99.
    pub fn new(n: u64) -> Self {
        let theta = 0.99;
        let zeta = |count: u64| -> f64 { (1..=count).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        // Exact zeta for small n; sampled approximation for large n keeps
        // construction O(100k) while staying within ~1% of exact.
        let zetan = if n <= 1_000_000 {
            zeta(n)
        } else {
            let base = zeta(1_000_000);
            // zeta(n) ~ zeta(m) + integral m..n of x^-theta
            let (m, nn) = (1_000_000f64, n as f64);
            base + (nn.powf(1.0 - theta) - m.powf(1.0 - theta)) / (1.0 - theta)
        };
        let zeta2theta = zeta(2);
        ZipfianGenerator {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            zeta2theta,
        }
    }

    /// Draws the next item in `[0, n)` (most popular = densest).
    pub fn next(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return self.scramble(0);
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return self.scramble(1);
        }
        let raw = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        self.scramble(raw.min(self.n - 1))
    }

    /// Spreads hot items across the key space (YCSB's scrambled zipfian).
    fn scramble(&self, v: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h % self.n
    }

    /// Debug view of the normalization constant.
    pub fn zetan(&self) -> f64 {
        self.zetan
    }

    /// Debug view of zeta(2, theta).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// One YCSB operation against a real store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbOp {
    /// Point read.
    Read,
    /// Overwrite an existing record.
    Update,
    /// Insert a new record.
    Insert,
    /// Short range scan.
    Scan,
    /// Read-modify-write.
    Rmw,
}

/// Draws the next operation type from a spec.
pub fn next_op(spec: &YcsbSpec, rng: &mut SimRng) -> YcsbOp {
    let r = rng.f64();
    if r < spec.read {
        YcsbOp::Read
    } else if r < spec.read + spec.update {
        YcsbOp::Update
    } else if r < spec.read + spec.update + spec.insert {
        YcsbOp::Insert
    } else if r < spec.read + spec.update + spec.insert + spec.scan {
        YcsbOp::Scan
    } else {
        YcsbOp::Rmw
    }
}

fn key_of(i: u64) -> Vec<u8> {
    format!("user{:012}", i).into_bytes()
}

/// Loads `records` rows of `value_size` bytes into a store.
pub fn load_db<S: Storage>(db: &mut LsmKv<S>, records: u64, value_size: usize, seed: u64) {
    let mut rng = SimRng::new(seed);
    for i in 0..records {
        let val: Vec<u8> = (0..value_size)
            .map(|_| (rng.below(26) + 97) as u8)
            .collect();
        db.put(&key_of(i), &val);
    }
    db.flush();
}

/// Counters from a functional YCSB run.
#[derive(Clone, Copy, Debug, Default)]
pub struct YcsbCounts {
    /// Reads that found their record.
    pub found: u64,
    /// Reads that missed (should be 0 after a proper load).
    pub missed: u64,
    /// Updates + inserts applied.
    pub written: u64,
    /// Scan result rows returned.
    pub scanned: u64,
}

/// Runs `ops` operations of `workload` against a real store (functional
/// mode; the paper's configuration is 3M records, 1M ops).
pub fn run_real<S: Storage>(
    db: &mut LsmKv<S>,
    workload: YcsbWorkload,
    ops: u64,
    records: u64,
    seed: u64,
) -> YcsbCounts {
    let spec = workload.spec();
    let mut rng = SimRng::new(seed);
    let zipf = ZipfianGenerator::new(records);
    let mut inserted = records;
    let mut counts = YcsbCounts::default();
    for _ in 0..ops {
        let key_idx = if spec.latest {
            // Latest: cluster around the most recent inserts.
            let back = zipf.next(&mut rng) % inserted.max(1);
            inserted.saturating_sub(1 + back % inserted)
        } else {
            zipf.next(&mut rng) % inserted
        };
        match next_op(&spec, &mut rng) {
            YcsbOp::Read => match db.get(&key_of(key_idx)) {
                Some(_) => counts.found += 1,
                None => counts.missed += 1,
            },
            YcsbOp::Update => {
                db.put(&key_of(key_idx), b"updated-value-payload-000000000");
                counts.written += 1;
            }
            YcsbOp::Insert => {
                db.put(&key_of(inserted), b"inserted-value-payload-00000000");
                inserted += 1;
                counts.written += 1;
            }
            YcsbOp::Scan => {
                let len = 1 + rng.below(100) as usize;
                counts.scanned += db.scan(&key_of(key_idx), len).len() as u64;
            }
            YcsbOp::Rmw => {
                let _ = db.get(&key_of(key_idx));
                db.put(&key_of(key_idx), b"rmw-value-payload-0000000000000");
                counts.found += 1;
                counts.written += 1;
            }
        }
    }
    counts
}

// ---------------------------------------------------------------------------
// Virtual-time database model
// ---------------------------------------------------------------------------

/// LSM I/O model parameters (derived from lsmkv's behavior; see
/// EXPERIMENTS.md "YCSB modeling").
#[derive(Clone, Debug)]
pub struct LsmIoModel {
    /// Probability a read is served from memtable/page cache without I/O.
    pub cache_hit: f64,
    /// Probability a non-cached read needs a second table probe.
    pub second_probe: f64,
    /// Data block size read per probe.
    pub read_bytes: usize,
    /// WAL append size per update (sector-aligned commit record).
    pub wal_bytes: usize,
    /// Updates per *blocking* WAL write (RocksDB's default does not fsync
    /// each write; group commit flushes batches).
    pub wal_sync_every: u64,
    /// Updates between memtable flush bursts.
    pub ops_per_flush: u64,
    /// 128K writes per flush burst.
    pub flush_writes: u32,
    /// Flush bursts between compactions.
    pub flushes_per_compaction: u64,
    /// 128K reads+writes per compaction.
    pub compaction_ios: u32,
    /// Client + DB CPU per operation.
    pub think_ns: Ns,
    /// Scan block reads per 8 scanned rows.
    pub scan_read_every: u64,
}

impl LsmIoModel {
    /// Model for the paper's setup at the given job count: with 1 job the
    /// 3 GB dataset mostly fits the VM's page cache; 4 jobs (4 DB
    /// instances) overflow it and the run becomes I/O-bound (§V-B).
    pub fn for_jobs(jobs: usize) -> Self {
        LsmIoModel {
            cache_hit: if jobs >= 4 { 0.35 } else { 0.93 },
            second_probe: 0.25,
            read_bytes: 4096,
            wal_bytes: 4096,
            wal_sync_every: 16,
            ops_per_flush: 4096,
            flush_writes: 8,
            flushes_per_compaction: 4,
            compaction_ios: 32,
            think_ns: 18_000,
            scan_read_every: 8,
        }
    }
}

#[derive(Clone, Copy)]
struct Step {
    write: bool,
    bytes: usize,
}

/// Shared YCSB job results.
#[derive(Default)]
pub struct YcsbJobStats {
    /// Operations completed.
    pub ops: AtomicU64,
    /// I/O requests issued.
    pub ios: AtomicU64,
}

/// A virtual-time YCSB client+DB thread: executes one operation at a time,
/// issuing its I/O steps synchronously through the guest queue (RocksDB's
/// blocking read/fsync path) with think time between operations.
pub struct YcsbJob {
    name: String,
    spec: YcsbSpec,
    model: LsmIoModel,
    cost: CostModel,
    sq: SqProducer,
    cq: CqConsumer,
    stats: Arc<YcsbJobStats>,
    rng: SimRng,
    region_start: u64,
    region_lbas: u64,
    /// Steps remaining in the current operation.
    steps: Vec<Step>,
    /// Waiting for an I/O completion.
    waiting: bool,
    /// Continue no earlier than this (think time, interrupt delivery).
    resume_at: Ns,
    /// Extra completion-delivery latency (guest interrupt path and, for
    /// SPDK, vhost-user notification) — see EXPERIMENTS.md.
    completion_extra: Ns,
    updates: u64,
    flushes: u64,
    op_started: bool,
    stop_at: Ns,
    charged: Ns,
    seq_cursor: u64,
}

impl YcsbJob {
    /// Creates a job bound to guest queue ends.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        workload: YcsbWorkload,
        model: LsmIoModel,
        cost: CostModel,
        sq: SqProducer,
        cq: CqConsumer,
        region_start: u64,
        region_lbas: u64,
        completion_extra: Ns,
        duration: Ns,
        seed: u64,
    ) -> (Self, Arc<YcsbJobStats>) {
        let stats = Arc::new(YcsbJobStats::default());
        (
            YcsbJob {
                name: name.to_string(),
                spec: workload.spec(),
                model,
                cost,
                sq,
                cq,
                stats: stats.clone(),
                rng: SimRng::new(seed),
                region_start,
                region_lbas,
                steps: Vec::new(),
                waiting: false,
                resume_at: 0,
                completion_extra,
                updates: 0,
                flushes: 0,
                op_started: false,
                stop_at: duration,
                charged: 0,
                seq_cursor: 0,
            },
            stats,
        )
    }

    /// Builds the I/O plan for the next operation; returns think time.
    fn plan_op(&mut self) -> Ns {
        debug_assert!(self.steps.is_empty());
        let op = next_op(&self.spec.clone(), &mut self.rng);
        let mut think = self.model.think_ns;
        let push_read = |steps: &mut Vec<Step>, model: &LsmIoModel, rng: &mut SimRng| {
            if !rng.chance(model.cache_hit) {
                steps.push(Step {
                    write: false,
                    bytes: model.read_bytes,
                });
                if rng.chance(model.second_probe) {
                    steps.push(Step {
                        write: false,
                        bytes: model.read_bytes,
                    });
                }
            }
        };
        let push_update = |this: &mut Self| {
            this.updates += 1;
            // Buffered WAL: only every Nth update issues a blocking write
            // (group commit); the rest stay in memory.
            if this.updates.is_multiple_of(this.model.wal_sync_every) {
                this.steps.push(Step {
                    write: true,
                    bytes: this.model.wal_bytes,
                });
            }
            if this.updates.is_multiple_of(this.model.ops_per_flush) {
                this.flushes += 1;
                for _ in 0..this.model.flush_writes {
                    this.steps.push(Step {
                        write: true,
                        bytes: 128 * 1024,
                    });
                }
                if this
                    .flushes
                    .is_multiple_of(this.model.flushes_per_compaction)
                {
                    for i in 0..this.model.compaction_ios {
                        this.steps.push(Step {
                            write: i % 2 == 1,
                            bytes: 128 * 1024,
                        });
                    }
                }
            }
        };
        match op {
            YcsbOp::Read => push_read(&mut self.steps, &self.model, &mut self.rng),
            YcsbOp::Update | YcsbOp::Insert => push_update(self),
            YcsbOp::Scan => {
                let rows = 1 + self.rng.below(100);
                let reads = rows.div_ceil(self.model.scan_read_every).max(1);
                for _ in 0..reads {
                    self.steps.push(Step {
                        write: false,
                        bytes: self.model.read_bytes,
                    });
                }
                think += rows * 300; // per-row processing
            }
            YcsbOp::Rmw => {
                push_read(&mut self.steps, &self.model, &mut self.rng);
                push_update(self);
            }
        }
        think
    }

    fn issue_next(&mut self, _now: Ns) -> bool {
        let Some(step) = self.steps.pop() else {
            return false;
        };
        let nlb = (step.bytes.div_ceil(LBA_SIZE)).max(1) as u32;
        let span = self.region_lbas.saturating_sub(nlb as u64).max(1);
        let lba = if step.write && step.bytes > 4096 {
            // Flush/compaction: sequential.
            self.seq_cursor = (self.seq_cursor + nlb as u64) % span;
            self.region_start + self.seq_cursor
        } else {
            self.region_start + self.rng.below(span)
        };
        let mut cmd = if step.write {
            SubmissionEntry::write(1, lba, nlb, 0x1000, 0)
        } else {
            SubmissionEntry::read(1, lba, nlb, 0x1000, 0)
        };
        cmd.cid = 0;
        self.charged += self.cost.guest_submit;
        self.stats.ios.fetch_add(1, Ordering::Relaxed);
        self.sq.push(cmd).expect("YCSB queue depth 1");
        self.waiting = true;
        true
    }
}

impl Actor for YcsbJob {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        if self.waiting {
            if let Some(_cqe) = self.cq.pop() {
                self.waiting = false;
                self.charged += self.cost.guest_complete;
                // Interrupt delivery + softirq before the thread resumes.
                self.resume_at = now + self.completion_extra;
                progressed = true;
            } else {
                return Progress::Idle;
            }
        }
        if now < self.resume_at {
            return if progressed {
                Progress::Busy
            } else {
                Progress::Idle
            };
        }
        self.resume_at = 0; // consumed
        loop {
            if self.issue_next(0) {
                return Progress::Busy;
            }
            // Current operation (if one was in progress) finished.
            if self.op_started {
                self.op_started = false;
                self.stats.ops.fetch_add(1, Ordering::Relaxed);
                progressed = true;
            }
            if now >= self.stop_at {
                return if progressed {
                    Progress::Busy
                } else {
                    Progress::Idle
                };
            }
            let think = self.plan_op();
            self.op_started = true;
            self.charged += think;
            self.resume_at = now + think;
            progressed = true;
            if now < self.resume_at {
                return Progress::Busy;
            }
        }
    }

    fn next_event(&self) -> Option<Ns> {
        (!self.waiting && self.resume_at > 0).then_some(self.resume_at)
    }

    fn charged(&self) -> Ns {
        self.charged
    }

    fn cpu_mode(&self) -> CpuMode {
        // The DB thread sleeps on I/O; CPU is think time + syscall work.
        CpuMode::EventDriven
    }
}

/// Result of one virtual-time YCSB run.
#[derive(Clone, Copy, Debug)]
pub struct YcsbResult {
    /// Aggregate throughput.
    pub kops_per_sec: f64,
    /// Total operations.
    pub ops: u64,
    /// Total storage I/Os issued.
    pub ios: u64,
    /// CPU cores busy on average.
    pub cpu_cores: f64,
}

/// Runs the virtual-time YCSB model for `workload` over `kind`'s stack.
pub fn run_ycsb(
    kind: SolutionKind,
    workload: YcsbWorkload,
    jobs: usize,
    duration: Ns,
    opts: &RigOptions,
) -> YcsbResult {
    let cost = opts.cost.clone();
    let model = LsmIoModel::for_jobs(jobs);
    // Completion delivery latency on top of the stack's own path: guests
    // do blocking I/O in YCSB, so interrupt injection applies wherever the
    // stack itself does not already model it. SPDK additionally pays the
    // vhost-user used-ring notification (EXPERIMENTS.md).
    let extra = |kind: SolutionKind| -> Ns {
        match kind {
            SolutionKind::Passthrough => 0, // device model injects already
            SolutionKind::Vhost | SolutionKind::DmCrypt | SolutionKind::DmMirror => 0, // stack models it
            // QEMU sync I/O additionally waits out the main-loop eventfd
            // round and guest block softirq.
            SolutionKind::Qemu => 30 * US,
            // SPDK vhost-user: used-ring notification from the reactor to
            // KVM's irqfd plus reactor batching granularity (EXPERIMENTS.md).
            SolutionKind::Spdk => cost.guest_irq_inject + 45 * US,
            _ => cost.guest_irq_inject,
        }
    };
    let mut stats: Vec<Arc<YcsbJobStats>> = Vec::new();
    let completion_extra = extra(kind);
    let mut ex = build_rig(kind, opts, jobs, 64, |vm, j, gsq, gcq, partition| {
        let job_lbas = (partition.lba_count / jobs as u64).max(1024);
        let (job, st) = YcsbJob::new(
            &format!("ycsb-vm{vm}-j{j}"),
            workload,
            model.clone(),
            cost.clone(),
            gsq,
            gcq,
            j as u64 * job_lbas,
            job_lbas,
            completion_extra,
            duration,
            opts.seed ^ ((vm as u64) << 24) ^ (j as u64) << 8,
        );
        stats.push(st);
        Box::new(job)
    });
    let report = ex.run(u64::MAX);
    let ops: u64 = stats.iter().map(|s| s.ops.load(Ordering::Relaxed)).sum();
    let ios: u64 = stats.iter().map(|s| s.ios.load(Ordering::Relaxed)).sum();
    let window = duration.min(report.duration).max(1);
    YcsbResult {
        kops_per_sec: ops as f64 * SEC as f64 / window as f64 / 1_000.0,
        ops,
        ios,
        cpu_cores: report.cpu_cores(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsmkv::{DbConfig, MemStorage};
    use nvmetro_sim::MS;

    #[test]
    fn zipfian_prefers_hot_keys() {
        let z = ZipfianGenerator::new(10_000);
        let mut rng = SimRng::new(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.next(&mut rng)).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest key must dominate the median key massively.
        assert!(freqs[0] > 1_000, "hottest key drew {}", freqs[0]);
        assert!(counts.len() > 1_000, "distribution must spread");
    }

    #[test]
    fn zipfian_stays_in_range() {
        let z = ZipfianGenerator::new(100);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 100);
        }
    }

    #[test]
    fn spec_fractions_sum_to_one() {
        for w in YcsbWorkload::all() {
            let s = w.spec();
            let sum = s.read + s.update + s.insert + s.scan + s.rmw;
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "workload {} sums {sum}",
                w.label()
            );
        }
    }

    #[test]
    fn real_ycsb_runs_over_lsmkv() {
        let mut db = LsmKv::create(
            MemStorage::new(256 << 20),
            DbConfig {
                memtable_bytes: 1 << 16,
                l0_limit: 4,
                wal_bytes: 4 << 20,
            },
        );
        load_db(&mut db, 2_000, 64, 7);
        for w in YcsbWorkload::all() {
            let counts = run_real(&mut db, w, 500, 2_000, 7);
            assert_eq!(counts.missed, 0, "workload {} missed reads", w.label());
        }
    }

    #[test]
    fn virtual_time_ycsb_produces_throughput() {
        let r = run_ycsb(
            SolutionKind::Nvmetro,
            YcsbWorkload::A,
            1,
            20 * MS,
            &RigOptions::default(),
        );
        assert!(r.ops > 100, "only {} ops", r.ops);
        assert!(r.ios > 0);
        assert!(r.kops_per_sec > 1.0);
    }

    #[test]
    fn four_jobs_become_io_bound_and_spread_solutions() {
        let opts = RigOptions::default();
        let dur = 20 * MS;
        let pass = run_ycsb(SolutionKind::Passthrough, YcsbWorkload::C, 4, dur, &opts);
        let qemu = run_ycsb(SolutionKind::Qemu, YcsbWorkload::C, 4, dur, &opts);
        let nvmetro = run_ycsb(SolutionKind::Nvmetro, YcsbWorkload::C, 4, dur, &opts);
        assert!(
            qemu.kops_per_sec < pass.kops_per_sec * 0.8,
            "QEMU {} vs passthrough {} (paper: -49%)",
            qemu.kops_per_sec,
            pass.kops_per_sec
        );
        let ratio = nvmetro.kops_per_sec / pass.kops_per_sec;
        assert!(
            ratio > 0.9,
            "NVMetro must stay within ~3% of passthrough, got {ratio}"
        );
    }
}
