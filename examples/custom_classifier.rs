//! Writing your own I/O classifier.
//!
//! NVMetro's flexibility claim (§III-B) is that storage logic is a small
//! sandboxed program, not a kernel patch. This example builds a *QoS +
//! write-protection* classifier from scratch with the vbpf builder:
//!
//! * writes to the first 1000 LBAs (a "golden image" region) are rejected
//!   with an NVMe status — pure direct mediation, no UIF needed;
//! * everything else passes to the device on the fast path;
//! * the classifier counts commands per opcode in a map the host can read
//!   (live observability of a VM's I/O mix).
//!
//! ```sh
//! cargo run --release --example custom_classifier
//! ```

use nvmetro::core::classify::{classifier_verifier_config, ctx_offsets, verdict_bits, Classifier};
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::router::VmBinding;
use nvmetro::core::{Partition, VirtualController, VmConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::nvme::{CqPair, SqPair, Status, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::Executor;
use nvmetro::vbpf::interp::helpers;
use nvmetro::vbpf::isa::*;
use nvmetro::vbpf::{MapDef, ProgramBuilder, Vm};

const PROTECTED_LBAS: i32 = 1000;

/// Assembles and verifies the classifier. ~25 instructions of vbpf.
fn build_qos_classifier() -> Vm {
    let mut b = ProgramBuilder::new();
    // Map 0: per-opcode command counters (256 slots of u64).
    let counters = b.declare_map(MapDef {
        value_size: 8,
        max_entries: 256,
    });
    let not_counted = b.new_label();
    let protected = b.new_label();
    let pass = b.new_label();

    // --- count the opcode: counters[opcode]++ ---
    b.mov64(R7, R1) // save ctx
        .ldx(SIZE_B, R6, R7, ctx_offsets::OPCODE)
        .stx(SIZE_W, R10, -4, R6) // key = opcode
        .mov64_imm(R1, counters as i32)
        .mov64(R2, R10)
        .add64_imm(R2, -4)
        .call(helpers::MAP_LOOKUP)
        .jmp_imm(JMP_JEQ, R0, 0, not_counted)
        .ldx(SIZE_DW, R3, R0, 0)
        .add64_imm(R3, 1)
        .stx(SIZE_DW, R0, 0, R3);
    b.bind(not_counted);
    // --- write protection: writes below PROTECTED_LBAS are rejected ---
    b.ldx(SIZE_B, R6, R7, ctx_offsets::OPCODE)
        .jmp_imm(JMP_JNE, R6, 0x01, pass) // only writes checked
        .ldx(SIZE_DW, R4, R7, ctx_offsets::SLBA)
        .jmp_imm(JMP_JLT, R4, PROTECTED_LBAS, protected);
    b.bind(pass);
    b.lddw(R0, verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
        .exit();
    b.bind(protected);
    // Complete immediately with "write fault" — the device never sees it.
    b.mov64_imm(R0, Status::WRITE_FAULT.0 as i32)
        .or64_imm(R0, verdict_bits::COMPLETE as i32)
        .exit();

    let (insns, maps) = b.build();
    println!("classifier: {} instructions, verifying...", insns.len());
    Vm::new(
        nvmetro::vbpf::verify(insns, maps, &classifier_verifier_config())
            .expect("classifier must pass the verifier"),
    )
}

fn main() {
    let mut ssd = SimSsd::new("ssd", SsdConfig::default());
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 24,
        ..Default::default()
    });
    let mem = vc.memory();
    let (guest_sq, guest_cq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(256)
        .vm(VmBinding {
            vm_id: 0,
            mem: mem.clone(),
            partition: Partition::whole(1 << 31),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(build_qos_classifier()),
        })
        .build();

    let mut ex = Executor::new();

    // A write into the protected region, a write outside it, and a read.
    let buf = mem.alloc(512);
    let (p1, p2) = nvmetro::mem::build_prps(&mem, buf, 512);
    for (cid, cmd) in [
        (1u16, SubmissionEntry::write(1, 10, 1, p1, p2)), // protected!
        (2, SubmissionEntry::write(1, 5_000, 1, p1, p2)), // allowed
        (3, SubmissionEntry::read(1, 5_000, 1, p1, p2)),  // allowed
    ] {
        let mut c = cmd;
        c.cid = cid;
        guest_sq.push(c).unwrap();
    }
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.run(u64::MAX);

    let mut statuses = std::collections::HashMap::new();
    while let Some(cqe) = guest_cq.pop() {
        statuses.insert(cqe.cid, cqe.status());
    }
    assert_eq!(
        statuses[&1],
        Status::WRITE_FAULT,
        "protected write rejected"
    );
    assert_eq!(statuses[&2], Status::SUCCESS, "normal write passes");
    assert_eq!(statuses[&3], Status::SUCCESS, "read passes");
    println!("write-protection verdicts: {:?}", statuses);

    // Host-side observability: classifier maps persist across invocations
    // and are readable by the host. Demonstrate on a standalone instance.
    use nvmetro::core::classify::{RequestCtx, HOOK_VSQ};
    let mut vm = build_qos_classifier();
    for cmd in [
        SubmissionEntry::read(1, 0, 1, 0, 0),
        SubmissionEntry::read(1, 8, 1, 0, 0),
        SubmissionEntry::write(1, 9_000, 1, 0, 0),
    ] {
        let mut ctx = RequestCtx::new(HOOK_VSQ, 0, 0, &cmd, Status::SUCCESS, 0);
        vm.run(ctx.bytes_mut()).unwrap();
    }
    let reads = vm.map(0).get_u64(0x02).unwrap();
    let writes = vm.map(0).get_u64(0x01).unwrap();
    println!("classifier counters: reads={reads} writes={writes}");
    assert_eq!((reads, writes), (2, 1));

    println!("custom_classifier OK");
}
