//! Transparent disk encryption end to end, on real OS threads.
//!
//! Builds the paper's §IV-A function — vbpf classifier (Listing 1) +
//! encryption UIF (Listing 2) — and runs the router, the UIF, and the
//! device each on their own thread, like the real deployment. Verifies
//! that plaintext never reaches the disk and that the on-disk format is
//! dm-crypt compatible.
//!
//! ```sh
//! cargo run --release --example encrypted_disk
//! ```

use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::router::{NotifyBinding, VmBinding};
use nvmetro::core::uif::UifRunner;
use nvmetro::core::{Partition, VirtualController, VmConfig};
use nvmetro::crypto::Xts;
use nvmetro::device::{CompletionMode, DeviceThread, SimSsd, SsdConfig};
use nvmetro::functions::{build_encryptor_classifier, CryptoBackend, EncryptorUif};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqPair, SqPair, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PART_OFFSET: u64 = 4096;
const TIME_SCALE: f64 = 100.0; // run modeled latencies 100x faster

fn main() {
    let key = vec![0x42u8; 64]; // XTS-AES-256 (dm-crypt default width)
    let cost = CostModel::default();

    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            ..Default::default()
        },
    );
    let store = ssd.store();

    let mut vc = VirtualController::new(VmConfig {
        id: 0,
        mem_bytes: 1 << 26,
        queue_pairs: 1,
        queue_depth: 256,
        partition: Partition {
            lba_offset: PART_OFFSET,
            lba_count: 500_000,
        },
    });
    let mem = vc.memory();
    let (guest_sq, guest_cq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    // Fast path + UIF backend queues on the device.
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let (nsq_p, nsq_c) = SqPair::new(256);
    let (ncq_p, ncq_c) = CqPair::new(256);
    let (bsq_p, bsq_c) = SqPair::new(256);
    let (bcq_p, bcq_c) = CqPair::new(256);
    let host_mem = Arc::new(GuestMemory::new(1 << 28));
    ssd.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);

    let uif = EncryptorUif::new(CryptoBackend::Xts(Box::new(Xts::new(&key))), PART_OFFSET);
    let runner = UifRunner::new(
        "uif-encryptor",
        cost.clone(),
        nsq_c,
        ncq_p,
        mem.clone(),
        (bsq_p, bcq_c),
        host_mem,
        Box::new(uif),
        2, // the paper's 2 crypto worker threads
        true,
    );

    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(1024)
        .vm(VmBinding {
            vm_id: 0,
            mem: mem.clone(),
            partition: Partition {
                lba_offset: PART_OFFSET,
                lba_count: 500_000,
            },
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: Some(NotifyBinding {
                nsq: nsq_p,
                ncq: ncq_c,
            }),
            classifier: Classifier::Bpf(build_encryptor_classifier(PART_OFFSET)),
        })
        .build();

    // Real threads: the engine's `Pool` owns the router shard and the UIF
    // thread; the device keeps its typed handle for `stop() -> SimSsd`.
    let dev_thread = DeviceThread::spawn(ssd, TIME_SCALE);
    let mut pool = engine.spawn_threads(TIME_SCALE);
    pool.spawn(runner);

    // Guest writes a secret, then reads it back.
    let secret: Vec<u8> = b"attack at dawn! "
        .iter()
        .cycle()
        .take(2048)
        .copied()
        .collect();
    let wbuf = mem.alloc(2048);
    mem.write(wbuf, &secret);
    let (p1, p2) = nvmetro::mem::build_prps(&mem, wbuf, 2048);
    let mut w = SubmissionEntry::write(1, 100, 4, p1, p2);
    w.cid = 1;
    guest_sq.push(w).unwrap();
    let cqe = wait_completion(&guest_cq);
    assert!(!cqe.status().is_error(), "write failed: {:?}", cqe.status());

    let rbuf = mem.alloc(2048);
    let (p1, p2) = nvmetro::mem::build_prps(&mem, rbuf, 2048);
    let mut r = SubmissionEntry::read(1, 100, 4, p1, p2);
    r.cid = 2;
    guest_sq.push(r).unwrap();
    let cqe = wait_completion(&guest_cq);
    assert!(!cqe.status().is_error(), "read failed: {:?}", cqe.status());
    assert_eq!(mem.read_vec(rbuf, 2048), secret, "transparent decryption");
    println!("guest round trip OK (2048 bytes)");

    // Shut the pipeline down and inspect the platter.
    pool.stop();
    let ssd = dev_thread.stop();
    let _ = ssd;

    let on_disk = store.read_vec(PART_OFFSET + 100, 4);
    assert_ne!(on_disk, secret, "plaintext must never hit the disk");
    let mut expected = secret.clone();
    Xts::new(&key).encrypt_sectors(100, &mut expected);
    assert_eq!(on_disk, expected, "dm-crypt-compatible XTS layout");
    println!("on-disk ciphertext verified (XTS-AES, plain64 tweaks)");

    println!("encrypted_disk OK");
}

fn wait_completion(cq: &nvmetro::nvme::CqConsumer) -> nvmetro::nvme::CompletionEntry {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(cqe) = cq.pop() {
            return cqe;
        }
        assert!(Instant::now() < deadline, "I/O timed out");
        std::thread::yield_now();
    }
}
