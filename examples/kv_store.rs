//! A real database on an NVMetro virtual disk.
//!
//! Runs the `lsmkv` LSM key-value store (the reproduction's RocksDB
//! stand-in) over an NVMetro-managed virtual NVMe disk served by real
//! threads, then drives a small YCSB workload against it — the functional
//! miniature of the paper's §V YCSB evaluation.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use lsmkv::{DbConfig, LsmKv, Storage};
use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::router::VmBinding;
use nvmetro::core::{passthrough_program, Partition, VirtualController, VmConfig};
use nvmetro::device::{CompletionMode, DeviceThread, SimSsd, SsdConfig};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry, LBA_SIZE};
use nvmetro::sim::cost::CostModel;
use nvmetro::workloads::ycsb::{load_db, run_real, YcsbWorkload};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Synchronous block storage over a guest NVMe queue pair: what the
/// guest's filesystem/driver stack boils down to for the database.
/// Queue ends live behind a mutex because the lsmkv `Storage` trait reads
/// with `&self` (the DB itself is single-threaded over this adapter).
struct NvmeDisk {
    inner: std::sync::Mutex<DiskQueues>,
    mem: Arc<GuestMemory>,
    capacity: u64,
    bounce: u64,
    syncs: std::sync::atomic::AtomicU64,
}

struct DiskQueues {
    sq: SqProducer,
    cq: CqConsumer,
    next_cid: u16,
}

impl NvmeDisk {
    fn new(sq: SqProducer, cq: CqConsumer, mem: Arc<GuestMemory>, capacity: u64) -> Self {
        let bounce = mem.alloc(1 << 20); // 1 MiB bounce for alignment
        NvmeDisk {
            inner: std::sync::Mutex::new(DiskQueues {
                sq,
                cq,
                next_cid: 0,
            }),
            mem,
            capacity,
            bounce,
            syncs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn io(&self, write: bool, lba: u64, blocks: u32) {
        let len = blocks as usize * LBA_SIZE;
        let (p1, p2) = nvmetro::mem::build_prps(&self.mem, self.bounce, len);
        let mut cmd = if write {
            SubmissionEntry::write(1, lba, blocks, p1, p2)
        } else {
            SubmissionEntry::read(1, lba, blocks, p1, p2)
        };
        let mut q = self.inner.lock().unwrap();
        cmd.cid = q.next_cid;
        q.next_cid = q.next_cid.wrapping_add(1);
        q.sq.push(cmd).expect("queue space");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(cqe) = q.cq.pop() {
                assert!(!cqe.status().is_error(), "I/O error: {:?}", cqe.status());
                return;
            }
            assert!(Instant::now() < deadline, "I/O timed out");
            std::thread::yield_now();
        }
    }
}

impl Storage for NvmeDisk {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) {
        let first = offset / LBA_SIZE as u64;
        let last = (offset + buf.len() as u64).div_ceil(LBA_SIZE as u64);
        let blocks = (last - first) as u32;
        assert!(blocks as usize * LBA_SIZE <= 1 << 20, "read too large");
        self.io(false, first, blocks);
        let skew = (offset - first * LBA_SIZE as u64) as usize;
        let data = self.mem.read_vec(self.bounce + skew as u64, buf.len());
        buf.copy_from_slice(&data);
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        let first = offset / LBA_SIZE as u64;
        let last = (offset + data.len() as u64).div_ceil(LBA_SIZE as u64);
        let blocks = (last - first) as u32;
        assert!(blocks as usize * LBA_SIZE <= 1 << 20, "write too large");
        let skew = (offset - first * LBA_SIZE as u64) as usize;
        // Read-modify-write when the span is not sector aligned.
        if skew != 0 || !data.len().is_multiple_of(LBA_SIZE) {
            self.io(false, first, blocks);
        }
        self.mem.write(self.bounce + skew as u64, data);
        self.io(true, first, blocks);
    }

    fn sync(&mut self) {
        // Flush-on-write semantics in this adapter.
        self.syncs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn syncs(&self) -> u64 {
        self.syncs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

fn main() {
    // NVMetro stack on real threads: device + router.
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            ..Default::default()
        },
    );
    let mut vc = VirtualController::new(VmConfig {
        id: 0,
        mem_bytes: 1 << 26,
        queue_pairs: 1,
        queue_depth: 64,
        partition: Partition::whole(1 << 20),
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(256)
        .vm(VmBinding {
            vm_id: 0,
            mem: mem.clone(),
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        })
        .build();
    // Compress modeled latencies 1000x so the functional demo is snappy.
    let dev = DeviceThread::spawn(ssd, 1_000.0);
    let rtr = engine.spawn_threads(1_000.0);

    // The database over the virtual disk.
    let disk = NvmeDisk::new(gsq, gcq, mem, (1u64 << 20) * LBA_SIZE as u64);
    let mut db = LsmKv::create(
        disk,
        DbConfig {
            memtable_bytes: 64 << 10,
            l0_limit: 4,
            wal_bytes: 2 << 20,
        },
    );

    const RECORDS: u64 = 800;
    println!("loading {RECORDS} records through the NVMetro disk...");
    load_db(&mut db, RECORDS, 100, 0xDB);
    println!(
        "loaded: {} flushes, {} compactions",
        db.stats().flushes,
        db.stats().compactions
    );

    for w in [YcsbWorkload::A, YcsbWorkload::C, YcsbWorkload::F] {
        let t0 = Instant::now();
        let counts = run_real(&mut db, w, 200, RECORDS, 0xDB);
        println!(
            "YCSB-{}: 200 ops in {:?} (found={} written={} missed={})",
            w.label(),
            t0.elapsed(),
            counts.found,
            counts.written,
            counts.missed
        );
        assert_eq!(counts.missed, 0);
    }

    rtr.stop();
    let _ = dev.stop();
    println!("kv_store OK");
}
