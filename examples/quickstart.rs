//! Quickstart: a VM, an NVMetro router with a verified vbpf classifier,
//! and a simulated NVMe SSD — write data, read it back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::policy::{BatchPolicy, EnginePolicy, PollPolicy};
use nvmetro::core::router::VmBinding;
use nvmetro::core::{passthrough_program, Partition, VirtualController, VmConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::insight::{assemble, chrome_trace, prometheus_text};
use nvmetro::nvme::{CqPair, SqPair, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::Executor;
use nvmetro::telemetry::{lifecycle_table, Metric, Telemetry};

fn main() {
    // 0. A telemetry registry: every worker below registers a shard, and
    //    the datapath emits lifecycle events into a shared trace ring.
    let telemetry = Telemetry::enabled();

    // 1. A simulated 970-EVO-Plus-class SSD.
    let mut ssd = SimSsd::new("ssd", SsdConfig::default());
    let store = ssd.store();
    ssd.attach_telemetry(telemetry.register_worker());

    // 2. A VM with a virtual NVMe controller: one queue pair, 6 GB memory.
    let mut vc = VirtualController::new(VmConfig {
        id: 0,
        mem_bytes: 1 << 28,
        queue_pairs: 1,
        queue_depth: 256,
        partition: Partition::whole(1 << 31),
    });
    let mem = vc.memory();
    let (guest_sq, guest_cq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    // 3. Fast-path queues on the device.
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

    // 4. The router, built through `RouterBuilder`, with the paper's
    //    dummy classifier — real, verified vbpf bytecode that returns
    //    SEND_HQ | WILL_COMPLETE_HQ. `shards(n)` would split queue groups
    //    across n router shards; one VM with one queue pair needs one.
    //    The datapath knobs travel as one typed `EnginePolicy`: here the
    //    poll governor parks the shard between requests (~0 idle CPU) and
    //    the batch tuner sizes SQ drains itself. (The old scalar
    //    `batch(n)`/`workers(n)` setters are deprecated shims onto this.)
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .policy(
            EnginePolicy::new()
                .poll(PollPolicy::adaptive())
                .batch(BatchPolicy::auto()),
        )
        .table_capacity(1024)
        .telemetry(&telemetry)
        .vm(VmBinding {
            vm_id: 0,
            mem: mem.clone(),
            partition: Partition::whole(1 << 31),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        })
        .build();

    // 5. Guest I/O: write 4 KiB, then read it back.
    let payload: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let wbuf = mem.alloc(4096);
    mem.write(wbuf, &payload);
    let (p1, p2) = nvmetro::mem::build_prps(&mem, wbuf, 4096);
    let mut write = SubmissionEntry::write(1, 2048, 8, p1, p2);
    write.cid = 1;
    guest_sq.push(write).expect("submit write");

    // 6. Run the virtual-time executor until quiescent.
    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    let report = ex.run(u64::MAX);

    let cqe = guest_cq.pop().expect("write completion");
    println!(
        "write cid={} status_ok={} completed at t={:.1}us",
        cqe.cid,
        !cqe.status().is_error(),
        report.duration as f64 / 1000.0
    );
    assert!(!cqe.status().is_error());

    // The bytes really are on the (virtual) flash:
    assert_eq!(store.read_vec(2048, 8), payload);
    println!(
        "on-disk bytes verified at LBA 2048 ({} bytes)",
        payload.len()
    );
    println!("per-actor CPU: {:?}", report.actor_cpu);

    // 7. What did the datapath actually do? Ask telemetry: aggregated
    //    counters, per-route latency, and the write's full lifecycle.
    let snap = telemetry.snapshot();
    println!("\n{}", snap.render());
    if let Some(req) = snap.requests().first() {
        let life = snap.lifecycle(req.vm, req.vsq, req.tag);
        println!("{}", lifecycle_table(&life).render());
    }

    // 8. Insight: fold the raw events into per-request spans, then export
    //    them two ways — a Chrome `trace_event` file (open it in
    //    chrome://tracing or https://ui.perfetto.dev) and a
    //    Prometheus-style text exposition for scraping.
    let spans = assemble(&snap);
    println!(
        "insight: {} span(s) reconstructed, coverage {:.0}% of {} completed request(s)",
        spans.spans.len(),
        spans.coverage(snap.get(Metric::Completed)) * 100.0,
        snap.get(Metric::Completed),
    );
    if let Some(span) = spans.spans.iter().find(|s| s.complete) {
        println!(
            "  write span: {} events over {:.1}us end to end",
            span.events.len(),
            span.latency_ns() as f64 / 1000.0
        );
    }
    let trace = chrome_trace(&spans.spans, &telemetry.worker_names());
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/quickstart_trace.json", &trace).expect("write trace");
    println!(
        "chrome trace -> target/quickstart_trace.json ({} bytes)",
        trace.len()
    );
    let prom = prometheus_text(&snap);
    let preview: Vec<&str> = prom.lines().take(4).collect();
    println!(
        "prometheus exposition ({} lines), head:",
        prom.lines().count()
    );
    for line in preview {
        println!("  {line}");
    }
    println!("quickstart OK");
}
