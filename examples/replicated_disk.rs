//! Live disk replication end to end (virtual time).
//!
//! The §IV-B function: the vbpf classifier multicasts writes to the local
//! primary and the replication UIF; the UIF forwards them to a remote
//! NVMe-oF secondary; the guest's write completes only when both replicas
//! are durable. Reads never leave the local machine.
//!
//! ```sh
//! cargo run --release --example replicated_disk
//! ```

use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::router::{NotifyBinding, VmBinding};
use nvmetro::core::uif::UifRunner;
use nvmetro::core::{Partition, VirtualController, VmConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig, Transport};
use nvmetro::functions::{build_replicator_classifier, ReplicatorUif};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqPair, SqPair, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Executor, US};
use std::sync::Arc;

fn main() {
    let cost = CostModel::default();

    // Local primary + Infiniband-attached remote secondary.
    let mut primary = SimSsd::new(
        "primary",
        SsdConfig {
            capacity_lbas: 1 << 20,
            ..Default::default()
        },
    );
    let mut secondary = SimSsd::new(
        "secondary",
        SsdConfig {
            capacity_lbas: 1 << 20,
            transport: Some(Transport {
                one_way: 10 * US,
                per_byte: 0.10,
            }),
            ..Default::default()
        },
    );
    let (pstore, sstore) = (primary.store(), secondary.store());

    let partition = Partition {
        lba_offset: 0,
        lba_count: 1 << 20,
    };
    let mut vc = VirtualController::new(VmConfig {
        id: 0,
        mem_bytes: 1 << 26,
        queue_pairs: 1,
        queue_depth: 256,
        partition,
    });
    let mem = vc.memory();
    let (guest_sq, guest_cq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    primary.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let (nsq_p, nsq_c) = SqPair::new(256);
    let (ncq_p, ncq_c) = CqPair::new(256);
    let (bsq_p, bsq_c) = SqPair::new(256);
    let (bcq_p, bcq_c) = CqPair::new(256);
    let host_mem = Arc::new(GuestMemory::new(1 << 26));
    secondary.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);

    let runner = UifRunner::new(
        "uif-replicator",
        cost.clone(),
        nsq_c,
        ncq_p,
        mem.clone(),
        (bsq_p, bcq_c),
        host_mem,
        Box::new(ReplicatorUif::new()),
        1,
        true,
    );

    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(1024)
        .vm(VmBinding {
            vm_id: 0,
            mem: mem.clone(),
            partition,
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: Some(NotifyBinding {
                nsq: nsq_p,
                ncq: ncq_c,
            }),
            classifier: Classifier::Bpf(build_replicator_classifier(0)),
        })
        .build();

    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(runner));
    ex.add(Box::new(primary));
    ex.add(Box::new(secondary));

    // Write 16 KiB across both replicas.
    let data: Vec<u8> = (0..16384).map(|i| (i % 241) as u8).collect();
    let wbuf = mem.alloc(data.len());
    mem.write(wbuf, &data);
    let (p1, p2) = nvmetro::mem::build_prps(&mem, wbuf, data.len());
    let mut w = SubmissionEntry::write(1, 777, 32, p1, p2);
    w.cid = 1;
    guest_sq.push(w).unwrap();
    let report = ex.run(u64::MAX);
    let cqe = guest_cq.pop().expect("write completion");
    assert!(!cqe.status().is_error());
    println!(
        "synchronous mirrored write completed at t={:.1}us (includes the \
         remote round trip)",
        report.duration as f64 / 1000.0
    );

    assert_eq!(pstore.read_vec(777, 32), data, "primary replica");
    assert_eq!(sstore.read_vec(777, 32), data, "secondary replica");
    println!("both replicas verified (16 KiB @ LBA 777)");

    // Reads are served locally: corrupt the secondary, read, compare.
    sstore.write_blocks(777, &vec![0xFF; 512]);
    let rbuf = mem.alloc(data.len());
    let (p1, p2) = nvmetro::mem::build_prps(&mem, rbuf, data.len());
    let mut r = SubmissionEntry::read(1, 777, 32, p1, p2);
    r.cid = 2;
    guest_sq.push(r).unwrap();
    ex.run(u64::MAX);
    assert!(!guest_cq.pop().unwrap().status().is_error());
    assert_eq!(mem.read_vec(rbuf, data.len()), data, "read served locally");
    println!("reads bypass the remote (classifier filters them to the fast path)");

    println!("replicated_disk OK");
}
