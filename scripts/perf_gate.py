#!/usr/bin/env python3
"""Direction-aware perf-regression gate over the BENCH_*.json reports.

Usage: perf_gate.py <baseline_dir> <current_dir>

Compares the headline metric of every smoke-bench report against the
committed baseline (ci.sh stashes `git show HEAD:BENCH_*.json` into the
baseline dir before re-running the benches). A metric may only move the
wrong way by its tolerance (default 15%); wall-clock-derived metrics get
wider tolerances than virtual-time ones, which are deterministic.

A report with no committed baseline is reported as new and skipped, so
adding a bench does not require seeding its baseline by hand.
"""

import json
import re
import sys

# (file, path, direction, tolerance)
#   direction "higher": regression when current < baseline * (1 - tol)
#   direction "lower":  regression when current > baseline * (1 + tol)
# Virtual-time metrics (iops/p99 from the simulated clock, coverage
# fractions) are deterministic and keep the default 15%; wall-clock
# throughput and overhead fractions are noisy on shared machines and get
# wider bands — their hard absolute bars live in the benches themselves.
METRICS = [
    ("BENCH_sharding.json", "speedup_1_to_4", "higher", 0.15),
    ("BENCH_sharding.json", "results[1].iops", "higher", 0.15),
    ("BENCH_sharding.json", "results[1].p99_ns", "lower", 0.15),
    ("BENCH_classifier.json", "compiled_vs_interp", "higher", 0.25),
    ("BENCH_classifier.json", "cache_hit_vs_interp", "higher", 0.25),
    ("BENCH_insight.json", "coverage.fraction", "higher", 0.05),
    ("BENCH_insight.json", "assembly.events_per_sec", "higher", 0.50),
    ("BENCH_insight.json", "watchdog_overhead.fraction", "lower", 1.00),
    ("BENCH_fleet.json", "coalesce_iops_win", "higher", 0.15),
    ("BENCH_fleet.json", "device_occupancy_cut", "higher", 0.15),
    ("BENCH_fleet.json", "fairness_jain", "higher", 0.15),
    ("BENCH_servicing.json", "quiesce_ns", "lower", 0.15),
    ("BENCH_servicing.json", "reshard_drain_p99_ns", "lower", 0.15),
    ("BENCH_adaptive.json", "idle_duty", "lower", 0.15),
    ("BENCH_adaptive.json", "loaded_p99_ratio", "lower", 0.05),
    ("BENCH_adaptive.json", "auto_vs_best_fixed", "higher", 0.05),
    ("BENCH_blackbox.json", "recorder_overhead.fraction", "lower", 1.00),
    ("BENCH_blackbox.json", "forest.link_coverage", "higher", 0.0),
]

PATH_PART = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)((?:\[\d+\])*)")


def resolve(doc, path):
    """Walk a dotted path with optional [i] indexing into a JSON doc."""
    node = doc
    for part in path.split("."):
        m = PATH_PART.fullmatch(part)
        if not m:
            raise KeyError(path)
        node = node[m.group(1)]
        for idx in re.findall(r"\[(\d+)\]", m.group(2)):
            node = node[int(idx)]
    return node


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    base_dir, cur_dir = sys.argv[1], sys.argv[2]
    failures = 0
    for fname, path, direction, tol in METRICS:
        try:
            with open(f"{cur_dir}/{fname}") as f:
                cur = resolve(json.load(f), path)
        except FileNotFoundError:
            print(f"FAIL  {fname}:{path}: bench did not write its report")
            failures += 1
            continue
        try:
            with open(f"{base_dir}/{fname}") as f:
                base = resolve(json.load(f), path)
        except FileNotFoundError:
            print(f"new   {fname}:{path} = {cur} (no committed baseline)")
            continue
        if base == 0:
            verdict = "ok" if (direction == "higher" or cur == 0) else "FAIL"
        elif direction == "higher":
            verdict = "ok" if cur >= base * (1.0 - tol) else "FAIL"
        else:
            verdict = "ok" if cur <= base * (1.0 + tol) else "FAIL"
        arrow = "^" if direction == "higher" else "v"
        print(
            f"{verdict:5} {fname}:{path} [{arrow} tol {tol:.0%}] "
            f"baseline {base} -> current {cur}"
        )
        if verdict == "FAIL":
            failures += 1
    if failures:
        print(f"perf gate: {failures} metric(s) regressed past tolerance")
        sys.exit(1)
    print("perf gate: all headline metrics within tolerance")


if __name__ == "__main__":
    main()
