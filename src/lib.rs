//! # NVMetro
//!
//! A from-scratch Rust reproduction of *"Flexible NVMe Request Routing for
//! Virtual Machines"* (Dinh Ngoc, Teabe, Da Costa, Hagimont — IPDPS 2024):
//! an I/O virtualization framework that presents each VM a virtual NVMe
//! controller and routes every request over a **fast path** (straight to
//! the device), a **kernel path** (host block layer / device mapper), or a
//! **notify path** (userspace I/O functions), as decided per request by
//! sandboxed eBPF classifiers.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the I/O router, classifier ABI, virtual controller, UIF framework |
//! | [`vbpf`] | the eBPF-subset VM: builder, verifier, interpreter, maps |
//! | [`nvme`] | NVMe commands, completions, lock-free queue pairs |
//! | [`mem`] | guest-physical memory and PRP handling |
//! | [`device`] | the simulated NVMe SSD and NVMe-oF remote target |
//! | [`faults`] | deterministic seeded fault plans + recovery chaos harness |
//! | [`kernel`] | block layer + dm-linear/dm-crypt/dm-mirror substrate |
//! | [`crypto`] | XTS-AES and the SGX enclave simulation |
//! | [`functions`] | the encryption and replication storage functions |
//! | [`baselines`] | passthrough, MDev-NVMe, vhost-scsi, QEMU, SPDK stacks |
//! | [`workloads`] | fio and YCSB engines + solution assembly |
//! | [`lsmkv`] | the LSM key-value store (RocksDB stand-in) |
//! | [`fleet`] | per-tenant QoS scheduling, cross-VM read coalescing, insight feedback |
//! | [`sim`] | virtual-time executor, CPU accounting, cost model |
//! | [`stats`] | histograms and result tables |
//! | [`telemetry`] | request-lifecycle tracing, sharded metrics, snapshots |
//! | [`insight`] | span reconstruction, tail attribution, stall watchdog, trace export |
//! | [`blackbox`] | flight recorder, postmortem dump bundles, incident reports |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the 60-second tour: build a VM +
//! router + device rig, install a verified classifier, and do I/O.

pub use lsmkv;
pub use nvmetro_baselines as baselines;
pub use nvmetro_blackbox as blackbox;
pub use nvmetro_core as core;
pub use nvmetro_crypto as crypto;
pub use nvmetro_device as device;
pub use nvmetro_faults as faults;
pub use nvmetro_fleet as fleet;
pub use nvmetro_functions as functions;
pub use nvmetro_insight as insight;
pub use nvmetro_kernel as kernel;
pub use nvmetro_mem as mem;
pub use nvmetro_nvme as nvme;
pub use nvmetro_sim as sim;
pub use nvmetro_stats as stats;
pub use nvmetro_telemetry as telemetry;
pub use nvmetro_vbpf as vbpf;
pub use nvmetro_workloads as workloads;

/// Crate version, from the workspace manifest.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
