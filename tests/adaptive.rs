//! Adaptive-datapath integration: the poll governor's park/wake cycle
//! against live doorbells, exactly-once delivery with parking enabled,
//! auto-tuned batching against the best fixed setting, and the policy's
//! survival through servicing (snapshot bytes, restore, reshard).
//!
//! The invariants under test:
//!
//! * **A parked shard never sleeps through a doorbell** — the moment work
//!   is visible on a parked shard's queues, `next_event_all` reports a
//!   wakeup deadline, so a manual-drive loop (or the executor) wakes it
//!   within the modeled wakeup latency instead of stalling forever.
//! * **Park/wake loses and reorders nothing** — across seeded arrival
//!   patterns with long idle gaps, the adaptive engine delivers exactly
//!   the same completion sequence as the always-spin engine.
//! * **`BatchPolicy::Auto` keeps up with the best hand-tuned batch** at
//!   QD 128 (within 5%), starting from the smallest setting.
//! * **Policy round-trips through servicing** — the `EnginePolicy` an
//!   engine was built with survives `ServiceState::to_bytes`/`from_bytes`
//!   and governs the restored engine, including across a 2→4 reshard.

use nvmetro::core::classify::{verdict_bits, Classifier, NativeClassifier, RequestCtx, Verdict};
use nvmetro::core::engine::{Engine, EngineVm, QueueBinding, RouterBuilder};
use nvmetro::core::policy::{BatchPolicy, EnginePolicy, PlacementPolicy, PollPolicy};
use nvmetro::core::{Partition, PollMode, ServiceState};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Actor, Executor, Ns, Progress, Topology, MS, US};
use nvmetro::telemetry::{Metric, Telemetry};
use std::sync::Arc;

/// Everything to the fast path.
struct AlwaysFast;
impl NativeClassifier for AlwaysFast {
    fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
        Verdict(verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
    }
}

/// Deterministic cost model: no device jitter.
fn deterministic_cost() -> CostModel {
    CostModel {
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

/// One fast-path queue group plus its guest-side ends.
fn queue_group(ssd: &mut SimSsd, mem: &Arc<GuestMemory>) -> (QueueBinding, SqProducer, CqConsumer) {
    let (vsq_p, vsq_c) = SqPair::new(256);
    let (vcq_p, vcq_c) = CqPair::new(256);
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let binding = QueueBinding {
        vsqs: vec![vsq_c],
        vcqs: vec![vcq_p],
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify: None,
        classifier: Classifier::Native(Box::new(AlwaysFast)),
    };
    (binding, vsq_p, vcq_c)
}

/// Single-VM engine over `queue_pairs` groups under `policy`.
#[allow(clippy::type_complexity)]
fn build_rig(
    shards: usize,
    queue_pairs: usize,
    policy: EnginePolicy,
    telemetry: &Telemetry,
) -> (Engine, SimSsd, Vec<(SqProducer, CqConsumer)>) {
    let cost = deterministic_cost();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 11,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut guest_ends = Vec::new();
    let mut queues = Vec::new();
    for _ in 0..queue_pairs {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem);
        queues.push(binding);
        guest_ends.push((sq, cq));
    }
    let engine = RouterBuilder::new("router")
        .cost(cost)
        .shards(shards)
        .policy(policy)
        .table_capacity(2048)
        .telemetry(telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            queues,
        })
        .build();
    (engine, ssd, guest_ends)
}

/// Drives engine + device at `now`, draining the guest CQ into `out`.
fn pump(engine: &mut Engine, ssd: &mut SimSsd, cq: &CqConsumer, out: &mut Vec<u16>, now: Ns) {
    engine.poll_all(now);
    ssd.poll(now);
    while let Some(cqe) = cq.pop() {
        assert!(!cqe.status().is_error());
        out.push(cqe.cid);
    }
}

#[test]
fn parked_shard_never_sleeps_through_a_doorbell() {
    let telemetry = Telemetry::enabled();
    let policy = EnginePolicy::new().poll(PollPolicy::Adaptive {
        idle_spin: 8 * US,
        park_after: 64 * US,
    });
    let (mut engine, mut ssd, mut ends) = build_rig(1, 1, policy, &telemetry);
    let (sq, cq) = ends.pop().unwrap();
    let mut done = Vec::new();

    // Warm up: complete one read so the shard has seen work.
    let mut cmd = SubmissionEntry::read(1, 0, 8, 0x1000, 0);
    cmd.cid = 0;
    sq.push(cmd).unwrap();
    let mut now: Ns = 0;
    while done.is_empty() {
        pump(&mut engine, &mut ssd, &cq, &mut done, now);
        now += US;
        assert!(now < 10 * MS, "warm-up read never completed");
    }

    // Go idle until the governor parks the shard.
    while engine.stats().poll_modes[0] != PollMode::Parked {
        now += 5 * US;
        pump(&mut engine, &mut ssd, &cq, &mut done, now);
        assert!(now < 10 * MS, "shard never parked while idle");
    }
    // A parked shard with nothing visible schedules nothing: idle costs
    // zero virtual CPU and zero spurious wakeups.
    assert_eq!(engine.next_event_all(), None);

    // Ring the doorbell while parked. The wakeup deadline must appear in
    // next_event_all *without* any poll happening first — that is the
    // regression: a drive loop sleeping on next_event_all wakes up.
    let rang_at = now + 30 * US;
    let mut cmd = SubmissionEntry::read(1, 64, 8, 0x1000, 0);
    cmd.cid = 1;
    sq.push(cmd).unwrap();
    let wake = engine
        .next_event_all()
        .expect("parked shard with a pending doorbell must schedule a wakeup");
    assert!(
        wake <= rang_at + deterministic_cost().adaptive_wakeup,
        "wakeup {wake} too far past the doorbell at {rang_at}"
    );

    // Sleep-until-next-event drive: no fixed-step polling allowed.
    now = rang_at;
    for _ in 0..10_000 {
        if done.len() == 2 {
            break;
        }
        let ev = match (engine.next_event_all(), ssd.next_event()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => now + US,
        };
        now = now.max(ev).max(now + 1);
        pump(&mut engine, &mut ssd, &cq, &mut done, now);
    }
    assert_eq!(done, vec![0, 1], "doorbell read must complete after a wake");
    assert!(
        now < rang_at + MS,
        "wake latency blew up: completed at {now} for a doorbell at {rang_at}"
    );
    let snap = telemetry.snapshot();
    assert!(snap.get(Metric::ShardParks) >= 1, "no park observed");
    assert!(snap.get(Metric::ShardWakes) >= 1, "no wake observed");
}

#[test]
fn park_wake_never_loses_or_reorders_completions() {
    const N: u16 = 300;
    // Seeded arrival patterns with long idle gaps (forcing park/wake
    // cycles) must deliver the identical completion sequence the
    // always-spin engine delivers.
    for seed in [0x00C0_FFEEu64, 0x00BE_EF01, 0x005E_ED42] {
        let mut sequences = Vec::new();
        for adaptive in [false, true] {
            let telemetry = Telemetry::enabled();
            let policy = if adaptive {
                EnginePolicy::new().poll(PollPolicy::adaptive())
            } else {
                EnginePolicy::new()
            };
            let (mut engine, mut ssd, mut ends) = build_rig(1, 1, policy, &telemetry);
            let (sq, cq) = ends.pop().unwrap();
            let mut done = Vec::new();
            let mut now: Ns = 0;
            let mut rng = seed | 1;
            for i in 0..N {
                // xorshift gaps: mostly back-to-back, every ~8th arrival
                // preceded by a long idle gap that outlives park_after.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let gap = if rng % 8 == 0 { 200 * US } else { 2 * US };
                now += gap;
                // A long gap really is quiet: first let the in-flight
                // tail drain (a poll that still finds due work counts
                // as busy and blocks parking), then poll once late in
                // the gap with nothing pending — that idle visit is
                // where the governor measures the quiet spell and
                // parks. The spin engine runs the same drive, keeping
                // the two completion sequences comparable.
                if gap > 100 * US {
                    let mut t = now - gap;
                    for _ in 0..10_000 {
                        let ev = match (engine.next_event_all(), ssd.next_event()) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        match ev {
                            Some(ev) if ev < now - US => {
                                t = t.max(ev).max(t + 1);
                                pump(&mut engine, &mut ssd, &cq, &mut done, t);
                            }
                            _ => break,
                        }
                    }
                    pump(&mut engine, &mut ssd, &cq, &mut done, now - US);
                }
                let mut cmd = SubmissionEntry::read(1, i as u64 * 8, 8, 0x1000, 0);
                cmd.cid = i;
                sq.push(cmd).unwrap();
                pump(&mut engine, &mut ssd, &cq, &mut done, now);
            }
            // Drain: sleep-until-next-event like a real drive loop.
            for _ in 0..100_000 {
                if done.len() == N as usize {
                    break;
                }
                let ev = match (engine.next_event_all(), ssd.next_event()) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => now + US,
                };
                now = now.max(ev).max(now + 1);
                pump(&mut engine, &mut ssd, &cq, &mut done, now);
            }
            assert_eq!(
                done.len(),
                N as usize,
                "seed {seed:#x} adaptive={adaptive}: lost completions"
            );
            if adaptive {
                let snap = telemetry.snapshot();
                assert!(
                    snap.get(Metric::ShardParks) >= 1,
                    "seed {seed:#x}: the gap pattern must actually park the shard"
                );
            }
            sequences.push(done);
        }
        assert_eq!(
            sequences[0], sequences[1],
            "seed {seed:#x}: adaptive engine reordered completions vs spin"
        );
    }
}

/// Closed-loop QD-128 read generator over one queue pair: keeps `qd`
/// outstanding until `total` ops have been submitted, then drains.
struct Load {
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    outstanding: usize,
    submitted: u64,
    completed: u64,
    total: u64,
    next_cid: u16,
    lba: u64,
}

impl Actor for Load {
    fn name(&self) -> &str {
        "load"
    }
    fn poll(&mut self, _now: Ns) -> Progress {
        let mut progressed = false;
        while let Some(cqe) = self.cq.pop() {
            assert!(!cqe.status().is_error());
            self.outstanding -= 1;
            self.completed += 1;
            progressed = true;
        }
        // Bursty refill: let half the window drain, then top back up to
        // `qd` in one go — the doorbell pattern batched guests produce,
        // and the shape where the SQ drain bound actually matters (a
        // trickle of singleton arrivals never fills any batch).
        if self.outstanding <= self.qd / 2 {
            while self.outstanding < self.qd && self.submitted < self.total {
                let mut cmd = SubmissionEntry::read(1, self.lba, 1, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_err() {
                    break;
                }
                self.next_cid = self.next_cid.wrapping_add(1);
                self.lba = (self.lba + 8) % ((1 << 20) - 8);
                self.outstanding += 1;
                self.submitted += 1;
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }
    fn next_event(&self) -> Option<Ns> {
        None
    }
}

/// Virtual time to push `total` QD-128 reads through a one-shard engine
/// under `batch`; returns (duration, batch retunes).
fn run_qd128(batch: BatchPolicy, total: u64) -> (Ns, u64) {
    let telemetry = Telemetry::enabled();
    let policy = EnginePolicy::new().batch(batch);
    let (engine, ssd, mut ends) = build_rig(1, 1, policy, &telemetry);
    let (sq, cq) = ends.pop().unwrap();
    let mut ex = Executor::new();
    ex.add(Box::new(Load {
        sq,
        cq,
        qd: 128,
        outstanding: 0,
        submitted: 0,
        completed: 0,
        total,
        next_cid: 0,
        lba: 0,
    }));
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    let report = ex.run(u64::MAX);
    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::Completed), total, "short completion count");
    (report.duration.max(1), snap.get(Metric::BatchRetunes))
}

#[test]
fn auto_batch_matches_best_fixed_at_qd128() {
    const TOTAL: u64 = 4_000;
    let mut best_fixed = Ns::MAX;
    for n in [4usize, 32, 256] {
        let (dur, _) = run_qd128(BatchPolicy::Fixed(n), TOTAL);
        best_fixed = best_fixed.min(dur);
    }
    let (auto_dur, retunes) = run_qd128(BatchPolicy::Auto { min: 4, max: 256 }, TOTAL);
    assert!(retunes >= 1, "the tuner never moved off its starting batch");
    // Auto starts at the worst setting (min) and must climb to within 5%
    // of the best hand-tuned batch.
    assert!(
        auto_dur as f64 <= best_fixed as f64 * 1.05,
        "auto batch took {auto_dur}ns vs best fixed {best_fixed}ns"
    );
}

#[test]
fn policy_survives_snapshot_bytes_restore_and_reshard() {
    let telemetry = Telemetry::enabled();
    let policy = EnginePolicy::new()
        .poll(PollPolicy::Adaptive {
            idle_spin: 8 * US,
            park_after: 64 * US,
        })
        .batch(BatchPolicy::Auto { min: 4, max: 128 })
        .placement(PlacementPolicy::Affine(Topology {
            nodes: 2,
            cores_per_node: 4,
            device_node: 0,
            cross_penalty: US,
        }));
    let (mut engine, mut ssd, ends) = build_rig(2, 4, policy, &telemetry);
    assert_eq!(engine.policy(), &policy);
    assert_eq!(engine.shard_cores().len(), 2);

    // Some traffic on every queue pair, then quiesce.
    for (qp, (sq, _)) in ends.iter().enumerate() {
        for i in 0..8u16 {
            let mut cmd = SubmissionEntry::read(1, qp as u64 * 4096 + i as u64 * 8, 8, 0x1000, 0);
            cmd.cid = i;
            sq.push(cmd).unwrap();
        }
    }
    let mut now: Ns = 0;
    let mut delivered = 0usize;
    let pump_all = |engine: &mut Engine, ssd: &mut SimSsd, now: Ns, delivered: &mut usize| {
        engine.poll_all(now);
        ssd.poll(now);
        for (_, cq) in &ends {
            while let Some(cqe) = cq.pop() {
                assert!(!cqe.status().is_error());
                *delivered += 1;
            }
        }
    };
    engine.begin_quiesce();
    while !engine.quiesced() {
        now += US;
        pump_all(&mut engine, &mut ssd, now, &mut delivered);
        assert!(now < 100 * MS, "quiesce never converged");
    }

    // Snapshot → bytes → parse: the policy is in the blob.
    let (state, parts) = engine.snapshot(now);
    assert_eq!(state.policy, policy);
    let bytes = state.to_bytes();
    let state = ServiceState::from_bytes(&bytes).expect("blob round-trips");
    assert_eq!(state.policy, policy);

    // Restore 2 → 4 shards: the snapshot's policy governs the new engine,
    // and the placement model re-places all four shards.
    let mut engine = Engine::restore_with_shards(parts, &state, 4, now).expect("reshard restore");
    assert_eq!(engine.policy(), &policy);
    assert_eq!(engine.shard_cores().len(), 4);
    let topo = match policy.placement {
        PlacementPolicy::Affine(t) => t,
        _ => unreachable!(),
    };
    for &core in engine.shard_cores() {
        assert!(core < topo.cores(), "placement must stay on the topology");
    }
    let stats = engine.stats();
    assert_eq!(stats.poll_modes.len(), 4);
    assert!(stats.batch_sizes.iter().all(|&b| (4..=128).contains(&b)));

    // The restored engine still serves I/O under the restored policy.
    engine.resume_admission();
    for (qp, (sq, _)) in ends.iter().enumerate() {
        let mut cmd = SubmissionEntry::read(1, qp as u64 * 4096, 8, 0x1000, 0);
        cmd.cid = 100;
        sq.push(cmd).unwrap();
    }
    let before = delivered;
    while delivered < before + ends.len() {
        now += US;
        pump_all(&mut engine, &mut ssd, now, &mut delivered);
        assert!(now < 200 * MS, "post-restore reads never completed");
    }
}
