//! Black-box flight recorder and causal trace forest integration:
//!
//! * **Forensics** — a seeded chaos run with an injected hung completion
//!   trips the recorder's persistent-stall trigger; the dump bundle
//!   round-trips through its byte format and `blackbox::report` names the
//!   injected fault's site and window *from the bundle alone*.
//! * **Coalesce fan-out trees** — on the chaos coalescing rig, every
//!   leader→follower fan-out link resolves into one trace tree (100% link
//!   coverage), exported as valid Chrome-trace flow events.
//! * **Cross-restore replay trees** — a mid-flight snapshot/restore
//!   replays requests under a new generation; the replay link stitches the
//!   old-generation attempt and the replayed span into one tree, and the
//!   recorder's timeline carries the servicing lifecycle.

use nvmetro::blackbox::{
    report, Blackbox, BoxKind, DumpBundle, EngineDump, Recorder, RecorderConfig, ServicingOp,
    TriggerReason,
};
use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::{Engine, EngineVm, QueueBinding, RouterBuilder};
use nvmetro::core::{passthrough_program, Partition, RecoveryConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
use nvmetro::fleet::CoalesceConfig;
use nvmetro::insight::span::assemble;
use nvmetro::insight::{
    chrome_trace_forest, validate_json, StallWatchdog, TraceForest, WatchdogConfig,
};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Actor, Executor, Ns, Progress, SimRng, MS, US};
use nvmetro::telemetry::{Metric, Stage, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NLB: u32 = 8;

/// Closed-loop reader, optionally over a small hot LBA set.
struct Guest {
    name: String,
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    deadline: Ns,
    outstanding: usize,
    next_cid: u16,
    rng: SimRng,
    lba_slots: u64,
    submitted: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

impl Guest {
    fn new(
        name: &str,
        sq: SqProducer,
        cq: CqConsumer,
        qd: usize,
        deadline: Ns,
        seed: u64,
        lba_slots: u64,
    ) -> Self {
        Guest {
            name: name.to_string(),
            sq,
            cq,
            qd,
            deadline,
            outstanding: 0,
            next_cid: 0,
            rng: SimRng::new(seed),
            lba_slots,
            submitted: Arc::new(AtomicU64::new(0)),
            completed: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Actor for Guest {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while self.cq.pop().is_some() {
            self.outstanding -= 1;
            self.completed.fetch_add(1, Ordering::Relaxed);
            progressed = true;
        }
        if now < self.deadline {
            while self.outstanding < self.qd {
                let slot = self.rng.below(self.lba_slots);
                let mut cmd = SubmissionEntry::read(1, slot * NLB as u64, NLB, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_err() {
                    break;
                }
                self.next_cid = self.next_cid.wrapping_add(1);
                self.outstanding += 1;
                self.submitted.fetch_add(1, Ordering::Relaxed);
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        None
    }
}

fn queue_group(ssd: &mut SimSsd, mem: &Arc<GuestMemory>) -> (QueueBinding, SqProducer, CqConsumer) {
    let (vsq_p, vsq_c) = SqPair::new(256);
    let (vcq_p, vcq_c) = CqPair::new(256);
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let binding = QueueBinding {
        vsqs: vec![vsq_c],
        vcqs: vec![vcq_p],
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify: None,
        classifier: Classifier::Bpf(passthrough_program()),
    };
    (binding, vsq_p, vcq_c)
}

fn deterministic_cost() -> CostModel {
    CostModel {
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

/// The forensics proof. A single queue-depth-1 reader has its very first
/// completion dropped by a seeded fault and no recovery engine to bail it
/// out: the queue stalls permanently. The watchdog flags it, the recorder
/// sees the stall persist, dumps, and the analyzer names the injected
/// fault's site (shard 0, vm 0, vsq 0) and window — working purely from
/// the bundle after a byte round-trip.
#[test]
fn injected_stall_dump_round_trips_and_report_names_the_site() {
    let telemetry = Telemetry::enabled();
    let plan = FaultPlan::new(0x5EED).rule(
        FaultRule::new(FaultSite::Device, FaultAction::DropCompletion)
            .classes(CmdClass::Read.bit())
            .max_hits(1),
    );
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 16,
            cost: deterministic_cost(),
            move_data: false,
            seed: 0x5EED,
            faults: plan,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut ex = Executor::new();
    let (binding, sq, cq) = queue_group(&mut ssd, &mem);
    let guest = Guest::new("guest", sq, cq, 1, 3 * MS, 1, 512);
    let submitted = guest.submitted.clone();
    ex.add(Box::new(guest));
    RouterBuilder::new("router")
        .cost(deterministic_cost())
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 16),
            queues: vec![binding],
        })
        .build()
        .run_virtual(&mut ex);
    ex.add(Box::new(ssd));

    let (watchdog, health) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: 100 * US,
            stall_grace: 100 * US,
            ..Default::default()
        },
    );
    ex.add(Box::new(watchdog));
    let cfg = RecorderConfig {
        interval: 100 * US,
        stall_ticks: 3,
        ..Default::default()
    };
    let bb = Blackbox::new(&cfg);
    ex.add(Box::new(
        Recorder::new(&telemetry, bb.clone(), cfg).with_health(health.clone()),
    ));
    ex.run(3 * MS);

    assert_eq!(
        submitted.load(Ordering::Relaxed),
        1,
        "qd-1 rig must wedge on the first read"
    );
    assert!(
        health.saw_stall(),
        "the dropped completion never stalled the queue"
    );

    let dumps = bb.dumps();
    assert!(!dumps.is_empty(), "persistent stall must trigger a dump");
    let bundle = &dumps[0];
    let since = match bundle.reason {
        TriggerReason::StallPersisted {
            worker,
            vm,
            vsq,
            ticks,
            since,
        } => {
            assert_eq!(
                (worker, vm, vsq),
                (0, 0, 0),
                "trigger must name the wedged queue"
            );
            assert!(ticks >= 3);
            since
        }
        ref other => panic!("expected a persistent-stall trigger, got {other:?}"),
    };
    assert!(since < bundle.at);

    // Byte round-trip, then forensics from the reconstructed bundle only.
    let restored =
        DumpBundle::from_bytes(&bundle.to_bytes()).expect("bundle survives its own wire format");
    assert_eq!(&restored, bundle);
    let text = report(&restored);
    assert!(
        text.contains("queue stalled on shard 0 vm 0 vsq 0"),
        "report must name the fault site:\n{text}"
    );
    assert!(text.contains("fault site: shard 0 vm 0 vsq 0"), "\n{text}");
    assert!(
        text.contains("window"),
        "report must bound the incident window:\n{text}"
    );
    // The hung request is still in flight: the residue must carry it.
    assert!(
        restored.residue.iter().any(|r| r.vm == 0 && r.vsq == 0),
        "residue must list the wedged request"
    );
    // The stall verdicts the recorder tailed are on the timeline.
    assert!(
        restored
            .timeline
            .iter()
            .any(|e| matches!(e.kind, BoxKind::Stalled { vm: 0, vsq: 0, .. })),
        "timeline must carry the watchdog's stall verdicts"
    );
    // And the rendered JSON form is valid.
    validate_json(&restored.to_json()).expect("bundle JSON renders valid");
}

/// Coalesce fan-out on the chaos rig: eight guests hammer a four-slot hot
/// set through the coalescing window under seeded faults. Every
/// `LinkFanout` link must resolve to its leader span — 100% link coverage,
/// leader and followers in one tree — and the flow-event export validates.
#[test]
fn coalesce_fanout_reconstructs_single_linked_trees_under_chaos() {
    for seed in [0xA11CEu64, 0xC0DE] {
        let duration = 5 * MS;
        let telemetry = Telemetry::enabled();
        let cost = CostModel {
            ssd_channels: 8,
            ssd_read_lat: 20_000,
            ssd_cmd_overhead: 500,
            ssd_cmd_overhead_write: 500,
            ssd_jitter: 0.0,
            ..Default::default()
        };
        let plan = FaultPlan::new(seed)
            .rule(
                FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: true })
                    .classes(CmdClass::Read.bit())
                    .probability(0.02),
            )
            .rule(
                FaultRule::new(FaultSite::Device, FaultAction::Stall(300 * US))
                    .classes(CmdClass::Read.bit())
                    .probability(0.02),
            );
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas: 1 << 16,
                cost: cost.clone(),
                move_data: false,
                seed,
                faults: plan,
                ..Default::default()
            },
        );
        let mem = Arc::new(GuestMemory::new(1 << 20));
        let mut ex = Executor::new();
        let mut builder = RouterBuilder::new("router")
            .cost(cost)
            .telemetry(&telemetry)
            .recovery(RecoveryConfig {
                cmd_timeout: MS,
                ..Default::default()
            })
            .coalesce(CoalesceConfig::default());
        for vm in 0..8u32 {
            let (binding, sq, cq) = queue_group(&mut ssd, &mem);
            builder = builder.vm(EngineVm {
                vm_id: vm,
                mem: mem.clone(),
                partition: Partition::whole(1 << 16),
                queues: vec![binding],
            });
            // All guests read the same 4 hot slots: maximal duplication.
            ex.add(Box::new(Guest::new(
                &format!("guest-{vm}"),
                sq,
                cq,
                8,
                duration,
                seed ^ ((vm as u64) << 8),
                4,
            )));
        }
        builder.build().run_virtual(&mut ex);
        ex.add(Box::new(ssd));

        let (wd, log) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                interval: 200 * US,
                keep_spans: true,
                ..Default::default()
            },
        );
        let shared = wd.shared();
        ex.add(Box::new(shared.clone()));
        let run = ex.run(u64::MAX);
        shared.with(|w| w.flush(run.duration + 1));

        let snap = telemetry.snapshot();
        let fanned = snap.get(Metric::CoalesceFanout);
        assert!(fanned > 0, "seed {seed:#x}: the hot set never coalesced");
        assert_eq!(log.drain_missed(), 0, "seed {seed:#x}: ring overflow");

        let forest = TraceForest::build(log.spans());
        assert_eq!(
            forest.stats.links_seen, fanned as usize,
            "seed {seed:#x}: every fan-out must emit exactly one link"
        );
        assert_eq!(
            forest.stats.links_resolved, forest.stats.links_seen,
            "seed {seed:#x}: 100% link coverage required"
        );
        assert!((forest.stats.link_coverage() - 1.0).abs() < 1e-9);
        // Followers hang off leaders: fewer trees than spans, and every
        // resolved link's child shares its root with the leader.
        assert_eq!(
            forest.stats.trees,
            forest.stats.spans - fanned as usize,
            "seed {seed:#x}: each linked follower must join its leader's tree"
        );
        let link = &forest.links[0];
        assert_eq!(
            forest.root_of(link.child),
            forest.root_of(link.parent),
            "seed {seed:#x}: leader and follower must share one tree"
        );
        assert!(forest.tree(forest.root_of(link.parent)).len() >= 2);

        // The flow-event export binds each pair and stays valid JSON.
        let trace = chrome_trace_forest(&forest, &telemetry.worker_names());
        validate_json(&trace).expect("forest trace must be valid JSON");
        assert!(trace.contains("\"ph\":\"s\"") && trace.contains("\"ph\":\"f\""));
        assert!(trace.contains("coalesce_fanout"));
    }
}

/// Cross-restore replay: a mid-flight snapshot/restore replays in-flight
/// requests under the new generation. The `Replayed` link must stitch the
/// old-generation attempt and its replay into one tree, and the
/// recorder's timeline must carry the servicing lifecycle. The manual
/// `Engine::dump()` path embeds live gauges and policy.
#[test]
fn replay_across_restore_links_generations_into_one_tree() {
    const N: u16 = 32;
    const QPS: usize = 2;
    let telemetry = Telemetry::enabled();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: deterministic_cost(),
            move_data: false,
            seed: 11,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut guest_ends = Vec::new();
    let mut queues = Vec::new();
    for _ in 0..QPS {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem);
        queues.push(binding);
        guest_ends.push((sq, cq));
    }
    let mut engine = RouterBuilder::new("router")
        .cost(deterministic_cost())
        .shards(2)
        .table_capacity(2048)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            queues,
        })
        .build();

    let cfg = RecorderConfig {
        interval: 50 * US,
        trigger_on_breaker: false,
        ..Default::default()
    };
    let bb = Blackbox::new(&cfg);
    let mut rec = Recorder::new(&telemetry, bb.clone(), cfg);

    for (qp, (sq, _)) in guest_ends.iter().enumerate() {
        for i in 0..N {
            let mut cmd = SubmissionEntry::read(1, (qp as u64 * 8192) + i as u64 * 8, 8, 0x1000, 0);
            cmd.cid = i;
            sq.push(cmd).unwrap();
        }
    }

    let mut delivered = 0u64;
    let mut now: Ns = 0;
    // Phase 1: run briefly, then snapshot mid-flight.
    while now < 30 * US {
        engine.poll_all(now);
        ssd.poll(now);
        rec.poll(now);
        for (_, cq) in &guest_ends {
            while cq.pop().is_some() {
                delivered += 1;
            }
        }
        now += 5 * US;
    }
    engine.begin_quiesce();
    let deadline = now + 50 * US;
    while now < deadline && !engine.quiesced() {
        engine.poll_all(now);
        ssd.poll(now);
        rec.poll(now);
        for (_, cq) in &guest_ends {
            while cq.pop().is_some() {
                delivered += 1;
            }
        }
        now += 5 * US;
    }
    assert!(
        engine.live_in_flight() > 0,
        "rig drained before the snapshot"
    );
    let (state, parts) = engine.snapshot(now);
    let mut engine = Engine::restore(parts, &state, now).unwrap();
    assert_eq!(engine.generation(), 2);

    // Phase 2: drain to completion, recorder riding along.
    let total = (QPS as u64) * N as u64;
    while delivered < total && now < 100 * MS {
        engine.poll_all(now);
        ssd.poll(now);
        rec.poll(now);
        for (_, cq) in &guest_ends {
            while cq.pop().is_some() {
                delivered += 1;
            }
        }
        now += 5 * US;
    }
    assert_eq!(delivered, total, "restore lost completions");
    rec.tick(now);

    let snap = telemetry.snapshot();
    let replayed = snap.get(Metric::ReplayedRequests);
    assert!(replayed >= 1, "a mid-flight snapshot must replay something");

    // The recorder's ring carries the servicing lifecycle and the replay
    // trace events.
    let timeline = bb.timeline();
    for op in [ServicingOp::Snapshot, ServicingOp::Restore] {
        assert!(
            timeline
                .iter()
                .any(|e| matches!(&e.kind, BoxKind::Servicing { op: o, .. } if *o == op)),
            "timeline missing servicing op {op:?}"
        );
    }
    assert!(
        timeline
            .iter()
            .any(|e| matches!(&e.kind, BoxKind::Trace(t) if t.stage == Stage::Replayed)),
        "timeline missing the replay trace link"
    );

    // The causal forest stitches old and new generations into one tree.
    let spans = assemble(&telemetry.snapshot()).spans;
    let forest = TraceForest::build(spans);
    assert_eq!(
        forest.stats.links_seen, replayed as usize,
        "one link per replayed request"
    );
    assert_eq!(
        forest.stats.links_resolved, forest.stats.links_seen,
        "100% replay link coverage"
    );
    let link = forest
        .links
        .iter()
        .find(|l| l.kind == nvmetro::insight::LinkKind::Replay)
        .expect("a replay link exists");
    assert_eq!(forest.root_of(link.child), forest.root_of(link.parent));
    let parent = &forest.spans[link.parent];
    let child = &forest.spans[link.child];
    assert!(!parent.complete, "the pre-snapshot attempt must stay open");
    assert!(child.complete, "the replayed request must complete");

    // Manual dump off the live engine embeds gauges and policy.
    let bundle = engine.dump(&bb, &telemetry, now);
    assert_eq!(bundle.reason, TriggerReason::Manual);
    let gauges = bundle.gauges.as_ref().expect("dump embeds gauges");
    assert_eq!(gauges.poll_modes.len(), 2, "one poll mode per shard");
    assert!(bundle.policy.is_some(), "dump embeds the active policy");
    let text = report(&bundle);
    assert!(text.contains("explicit dump request"));
    assert!(text.contains("servicing: snapshot"));
    assert!(text.contains("servicing: restore"));
}
