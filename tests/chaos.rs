//! Chaos integration: seeded fault plans across all three routes with the
//! recovery engine on. Every injected fault must be either recovered
//! (retry, deadline abort + retry, breaker failover, degraded replication)
//! or surfaced to the guest exactly once with a correct NVMe status —
//! never lost, never completed twice — and data read back must match data
//! written.
//!
//! The `CHAOS_SEED` environment variable appends an extra seed to the
//! matrix, letting CI sweep fixed seeds without recompiling.

use nvmetro::core::classify::{verdict_bits, Classifier, NativeClassifier, RequestCtx, Verdict};
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::router::{NotifyBinding, Router, VmBinding};
use nvmetro::core::uif::{Uif, UifDisposition, UifRequest, UifRunner};
use nvmetro::core::{Partition, RecoveryConfig, VirtualController, VmConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig, Transport};
use nvmetro::faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
use nvmetro::functions::{build_replicator_classifier, ReplicatorUif};
use nvmetro::insight::{SpanAssembler, StallWatchdog, WatchdogConfig};
use nvmetro::kernel::{DmConfig, KernelDm, RouterKernelPath};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqPair, NvmOpcode, SqPair, Status, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Actor, Executor, MS, US};
use nvmetro::telemetry::{Metric, Stage, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Routes by opcode: reads fast, writes kernel, flushes notify.
struct ByOpcode;
impl NativeClassifier for ByOpcode {
    fn classify(&mut self, ctx: &mut RequestCtx) -> Verdict {
        Verdict(match ctx.opcode() {
            op if op == NvmOpcode::Read as u8 => {
                verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ
            }
            op if op == NvmOpcode::Write as u8 => {
                verdict_bits::SEND_KQ | verdict_bits::WILL_COMPLETE_KQ
            }
            _ => verdict_bits::SEND_NQ | verdict_bits::WILL_COMPLETE_NQ,
        })
    }
}

/// Everything to the fast path.
struct AlwaysFast;
impl NativeClassifier for AlwaysFast {
    fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
        Verdict(verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
    }
}

/// A UIF that acknowledges everything immediately.
struct AckUif;
impl Uif for AckUif {
    fn work(&mut self, _req: &mut UifRequest<'_>) -> UifDisposition {
        UifDisposition::Respond(Status::SUCCESS)
    }
}

/// The fixed seed matrix, plus an optional `CHAOS_SEED` from the
/// environment (used by the CI chaos stage).
fn seeds() -> Vec<u64> {
    let mut s = vec![0x00C0_FFEE, 0x00BE_EF01, 0x005E_ED42];
    if let Ok(v) = std::env::var("CHAOS_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            s.push(n);
        }
    }
    s
}

/// Faults at all three injection sites: deterministic one-shots first
/// (first match wins), probabilistic noise after.
fn matrix_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(
            FaultRule::new(FaultSite::Device, FaultAction::DropCompletion)
                .classes(CmdClass::Read.bit())
                .max_hits(2),
        )
        .rule(
            FaultRule::new(FaultSite::Device, FaultAction::CqPressure(300 * US))
                .classes(CmdClass::Read.bit())
                .max_hits(1),
        )
        .rule(
            FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: true })
                .classes(CmdClass::Read.bit())
                .max_hits(1),
        )
        .rule(
            FaultRule::new(FaultSite::Device, FaultAction::Stall(150 * US))
                .classes(CmdClass::Read.bit())
                .probability(0.1),
        )
        .rule(
            FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                .classes(CmdClass::Read.bit())
                .probability(0.15),
        )
        .rule(
            FaultRule::new(FaultSite::KernelDm, FaultAction::DropCompletion)
                .classes(CmdClass::Write.bit())
                .max_hits(1),
        )
        .rule(
            FaultRule::new(FaultSite::KernelDm, FaultAction::MediaError { dnr: false })
                .classes(CmdClass::Write.bit())
                .probability(0.15),
        )
        .rule(
            FaultRule::new(FaultSite::UifDispatch, FaultAction::DropCompletion)
                .classes(CmdClass::Flush.bit())
                .max_hits(1),
        )
        .rule(
            FaultRule::new(
                FaultSite::UifDispatch,
                FaultAction::MediaError { dnr: false },
            )
            .classes(CmdClass::Flush.bit())
            .probability(0.2),
        )
}

/// Drains the guest CQ into a per-cid count, asserting valid statuses.
fn drain(
    gcq: &nvmetro::nvme::CqConsumer,
    counts: &mut HashMap<u16, u32>,
    statuses: &mut HashMap<u16, Status>,
) {
    while let Some(cqe) = gcq.pop() {
        *counts.entry(cqe.cid).or_insert(0) += 1;
        statuses.insert(cqe.cid, cqe.status());
    }
}

#[test]
fn chaos_matrix_exactly_once_across_all_routes() {
    for seed in seeds() {
        let telemetry = Telemetry::enabled();
        let cost = CostModel::default();
        let plan = matrix_plan(seed);

        let mut ssd = SimSsd::new(
            "chaos-ssd",
            SsdConfig {
                capacity_lbas: 1 << 20,
                move_data: true,
                seed,
                faults: plan.clone(),
                ..Default::default()
            },
        );
        ssd.attach_telemetry(telemetry.register_worker());
        let store = ssd.store();

        let mut vc = VirtualController::new(VmConfig {
            mem_bytes: 1 << 26,
            queue_depth: 256,
            ..Default::default()
        });
        let mem = vc.memory();
        let (gsq, gcq) = vc.take_guest_queue(0);
        let (vsqs, vcqs) = vc.take_router_queues();

        // Fast path (reads).
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

        // Kernel path (writes): plain block layer over its own device
        // queue, with the KernelDm fault site armed.
        let (ksq_p, ksq_c) = SqPair::new(256);
        let (kcq_p, kcq_c) = CqPair::new(256);
        ssd.add_queue(ksq_c, kcq_p, mem.clone(), CompletionMode::Polled);
        let mut dm = KernelDm::new(
            cost.clone(),
            DmConfig::None,
            vec![(ksq_p, kcq_c)],
            mem.clone(),
        );
        dm.set_faults(plan.injector(FaultSite::KernelDm));
        dm.attach_telemetry(telemetry.register_worker());
        let mut kpath = RouterKernelPath::new(dm);
        kpath.attach_telemetry(telemetry.register_worker());

        // Notify path (flushes): an acking UIF with the dispatch site armed.
        let (nsq_p, nsq_c) = SqPair::new(256);
        let (ncq_p, ncq_c) = CqPair::new(256);
        let host_mem = Arc::new(GuestMemory::new(1 << 20));
        let (bsq_p, _bsq_c) = SqPair::new(64);
        let (_bcq_p, bcq_c) = CqPair::new(64);
        let mut uif = UifRunner::new(
            "chaos-uif",
            cost.clone(),
            nsq_c,
            ncq_p,
            mem.clone(),
            (bsq_p, bcq_c),
            host_mem,
            Box::new(AckUif),
            1,
            false,
        );
        uif.attach_telemetry(telemetry.register_worker());
        uif.set_faults(plan.injector(FaultSite::UifDispatch));

        let engine = RouterBuilder::new("router")
            .cost(cost)
            .table_capacity(512)
            .telemetry(&telemetry)
            .recovery(RecoveryConfig {
                cmd_timeout: 20 * MS,
                max_retries: 4,
                backoff_base: 20 * US,
                backoff_max: 200 * US,
                breaker_threshold: 6,
                breaker_cooldown: 2 * MS,
                zombie_linger: 5 * MS,
            })
            .vm(VmBinding {
                vm_id: 0,
                mem: mem.clone(),
                partition: Partition::whole(1 << 20),
                vsqs,
                vcqs,
                hsq: hsq_p,
                hcq: hcq_c,
                kernel: Some(Box::new(kpath)),
                notify: Some(NotifyBinding {
                    nsq: nsq_p,
                    ncq: ncq_c,
                }),
                classifier: Classifier::Native(Box::new(ByOpcode)),
            })
            .build();

        let mut ex = Executor::new();
        engine.run_virtual(&mut ex);
        ex.add(Box::new(ssd));
        ex.add(Box::new(uif));

        // The insight watchdog rides along, reconstructing every request
        // into a span so the recovery counters can be cross-checked
        // against per-span stage evidence after the run.
        let (wd, insight_log) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                interval: 500 * US,
                keep_spans: true,
                ..WatchdogConfig::default()
            },
        );
        let shared_wd = wd.shared();
        ex.add(Box::new(shared_wd.clone()));

        const WRITES: u16 = 48;
        const FLUSHES: u16 = 16;

        // Phase 1: writes (kernel route) and flushes (notify route).
        let mut payloads: HashMap<u16, (u64, Vec<u8>)> = HashMap::new();
        for i in 0..WRITES {
            let slba = 64 + i as u64 * 16;
            let data: Vec<u8> = (0..4096)
                .map(|b| (b as u64 ^ seed ^ i as u64) as u8)
                .collect();
            let gpa = mem.alloc(data.len());
            mem.write(gpa, &data);
            let (p1, p2) = nvmetro::mem::build_prps(&mem, gpa, data.len());
            let mut cmd = SubmissionEntry::write(1, slba, 8, p1, p2);
            cmd.cid = i;
            gsq.push(cmd).unwrap();
            payloads.insert(i, (slba, data));
        }
        for i in 0..FLUSHES {
            let mut cmd = SubmissionEntry::flush(1);
            cmd.cid = 300 + i;
            gsq.push(cmd).unwrap();
        }
        ex.run(u64::MAX);

        let mut counts = HashMap::new();
        let mut statuses = HashMap::new();
        drain(&gcq, &mut counts, &mut statuses);
        assert_eq!(
            counts.len(),
            (WRITES + FLUSHES) as usize,
            "seed {seed:#x}: every write/flush must be answered"
        );
        for (cid, n) in &counts {
            assert_eq!(*n, 1, "seed {seed:#x}: cid {cid} completed {n} times");
        }

        // Phase 2: read every written region back (fast route).
        let mut read_buf: HashMap<u16, u64> = HashMap::new();
        for i in 0..WRITES {
            let (slba, _) = payloads[&i];
            let gpa = mem.alloc(4096);
            let (p1, p2) = nvmetro::mem::build_prps(&mem, gpa, 4096);
            let mut cmd = SubmissionEntry::read(1, slba, 8, p1, p2);
            cmd.cid = 600 + i;
            gsq.push(cmd).unwrap();
            read_buf.insert(600 + i, gpa);
        }
        let run2 = ex.run(u64::MAX);

        let mut rcounts = HashMap::new();
        let mut rstatuses = HashMap::new();
        drain(&gcq, &mut rcounts, &mut rstatuses);
        assert_eq!(
            rcounts.len(),
            WRITES as usize,
            "seed {seed:#x}: every read must be answered"
        );
        for (cid, n) in &rcounts {
            assert_eq!(*n, 1, "seed {seed:#x}: read cid {cid} completed {n} times");
        }

        // Data integrity: where both the write and its read-back succeeded,
        // the bytes must round-trip; the store must agree.
        let mut verified = 0;
        for i in 0..WRITES {
            let (slba, data) = &payloads[&i];
            if statuses[&i].is_error() {
                continue;
            }
            assert_eq!(
                &store.read_vec(*slba, 8),
                data,
                "seed {seed:#x}: store mismatch at slba {slba}"
            );
            if !rstatuses[&(600 + i)].is_error() {
                let got = mem.read_vec(read_buf[&(600 + i)], 4096);
                assert_eq!(&got, data, "seed {seed:#x}: read-back mismatch cid {i}");
                verified += 1;
            }
        }
        assert!(
            verified > WRITES as usize / 2,
            "seed {seed:#x}: most round trips must survive chaos ({verified})"
        );

        // Surfaced errors carry correct NVMe statuses; the one DNR read
        // fault must have reached the guest with its DNR bit intact.
        let dnr_reads: Vec<Status> = rstatuses.values().filter(|s| s.dnr()).copied().collect();
        assert_eq!(
            dnr_reads,
            vec![Status::UNRECOVERED_READ.with_dnr()],
            "seed {seed:#x}: the DNR media fault must surface exactly once"
        );

        // The recovery engine actually worked for its living.
        let snap = telemetry.snapshot();
        assert!(snap.get(Metric::FaultsInjected) > 0, "seed {seed:#x}");
        assert!(
            snap.get(Metric::Aborts) >= 3,
            "seed {seed:#x}: 3 dropped completions need 3 deadline aborts, got {}",
            snap.get(Metric::Aborts)
        );
        assert!(
            snap.get(Metric::Retries) >= 3,
            "seed {seed:#x}: aborted attempts must be retried, got {}",
            snap.get(Metric::Retries)
        );
        assert_eq!(
            snap.get(Metric::Completed),
            (WRITES + FLUSHES + WRITES) as u64,
            "seed {seed:#x}"
        );

        // --- Insight: the reconstructed spans must carry the recovery
        // story. With zero ring drops, every Abort/Retry the router
        // counted is attributable to a specific request's span, retried
        // and failed-over requests still reconstruct to completion, and
        // no span completes twice. ---
        shared_wd.with(|w| w.flush(run2.duration + 1));
        assert_eq!(insight_log.drain_missed(), 0, "seed {seed:#x}");
        let spans = insight_log.spans();
        let complete = spans.iter().filter(|s| s.complete).count() as u64;
        assert_eq!(
            complete,
            snap.get(Metric::Completed),
            "seed {seed:#x}: every completed request reconstructs into a span"
        );
        for s in spans.iter().filter(|s| s.complete) {
            assert_eq!(
                s.count(Stage::VcqComplete),
                1,
                "seed {seed:#x}: complete spans carry exactly one terminal completion"
            );
        }
        let retry_events: u64 = spans.iter().map(|s| s.count(Stage::Retry) as u64).sum();
        let abort_events: u64 = spans.iter().map(|s| s.count(Stage::Abort) as u64).sum();
        assert_eq!(
            retry_events,
            snap.get(Metric::Retries),
            "seed {seed:#x}: per-span retry evidence sums to the Retries counter"
        );
        assert_eq!(
            abort_events,
            snap.get(Metric::Aborts),
            "seed {seed:#x}: per-span abort evidence sums to the Aborts counter"
        );
        assert!(
            spans
                .iter()
                .filter(|s| s.has(Stage::Retry))
                .all(|s| s.attempts() >= 2),
            "seed {seed:#x}: retried spans report multiple attempts"
        );
        assert!(
            spans.iter().any(|s| s.has(Stage::Abort) && s.complete),
            "seed {seed:#x}: deadline-aborted requests still reconstruct to completion"
        );
    }
}

#[test]
fn breaker_fails_fast_path_over_to_kernel_and_recovers() {
    // Fast path on a device whose first reads always fail terminally;
    // kernel path on a second, healthy device. The breaker must trip,
    // divert reads to the kernel path, then probe half-open and restore
    // the fast path once the device heals (fault rule exhausted).
    let telemetry = Telemetry::enabled();
    let cost = CostModel::default();
    let plan = FaultPlan::new(0xB2EA_0001).rule(
        FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: true })
            .classes(CmdClass::Read.bit())
            .max_hits(3),
    );

    let mut ssd = SimSsd::new(
        "flaky-primary",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            faults: plan,
            ..Default::default()
        },
    );
    let mut kdev = SimSsd::new(
        "healthy-kdev",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            ..Default::default()
        },
    );

    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 64,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

    let (ksq_p, ksq_c) = SqPair::new(64);
    let (kcq_p, kcq_c) = CqPair::new(64);
    kdev.add_queue(ksq_c, kcq_p, mem.clone(), CompletionMode::Polled);
    let dm = KernelDm::new(
        cost.clone(),
        DmConfig::None,
        vec![(ksq_p, kcq_c)],
        mem.clone(),
    );
    let kpath = RouterKernelPath::new(dm);

    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(128)
        .telemetry(&telemetry)
        .recovery(RecoveryConfig {
            cmd_timeout: 50 * MS, // deadlines out of the way for this test
            max_retries: 0,       // surfacing, not retrying, is under test
            breaker_threshold: 3,
            breaker_cooldown: 5 * MS,
            ..Default::default()
        })
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: Some(Box::new(kpath)),
            notify: None,
            classifier: Classifier::Native(Box::new(AlwaysFast)),
        })
        .build();
    let mut router = engine.into_shards().pop().unwrap();

    let mut now = 0u64;
    let submit = |router: &mut Router,
                  ssd: &mut SimSsd,
                  kdev: &mut SimSsd,
                  now: &mut u64,
                  cids: std::ops::Range<u16>|
     -> Vec<Status> {
        let n = cids.len();
        for cid in cids {
            let mut cmd = SubmissionEntry::read(1, (cid as u64 % 512) * 8, 8, 0x1000, 0);
            cmd.cid = cid;
            gsq.push(cmd).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..200_000 {
            router.poll(*now);
            ssd.poll(*now);
            kdev.poll(*now);
            while let Some(cqe) = gcq.pop() {
                got.push(cqe.status());
            }
            if got.len() >= n {
                break;
            }
            *now += 500;
        }
        assert_eq!(got.len(), n, "batch must complete, got {}", got.len());
        got
    };

    // Batch A: three terminal read faults trip the breaker.
    let a = submit(&mut router, &mut ssd, &mut kdev, &mut now, 0..3);
    assert!(a.iter().all(|s| *s == Status::UNRECOVERED_READ.with_dnr()));
    assert!(
        router.breaker(0).unwrap().is_open(),
        "three consecutive fast-path faults must open the breaker"
    );

    // Batch B, still inside the cooldown: reads fail over to the healthy
    // kernel path and succeed.
    let sent_kq_before = router.stats().sent_kq;
    let b = submit(&mut router, &mut ssd, &mut kdev, &mut now, 10..16);
    assert!(b.iter().all(|s| !s.is_error()), "failover must serve reads");
    let stats = router.stats();
    assert!(stats.failovers >= 6, "got {} failovers", stats.failovers);
    assert_eq!(stats.sent_kq, sent_kq_before + 6);

    // Past the cooldown the next read probes the (now healed) fast path,
    // closing the breaker; fast-path traffic resumes.
    now += 6 * MS;
    let sent_hq_before = router.stats().sent_hq;
    let c = submit(&mut router, &mut ssd, &mut kdev, &mut now, 20..24);
    assert!(c.iter().all(|s| !s.is_error()));
    assert!(
        !router.breaker(0).unwrap().is_open(),
        "a successful half-open probe must close the breaker"
    );
    assert!(
        router.stats().sent_hq > sent_hq_before,
        "fast path restored"
    );
    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::Failovers), router.stats().failovers);

    // --- Insight: every breaker failover is visible as a Failover stage
    // inside the affected request's reconstructed span, and those spans
    // still complete (on the kernel path). ---
    let mut cursor = telemetry.cursor();
    let mut events = Vec::new();
    let missed = telemetry.drain(&mut cursor, &mut events);
    assert_eq!(missed, 0, "ring kept every event of this short run");
    events.sort_by_key(|e| e.ts_ns);
    let mut asm = SpanAssembler::new();
    asm.extend(&events);
    let report = asm.finish();
    let failover_events: u64 = report
        .spans
        .iter()
        .map(|s| s.count(Stage::Failover) as u64)
        .sum();
    assert_eq!(
        failover_events,
        router.stats().failovers,
        "per-span failover evidence sums to the Failovers counter"
    );
    assert!(
        report
            .spans
            .iter()
            .any(|s| s.has(Stage::Failover) && s.complete),
        "failed-over requests reconstruct into complete spans"
    );
}

#[test]
fn dropped_completions_recover_via_deadline_abort_and_retry() {
    // Two reads are swallowed by the device, scheduling nothing: only the
    // router's deadline timer (exposed through `next_event`) can advance
    // virtual time and recover them. The run must terminate with every
    // read successful.
    let telemetry = Telemetry::enabled();
    let plan = FaultPlan::new(0xD20).rule(
        FaultRule::new(FaultSite::Device, FaultAction::DropCompletion)
            .classes(CmdClass::Read.bit())
            .max_hits(2),
    );
    let mut ssd = SimSsd::new(
        "dropper",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            faults: plan,
            ..Default::default()
        },
    );
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 64,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(128)
        .telemetry(&telemetry)
        .recovery(RecoveryConfig {
            cmd_timeout: 5 * MS,
            max_retries: 3,
            backoff_base: 20 * US,
            backoff_max: 100 * US,
            zombie_linger: MS,
            ..Default::default()
        })
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Native(Box::new(AlwaysFast)),
        })
        .build();

    for i in 0..10u16 {
        let mut cmd = SubmissionEntry::read(1, i as u64 * 8, 8, 0x1000, 0);
        cmd.cid = i;
        gsq.push(cmd).unwrap();
    }
    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.run(u64::MAX); // must terminate: timers drive time past deadlines

    let mut seen = 0;
    while let Some(cqe) = gcq.pop() {
        seen += 1;
        assert!(
            !cqe.status().is_error(),
            "cid {} surfaced {:?} instead of recovering",
            cqe.cid,
            cqe.status()
        );
    }
    assert_eq!(seen, 10, "all reads answered exactly once");
    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::Aborts), 2, "one abort per dropped read");
    assert_eq!(snap.get(Metric::Retries), 2, "each abort retried once");
    assert_eq!(snap.get(Metric::LateCompletions), 0);
}

#[test]
fn degraded_replication_logs_dirty_regions_and_resyncs_the_leg() {
    // A replica-link outage for the first 3ms of the run: the replicator
    // must keep acknowledging guest writes (primary-only), log the dirty
    // regions, and — once the link heals — resync the remote leg until it
    // matches the primary byte for byte.
    let telemetry = Telemetry::enabled();
    let cost = CostModel::default();
    let plan = FaultPlan::new(0x2E71).rule(
        FaultRule::new(FaultSite::ReplicaLink, FaultAction::LinkOutage)
            .classes(CmdClass::Write.bit())
            .window(0, 3 * MS),
    );

    let mut ssd = SimSsd::new(
        "primary",
        SsdConfig {
            capacity_lbas: 1 << 20,
            ..Default::default()
        },
    );
    let primary = ssd.store();
    let mut remote = SimSsd::new(
        "remote",
        SsdConfig {
            capacity_lbas: 1 << 20,
            transport: Some(Transport {
                one_way: 10_000,
                per_byte: 0.1,
            }),
            ..Default::default()
        },
    );
    let secondary = remote.store();

    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 26,
        queue_depth: 64,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

    let (nsq_p, nsq_c) = SqPair::new(64);
    let (ncq_p, ncq_c) = CqPair::new(64);
    let (bsq_p, bsq_c) = SqPair::new(64);
    let (bcq_p, bcq_c) = CqPair::new(64);
    let host_mem = Arc::new(GuestMemory::new(1 << 26));
    remote.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);

    let runner = UifRunner::new(
        "uif-replicate",
        cost.clone(),
        nsq_c,
        ncq_p,
        mem.clone(),
        (bsq_p, bcq_c),
        host_mem,
        Box::new(
            ReplicatorUif::new()
                .with_telemetry(telemetry.register_worker())
                .with_faults(&plan),
        ),
        1,
        true,
    );

    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(256)
        .vm(VmBinding {
            vm_id: 0,
            mem: mem.clone(),
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: Some(NotifyBinding {
                nsq: nsq_p,
                ncq: ncq_c,
            }),
            classifier: Classifier::Bpf(build_replicator_classifier(0)),
        })
        .build();

    let mut payloads = Vec::new();
    for i in 0..12u16 {
        let slba = 1000 + i as u64 * 8;
        let data: Vec<u8> = (0..4096).map(|b| (b as u16 ^ (i * 37)) as u8).collect();
        let gpa = mem.alloc(data.len());
        mem.write(gpa, &data);
        let (p1, p2) = nvmetro::mem::build_prps(&mem, gpa, data.len());
        let mut cmd = SubmissionEntry::write(1, slba, 8, p1, p2);
        cmd.cid = i;
        gsq.push(cmd).unwrap();
        payloads.push((slba, data));
    }

    let mut ex = Executor::new();
    ex.add(Box::new(runner));
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.add(Box::new(remote));
    // Must terminate on its own: the replicator's probe timer drives
    // virtual time through the outage window and the resync drain.
    ex.run(u64::MAX);

    let mut seen = 0;
    while let Some(cqe) = gcq.pop() {
        seen += 1;
        assert_eq!(
            cqe.status(),
            Status::SUCCESS,
            "degraded mode must keep serving writes"
        );
    }
    assert_eq!(seen, 12, "every write answered exactly once");

    for (slba, data) in &payloads {
        assert_eq!(&primary.read_vec(*slba, 8), data, "primary leg");
        assert_eq!(
            &secondary.read_vec(*slba, 8),
            data,
            "remote leg must match after resync (slba {slba})"
        );
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::DegradedEnters), 1);
    assert_eq!(snap.get(Metric::DegradedExits), 1);
    assert!(
        snap.get(Metric::ResyncWrites) >= 12,
        "all dirty regions replayed, got {}",
        snap.get(Metric::ResyncWrites)
    );
    assert!(snap.get(Metric::FaultsInjected) > 0);
}
