//! Failure injection: media errors must propagate cleanly through every
//! routing shape — fast path, hooks (Listing 1 line 8), and multicast —
//! without hangs, lost requests, or routing-table leaks.

use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::router::{NotifyBinding, VmBinding};
use nvmetro::core::uif::UifRunner;
use nvmetro::core::{passthrough_program, Partition, VirtualController, VmConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::functions::{build_encryptor_classifier, CryptoBackend, EncryptorUif};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqPair, SqPair, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::Executor;
use std::sync::Arc;

fn flaky_ssd(fail_rate: f64) -> SimSsd {
    SimSsd::new(
        "flaky",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            faults: nvmetro::faults::FaultPlan::media_fail_rate(0x5517, fail_rate),
            ..Default::default()
        },
    )
}

#[test]
fn fast_path_errors_reach_the_guest_without_hangs() {
    let mut ssd = flaky_ssd(0.3);
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 256,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(512)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        })
        .build();
    let submitted = 200u64;
    for i in 0..submitted {
        let mut cmd = SubmissionEntry::read(1, (i % 1000) * 8, 8, 0x1000, 0);
        cmd.cid = i as u16;
        gsq.push(cmd).unwrap();
    }
    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.run(u64::MAX);
    let mut ok = 0u64;
    let mut failed = 0u64;
    while let Some(cqe) = gcq.pop() {
        if cqe.status().is_error() {
            failed += 1;
        } else {
            ok += 1;
        }
    }
    assert_eq!(ok + failed, submitted, "every request must complete");
    assert!(failed > 20, "fail injection must actually fire ({failed})");
    assert!(ok > 20, "some requests must survive ({ok})");
}

#[test]
fn encryption_read_hook_forwards_device_errors() {
    // 100% failing device: every read takes the HOOK_HCQ error branch of
    // Listing 1 and must come back as UNRECOVERED_READ — never reaching
    // the UIF for decryption.
    let cost = CostModel::default();
    let mut ssd = flaky_ssd(1.0);
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 24,
        queue_depth: 64,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let (nsq_p, nsq_c) = SqPair::new(64);
    let (ncq_p, ncq_c) = CqPair::new(64);
    let (bsq_p, bsq_c) = SqPair::new(64);
    let (bcq_p, bcq_c) = CqPair::new(64);
    let host_mem = Arc::new(GuestMemory::new(1 << 20));
    ssd.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);
    let runner = UifRunner::new(
        "uif",
        cost.clone(),
        nsq_c,
        ncq_p,
        mem.clone(),
        (bsq_p, bcq_c),
        host_mem,
        Box::new(EncryptorUif::new(
            CryptoBackend::ModelOnly { sgx: false },
            0,
        )),
        2,
        false,
    );
    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(128)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: Some(NotifyBinding {
                nsq: nsq_p,
                ncq: ncq_c,
            }),
            classifier: Classifier::Bpf(build_encryptor_classifier(0)),
        })
        .build();
    for i in 0..20u64 {
        let mut cmd = SubmissionEntry::read(1, i * 8, 8, 0x1000, 0);
        cmd.cid = i as u16;
        gsq.push(cmd).unwrap();
    }
    let mut ex = Executor::new();
    ex.add(Box::new(runner));
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.run(u64::MAX);
    let mut seen = 0;
    while let Some(cqe) = gcq.pop() {
        seen += 1;
        assert_eq!(
            cqe.status(),
            nvmetro::nvme::Status::UNRECOVERED_READ,
            "classifier must forward the device's error verbatim"
        );
    }
    assert_eq!(seen, 20);
}

#[test]
fn flaky_device_under_encryption_leaves_no_stuck_requests() {
    // Mixed load against a 20%-failing device: the run must drain fully
    // (routing-table entries all freed -> executor quiesces) with every
    // request answered one way or the other.
    let cost = CostModel::default();
    let mut ssd = flaky_ssd(0.2);
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 24,
        queue_depth: 256,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let (nsq_p, nsq_c) = SqPair::new(256);
    let (ncq_p, ncq_c) = CqPair::new(256);
    let (bsq_p, bsq_c) = SqPair::new(256);
    let (bcq_p, bcq_c) = CqPair::new(256);
    let host_mem = Arc::new(GuestMemory::new(1 << 20));
    ssd.add_queue(bsq_c, bcq_p, host_mem.clone(), CompletionMode::Polled);
    let runner = UifRunner::new(
        "uif",
        cost.clone(),
        nsq_c,
        ncq_p,
        mem.clone(),
        (bsq_p, bcq_c),
        host_mem,
        Box::new(EncryptorUif::new(
            CryptoBackend::ModelOnly { sgx: false },
            0,
        )),
        2,
        false,
    );
    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(512)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: Some(NotifyBinding {
                nsq: nsq_p,
                ncq: ncq_c,
            }),
            classifier: Classifier::Bpf(build_encryptor_classifier(0)),
        })
        .build();
    const N: u16 = 150;
    for i in 0..N {
        let mut cmd = if i % 2 == 0 {
            SubmissionEntry::read(1, i as u64 * 8, 8, 0x1000, 0)
        } else {
            SubmissionEntry::write(1, i as u64 * 8, 8, 0x1000, 0)
        };
        cmd.cid = i;
        gsq.push(cmd).unwrap();
    }
    let mut ex = Executor::new();
    ex.add(Box::new(runner));
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.run(u64::MAX); // must terminate: no stuck routing entries
    let mut seen = 0;
    while gcq.pop().is_some() {
        seen += 1;
    }
    assert_eq!(seen, N, "all requests answered despite injected failures");
}
