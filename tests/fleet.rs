//! Fleet-layer integration: per-tenant QoS scheduling, the
//! insight→governor feedback loop, cross-VM read coalescing under
//! chaos, and the full-scale thousands-of-VMs rig.
//!
//! The invariants under test:
//!
//! * **Isolation** — a flooding aggressor tenant gets throttled by the
//!   feedback loop (identified from `QueueStalled` verdicts), the victim
//!   never does, and the victim's tail latency recovers.
//! * **Exactly-once** — cross-VM coalescing fans one device completion
//!   out to every waiting guest, and does so exactly once per submitted
//!   command even with seeded device faults and the recovery engine
//!   retrying/aborting around them.
//! * **Scale** — the rig binds ≥ 1000 VM queue groups through the
//!   sharded engine and runs to completion with the books balanced and
//!   span reconstruction agreeing.

use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro::core::{passthrough_program, Partition, RecoveryConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
use nvmetro::fleet::{
    CoalesceConfig, FeedbackAction, FeedbackConfig, FleetConfig, InsightFeedback, RateLimit,
    TenantGovernor, TenantSpec, FULL_RATE,
};
use nvmetro::insight::{StallWatchdog, WatchdogConfig};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Actor, Executor, Ns, Progress, SimRng, MS, US};
use nvmetro::telemetry::{Metric, Telemetry};
use nvmetro::workloads::{run_fleet, FleetOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NLB: u32 = 8;

/// Counters and (submit-time, latency) samples shared with the harness.
#[derive(Default)]
struct GuestStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    samples: Mutex<Vec<(Ns, u64)>>,
}

impl GuestStats {
    /// p99 latency over samples whose submit time satisfies `keep`.
    fn p99_where(&self, keep: impl Fn(Ns) -> bool) -> u64 {
        let mut lat: Vec<u64> = self
            .samples
            .lock()
            .unwrap()
            .iter()
            .filter(|(at, _)| keep(*at))
            .map(|(_, l)| *l)
            .collect();
        lat.sort_unstable();
        if lat.is_empty() {
            return 0;
        }
        lat[(lat.len() - 1) * 99 / 100]
    }
}

/// Closed-loop reader: keeps `qd` commands in flight until `deadline`.
/// With `period > 0` it is an open-loop paced reader instead (one
/// command per period, still capped at `qd`).
struct Guest {
    name: String,
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    period: Ns,
    next_at: Ns,
    deadline: Ns,
    outstanding: usize,
    next_cid: u16,
    submit_ts: HashMap<u16, Ns>,
    rng: SimRng,
    lba_base: u64,
    lba_slots: u64,
    stats: Arc<GuestStats>,
}

impl Guest {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &str,
        sq: SqProducer,
        cq: CqConsumer,
        qd: usize,
        period: Ns,
        deadline: Ns,
        seed: u64,
        lba_base: u64,
        lba_slots: u64,
    ) -> Self {
        Guest {
            name: name.to_string(),
            sq,
            cq,
            qd,
            period,
            next_at: 0,
            deadline,
            outstanding: 0,
            next_cid: 0,
            submit_ts: HashMap::new(),
            rng: SimRng::new(seed),
            lba_base,
            lba_slots,
            stats: Arc::new(GuestStats::default()),
        }
    }

    fn submit_one(&mut self, now: Ns) -> bool {
        let slot = self.lba_base + self.rng.below(self.lba_slots);
        let mut cmd = SubmissionEntry::read(1, slot * NLB as u64, NLB, 0x1000, 0);
        cmd.cid = self.next_cid;
        if self.sq.push(cmd).is_err() {
            return false;
        }
        self.submit_ts.insert(self.next_cid, now);
        self.next_cid = self.next_cid.wrapping_add(1);
        self.outstanding += 1;
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl Actor for Guest {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while let Some(cqe) = self.cq.pop() {
            self.outstanding -= 1;
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            if cqe.status().is_error() {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = self.submit_ts.remove(&cqe.cid) {
                self.stats.samples.lock().unwrap().push((t, now - t));
            }
            progressed = true;
        }
        if now < self.deadline {
            if self.period == 0 {
                while self.outstanding < self.qd && self.submit_one(now) {
                    progressed = true;
                }
            } else {
                while self.next_at <= now {
                    if self.outstanding < self.qd && self.submit_one(now) {
                        progressed = true;
                    }
                    self.next_at += self.period;
                }
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    fn next_event(&self) -> Option<Ns> {
        if self.period > 0 && self.next_at < self.deadline {
            Some(self.next_at)
        } else {
            None
        }
    }
}

/// One guest's rig plumbing: builds the queue-group rings, registers the
/// host pair on the device, and returns the binding plus guest ends.
fn queue_group(ssd: &mut SimSsd, mem: &Arc<GuestMemory>) -> (QueueBinding, SqProducer, CqConsumer) {
    let (vsq_p, vsq_c) = SqPair::new(256);
    let (vcq_p, vcq_c) = CqPair::new(256);
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let binding = QueueBinding {
        vsqs: vec![vsq_c],
        vcqs: vec![vcq_p],
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify: None,
        classifier: Classifier::Bpf(passthrough_program()),
    };
    (binding, vsq_p, vcq_c)
}

/// A sparse victim and a flooding aggressor on one device: the watchdog
/// flags the victim's stalled queue, the feedback loop identifies and
/// throttles the aggressor — never the victim — and the victim's p99
/// recovers by the end of the run.
#[test]
fn noisy_neighbor_feedback_throttles_aggressor_not_victim() {
    const VICTIM: u32 = 0;
    const AGGRESSOR: u32 = 1;
    let duration = 14 * MS;

    let telemetry = Telemetry::enabled();
    // A device the aggressor can saturate: its queue-depth-128 flood
    // builds a backlog the victim's sparse reads wait behind.
    let cost = CostModel {
        ssd_channels: 4,
        ssd_read_lat: 20_000,
        ssd_cmd_overhead: 500,
        ssd_cmd_overhead_write: 500,
        ssd_jitter: 0.0,
        ..Default::default()
    };
    let capacity_lbas = 1 << 16;
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas,
            cost: cost.clone(),
            move_data: false,
            seed: 11,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));

    let governor = TenantGovernor::new();
    // Generous buckets that do not bind at full rate: the throttle only
    // bites once the feedback loop scales the permille down.
    let rate = RateLimit {
        iops: 400_000,
        burst: 32,
    };
    let fleet_cfg = FleetConfig {
        governor: governor.clone(),
        ..Default::default()
    }
    .tenant(TenantSpec {
        tenant: VICTIM,
        weight: 1,
        rate: Some(rate),
    })
    .tenant(TenantSpec {
        tenant: AGGRESSOR,
        weight: 1,
        rate: Some(rate),
    });

    let mut ex = Executor::new();
    let mut builder = RouterBuilder::new("router")
        .cost(cost)
        .telemetry(&telemetry)
        .fleet(fleet_cfg);
    let mut guests = Vec::new();
    for vm in [VICTIM, AGGRESSOR] {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem);
        builder = builder.vm(EngineVm {
            vm_id: vm,
            mem: mem.clone(),
            partition: Partition::whole(capacity_lbas),
            queues: vec![binding],
        });
        let guest = if vm == VICTIM {
            // One read every 500 µs, at most one outstanding: any window
            // where it waits > the stall grace shows up as QueueStalled.
            Guest::new("victim", sq, cq, 1, 500 * US, duration, 21, 0, 512)
        } else {
            Guest::new("aggressor", sq, cq, 128, 0, duration, 22, 1024, 4096)
        };
        guests.push(guest.stats.clone());
        ex.add(Box::new(guest));
    }
    builder.build().run_virtual(&mut ex);
    ex.add(Box::new(ssd));

    let (watchdog, health) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: 200 * US,
            stall_grace: 100 * US,
            ..Default::default()
        },
    );
    ex.add(Box::new(watchdog));
    let (feedback, actions) = InsightFeedback::new(
        health.clone(),
        governor.clone(),
        FeedbackConfig {
            interval: 400 * US,
            // The victim's stall is intermittent (it only keeps one
            // request open), so a single unhealthy window must count.
            trigger_after: 1,
            relax_after: 64, // don't relax inside this run
            step_permille: 400,
            floor_permille: 100,
        },
    );
    ex.add(Box::new(feedback));
    // The drain margin covers the throttled aggressor's final backlog
    // (~128 in flight at a floor-rate trickle).
    ex.run(duration + 6 * MS);

    // The watchdog saw the victim stall and the loop throttled exactly
    // the aggressor.
    assert!(health.saw_stall(), "the victim's queue never stalled");
    let acted = actions.actions();
    assert!(!acted.is_empty(), "feedback loop never actuated");
    for a in &acted {
        match a {
            FeedbackAction::Tighten { tenant, .. } | FeedbackAction::Relax { tenant, .. } => {
                assert_eq!(
                    *tenant, AGGRESSOR,
                    "only the aggressor may be touched: {a:?}"
                )
            }
        }
    }
    assert!(
        governor.throttle_of(AGGRESSOR) < FULL_RATE,
        "aggressor must end the run throttled"
    );
    assert_eq!(
        governor.throttle_of(VICTIM),
        FULL_RATE,
        "the victim must never be throttled"
    );
    let snap = telemetry.snapshot();
    assert!(
        snap.get(Metric::ThrottleApplied) > 0,
        "the tightened bucket must actually deny admissions"
    );

    // Victim p99 before the loop engages vs after it has converged: the
    // isolation bound is a 2x recovery and a sub-300µs late tail.
    let victim = &guests[VICTIM as usize];
    let early = victim.p99_where(|at| at < 3 * MS);
    let late = victim.p99_where(|at| at >= duration - 4 * MS);
    assert!(
        early > 200 * US,
        "rig not contended enough to mean anything: early p99 {early}ns"
    );
    assert!(
        late < 150 * US && late * 2 < early,
        "victim p99 must recover once the aggressor is throttled: early {early}ns late {late}ns"
    );
    // Books still balance for both tenants (no lost or doubled I/O).
    for g in &guests {
        assert_eq!(
            g.completed.load(Ordering::Relaxed),
            g.submitted.load(Ordering::Relaxed)
        );
    }
}

/// Eight guests hammer a four-slot hot set through the coalescing
/// window while a seeded fault plan injects media errors, stalls, and
/// dropped completions, with the recovery engine aborting/retrying
/// around them. Every guest must see exactly one completion per
/// submitted command, confirmed by span reconstruction, across seeds.
#[test]
fn coalescing_is_exactly_once_under_chaos() {
    for seed in [0xA11CEu64, 0xB0B, 0xC0DE] {
        let duration = 6 * MS;
        let telemetry = Telemetry::enabled();
        let cost = CostModel {
            ssd_channels: 8,
            ssd_read_lat: 20_000,
            ssd_cmd_overhead: 500,
            ssd_cmd_overhead_write: 500,
            ssd_jitter: 0.0,
            ..Default::default()
        };
        let plan = FaultPlan::new(seed)
            .rule(
                FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: true })
                    .classes(CmdClass::Read.bit())
                    .probability(0.02),
            )
            .rule(
                FaultRule::new(FaultSite::Device, FaultAction::Stall(300 * US))
                    .classes(CmdClass::Read.bit())
                    .probability(0.02),
            )
            .rule(
                FaultRule::new(FaultSite::Device, FaultAction::DropCompletion)
                    .classes(CmdClass::Read.bit())
                    .probability(0.005)
                    .max_hits(20),
            );
        let capacity_lbas = 1 << 16;
        let mut ssd = SimSsd::new(
            "ssd",
            SsdConfig {
                capacity_lbas,
                cost: cost.clone(),
                move_data: false,
                seed,
                faults: plan,
                ..Default::default()
            },
        );
        let mem = Arc::new(GuestMemory::new(1 << 20));

        let mut ex = Executor::new();
        let mut builder = RouterBuilder::new("router")
            .cost(cost)
            .telemetry(&telemetry)
            .recovery(RecoveryConfig {
                cmd_timeout: MS,
                ..Default::default()
            })
            .coalesce(CoalesceConfig::default());
        let mut guests = Vec::new();
        for vm in 0..8u32 {
            let (binding, sq, cq) = queue_group(&mut ssd, &mem);
            builder = builder.vm(EngineVm {
                vm_id: vm,
                mem: mem.clone(),
                partition: Partition::whole(capacity_lbas),
                queues: vec![binding],
            });
            // All guests read the same 4 hot slots: maximal duplication,
            // so faults land on leaders with parked followers.
            let guest = Guest::new(
                &format!("guest-{vm}"),
                sq,
                cq,
                8,
                0,
                duration,
                seed ^ (vm as u64) << 8,
                0,
                4,
            );
            guests.push(guest.stats.clone());
            ex.add(Box::new(guest));
        }
        builder.build().run_virtual(&mut ex);
        ex.add(Box::new(ssd));

        let (watchdog, health) = StallWatchdog::new(
            &telemetry,
            WatchdogConfig {
                interval: 200 * US,
                keep_spans: true,
                ..Default::default()
            },
        );
        ex.add(Box::new(watchdog));
        ex.run(u64::MAX);

        let mut total = 0u64;
        for (vm, g) in guests.iter().enumerate() {
            let submitted = g.submitted.load(Ordering::Relaxed);
            let completed = g.completed.load(Ordering::Relaxed);
            assert!(submitted > 100, "seed {seed:#x}: guest {vm} too idle");
            assert_eq!(
                completed, submitted,
                "seed {seed:#x}: guest {vm} lost or doubled completions"
            );
            total += completed;
        }
        let snap = telemetry.snapshot();
        assert!(
            snap.get(Metric::CoalescedReads) > 0,
            "seed {seed:#x}: hot set never coalesced"
        );
        assert_eq!(
            snap.get(Metric::CoalescedReads),
            snap.get(Metric::CoalesceFanout),
            "seed {seed:#x}: parked followers must all fan back out"
        );
        // Span reconstruction agrees: one terminal per span, full
        // coverage of what the guests observed.
        let stats = health.stats();
        assert_eq!(health.drain_missed(), 0, "seed {seed:#x}: ring overflow");
        assert_eq!(
            stats.duplicate_terminals, 0,
            "seed {seed:#x}: a span saw two terminals"
        );
        assert_eq!(
            stats.spans_completed, total,
            "seed {seed:#x}: span coverage mismatch"
        );
    }
}

/// The full-scale rig: ≥ 1000 single-group VMs bound through the
/// sharded engine, Zipf-skewed bursty load, scheduler + coalescing +
/// feedback all on, exactly-once verified by span reconstruction.
#[test]
fn fleet_rig_binds_a_thousand_queue_groups_exactly_once() {
    let opts = FleetOptions {
        tenants: 1024,
        shards: 4,
        duration: 6 * MS,
        total_iops: 1_000_000.0,
        ..Default::default()
    };
    let r = run_fleet(&opts);
    assert!(r.tenants >= 1000, "rig must bind >= 1000 VM queue groups");
    assert!(
        r.submitted > 4_000,
        "rig too idle: {} submitted",
        r.submitted
    );
    assert_eq!(r.completed, r.submitted, "lost or doubled completions");
    assert_eq!(r.errors, 0);
    assert_eq!(r.drain_missed, 0, "trace ring overflow poisons the proof");
    assert_eq!(r.duplicate_terminals, 0, "a span saw two terminals");
    assert_eq!(r.span_completed, r.completed, "span coverage mismatch");
    assert!(r.exactly_once);
    assert!(r.coalesced > 0, "the shared hot set never coalesced");
    assert_eq!(r.fanned_out, r.coalesced);
    assert_eq!(r.per_tenant_completed.len(), 1024);
    // The Zipf tail is long: in a 6 ms window only tenants whose share
    // amounts to ≥ ~1 expected arrival can show up at all, but that must
    // still be a broad slice of the fleet, not just the whales.
    let active = r.per_tenant_completed.iter().filter(|c| **c > 0).count();
    assert!(active > 400, "only {active}/1024 tenants saw service");
}

/// Satellite: per-tenant scheduler state is visible through
/// `EngineStats` (tokens, deficit, throttle status) and the table
/// renderer, and the router-level counters move when buckets deny.
#[test]
fn engine_stats_expose_per_tenant_state() {
    let telemetry = Telemetry::enabled();
    let cost = CostModel::default();
    let capacity_lbas = 1 << 16;
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas,
            cost: cost.clone(),
            move_data: false,
            seed: 3,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let governor = TenantGovernor::new();
    let fleet_cfg = FleetConfig {
        governor: governor.clone(),
        ..Default::default()
    }
    .tenant(TenantSpec {
        tenant: 0,
        weight: 2,
        rate: None,
    })
    .tenant(TenantSpec {
        tenant: 1,
        weight: 1,
        // A bucket so small the burst below must hit it.
        rate: Some(RateLimit {
            iops: 1000,
            burst: 1,
        }),
    });

    let mut builder = RouterBuilder::new("router")
        .cost(cost)
        .telemetry(&telemetry)
        .fleet(fleet_cfg);
    let mut ends = Vec::new();
    for vm in 0..2u32 {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem);
        builder = builder.vm(EngineVm {
            vm_id: vm,
            mem: mem.clone(),
            partition: Partition::whole(capacity_lbas),
            queues: vec![binding],
        });
        ends.push((sq, cq));
    }
    let engine = builder.build();

    // Engine-level view before any traffic: both tenants registered,
    // weights and rates surfaced, nobody throttled.
    let stats = engine.stats();
    assert_eq!(stats.tenants.len(), 2);
    assert!(!stats.tenant_throttled(0));
    assert!(!stats.tenant_throttled(1));
    assert_eq!(stats.tenant_admitted(0), 0);
    let table = stats.tenant_table();
    assert!(
        table.contains("tenant") && table.contains("throttle"),
        "{table}"
    );

    // Drive the shard directly: tenant 1's one-token bucket must deny
    // under a 10-deep burst, then drain as tokens refill.
    let mut router = engine.into_shards().pop().unwrap();
    for (sq, _) in &mut ends {
        for cid in 0..10u16 {
            let mut cmd = SubmissionEntry::read(1, (cid as u64) * 8, NLB, 0x1000, 0);
            cmd.cid = cid;
            sq.push(cmd).unwrap();
        }
    }
    let mut now = 0u64;
    let mut done = [0usize; 2];
    for _ in 0..2_000_000 {
        router.poll(now);
        ssd.poll(now);
        for (vm, (_, cq)) in ends.iter_mut().enumerate() {
            while cq.pop().is_some() {
                done[vm] += 1;
            }
        }
        if done == [10, 10] {
            break;
        }
        now += 10 * US;
    }
    assert_eq!(done, [10, 10], "paced drain must still complete everything");
    assert!(router.stats().sched_throttled > 0, "bucket never denied");
    let view = router.fleet_view();
    assert_eq!(view.len(), 2);
    let t1 = view.iter().find(|v| v.tenant == 1).unwrap();
    assert_eq!(t1.admitted, 10);
    assert!(t1.throttled > 0);
    assert_eq!(t1.throttle_permille, FULL_RATE);
    let t0 = view.iter().find(|v| v.tenant == 0).unwrap();
    assert_eq!(t0.admitted, 10);
    assert_eq!(t0.throttled, 0);
    assert_eq!(t0.weight, 2);
}
