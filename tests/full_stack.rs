//! Workspace-level integration tests: the complete evaluation pipeline
//! through the facade crate, checking the paper's headline *shapes* hold
//! on small runs.

use nvmetro::sim::MS;
use nvmetro::workloads::fio::{FioConfig, FioMode};
use nvmetro::workloads::rig::{RigOptions, SolutionKind};
use nvmetro::workloads::runner::run_fio;
use nvmetro::workloads::ycsb::{run_ycsb, YcsbWorkload};

fn cfg(bs: usize, mode: FioMode, qd: u32, jobs: usize) -> FioConfig {
    let mut c = FioConfig::new(bs, mode, qd, jobs);
    c.duration = 40 * MS;
    c
}

#[test]
fn nvmetro_matches_mdev_within_a_few_percent() {
    // §V-B: "NVMetro with a dummy eBPF classifier performs similarly to
    // MDev-NVMe" — the routing layer must not cost real throughput.
    let opts = RigOptions::default();
    for qd in [1u32, 128] {
        let c = cfg(512, FioMode::RandRead, qd, 1);
        let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
        let mdev = run_fio(SolutionKind::Mdev, &c, &opts);
        let ratio = nvmetro.iops / mdev.iops;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "qd={qd}: NVMetro/MDev ratio {ratio}"
        );
    }
}

#[test]
fn nvmetro_tracks_passthrough_throughput() {
    let opts = RigOptions::default();
    let c = cfg(512, FioMode::RandRead, 128, 4);
    let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
    let pass = run_fio(SolutionKind::Passthrough, &c, &opts);
    let ratio = nvmetro.iops / pass.iops;
    assert!(
        ratio > 0.85,
        "NVMetro should track passthrough under load, got {ratio}"
    );
}

#[test]
fn qemu_catches_up_at_high_queue_depth() {
    // §V-B: QEMU is far behind at QD1 but regains at QD128 16K where
    // batching + merging amortize its per-request costs.
    let opts = RigOptions::default();
    let qd1 = cfg(512, FioMode::RandRead, 1, 1);
    let n1 = run_fio(SolutionKind::Nvmetro, &qd1, &opts);
    let q1 = run_fio(SolutionKind::Qemu, &qd1, &opts);
    assert!(n1.iops / q1.iops > 1.8, "QD1: {} vs {}", n1.iops, q1.iops);

    let hi = cfg(16 * 1024, FioMode::SeqRead, 128, 1);
    let nh = run_fio(SolutionKind::Nvmetro, &hi, &opts);
    let qh = run_fio(SolutionKind::Qemu, &hi, &opts);
    assert!(
        qh.iops > nh.iops * 0.95,
        "16K/QD128: QEMU {} should catch (or beat) NVMetro {}",
        qh.iops,
        nh.iops
    );
}

#[test]
fn latency_ordering_matches_fig4() {
    let opts = RigOptions::default();
    let mut c = cfg(512, FioMode::RandRead, 1, 1);
    c.rate_iops = Some(10_000);
    c.duration = 60 * MS;
    let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
    let pass = run_fio(SolutionKind::Passthrough, &c, &opts);
    let vhost = run_fio(SolutionKind::Vhost, &c, &opts);
    let qemu = run_fio(SolutionKind::Qemu, &c, &opts);
    let spdk = run_fio(SolutionKind::Spdk, &c, &opts);
    // Polling paths cluster; passthrough pays interrupt forwarding; vhost
    // pays wakeups; QEMU pays double handoffs.
    assert!(pass.median_ns > nvmetro.median_ns, "passthrough > NVMetro");
    assert!(vhost.median_ns > pass.median_ns, "vhost > passthrough");
    assert!(qemu.median_ns > vhost.median_ns, "QEMU worst");
    let spdk_ratio = spdk.median_ns as f64 / nvmetro.median_ns as f64;
    assert!(
        (0.8..=1.2).contains(&spdk_ratio),
        "SPDK ~ NVMetro median, got {spdk_ratio}"
    );
}

#[test]
fn encryption_beats_dm_crypt_and_loses_sgx_at_scale() {
    let opts = RigOptions::default();
    // Low parallelism: NVMetro encryptor ahead of dm-crypt.
    let c1 = cfg(16 * 1024, FioMode::SeqRead, 1, 1);
    let e1 = run_fio(SolutionKind::NvmetroEncrypt { sgx: false }, &c1, &opts);
    let d1 = run_fio(SolutionKind::DmCrypt, &c1, &opts);
    assert!(
        e1.iops > d1.iops * 1.2,
        "QD1: encryptor {} vs dm-crypt {} (paper 1.5x)",
        e1.iops,
        d1.iops
    );
    // High parallelism: the gap widens; SGX falls behind non-SGX.
    let c2 = cfg(16 * 1024, FioMode::SeqRead, 128, 4);
    let e2 = run_fio(SolutionKind::NvmetroEncrypt { sgx: false }, &c2, &opts);
    let d2 = run_fio(SolutionKind::DmCrypt, &c2, &opts);
    let s2 = run_fio(SolutionKind::NvmetroEncrypt { sgx: true }, &c2, &opts);
    assert!(
        e2.iops > d2.iops * 2.0,
        "QD128/4j: encryptor {} vs dm-crypt {} (paper 3.2x)",
        e2.iops,
        d2.iops
    );
    assert!(
        s2.iops < e2.iops * 0.85,
        "SGX {} must trail non-SGX {} at high load",
        s2.iops,
        e2.iops
    );
}

#[test]
fn replication_reads_outrun_dm_mirror() {
    let opts = RigOptions::default();
    let c = cfg(512, FioMode::RandRead, 128, 4);
    let n = run_fio(SolutionKind::NvmetroReplicate, &c, &opts);
    let d = run_fio(SolutionKind::DmMirror, &c, &opts);
    assert!(
        n.iops > d.iops * 1.5,
        "reads: NVMetro repl {} vs dm-mirror {} (paper 3.2x)",
        n.iops,
        d.iops
    );
}

#[test]
fn cpu_ordering_matches_fig11() {
    let opts = RigOptions::default();
    let c = cfg(512, FioMode::RandRead, 128, 4);
    let pass = run_fio(SolutionKind::Passthrough, &c, &opts);
    let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
    let vhost = run_fio(SolutionKind::Vhost, &c, &opts);
    let spdk = run_fio(SolutionKind::Spdk, &c, &opts);
    assert!(
        pass.cpu_cores < vhost.cpu_cores,
        "passthrough must be cheapest"
    );
    assert!(
        vhost.cpu_cores < nvmetro.cpu_cores,
        "vhost second-cheapest (no polling)"
    );
    assert!(
        spdk.cpu_cores >= nvmetro.cpu_cores,
        "SPDK most expensive under load"
    );
}

#[test]
fn ycsb_single_job_compresses_solution_differences() {
    let opts = RigOptions::default();
    let dur = 40 * MS;
    let pass1 = run_ycsb(SolutionKind::Passthrough, YcsbWorkload::A, 1, dur, &opts);
    let qemu1 = run_ycsb(SolutionKind::Qemu, YcsbWorkload::A, 1, dur, &opts);
    let gap1 = pass1.kops_per_sec / qemu1.kops_per_sec;
    let pass4 = run_ycsb(SolutionKind::Passthrough, YcsbWorkload::A, 4, dur, &opts);
    let qemu4 = run_ycsb(SolutionKind::Qemu, YcsbWorkload::A, 4, dur, &opts);
    let gap4 = pass4.kops_per_sec / qemu4.kops_per_sec;
    assert!(
        gap4 > gap1,
        "the gap must widen when I/O bound: 1 job {gap1:.2} vs 4 jobs {gap4:.2}"
    );
}

/// Tentpole integration check: a router wired with all three paths and an
/// enabled telemetry registry must (a) mirror every `RouterStats` counter
/// into the telemetry counters, and (b) reassemble a complete lifecycle —
/// ingress through path service to VCQ completion — for a request on each
/// route.
#[test]
fn telemetry_traces_all_three_routes() {
    use nvmetro::core::classify::{
        verdict_bits, Classifier, NativeClassifier, RequestCtx, Verdict,
    };
    use nvmetro::core::engine::RouterBuilder;
    use nvmetro::core::router::{NotifyBinding, VmBinding};
    use nvmetro::core::uif::{Uif, UifDisposition, UifRequest, UifRunner};
    use nvmetro::core::{Partition, VirtualController, VmConfig};
    use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
    use nvmetro::kernel::{DmConfig, KernelDm, RouterKernelPath};
    use nvmetro::mem::GuestMemory;
    use nvmetro::nvme::{CqPair, NvmOpcode, SqPair, Status, SubmissionEntry};
    use nvmetro::sim::cost::CostModel;
    use nvmetro::sim::Actor;
    use nvmetro::telemetry::{Metric, Stage, Telemetry};
    use std::sync::Arc;

    /// Routes by opcode: reads fast, writes kernel, flushes notify.
    struct ByOpcode;
    impl NativeClassifier for ByOpcode {
        fn classify(&mut self, ctx: &mut RequestCtx) -> Verdict {
            Verdict(match ctx.opcode() {
                op if op == NvmOpcode::Read as u8 => {
                    verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ
                }
                op if op == NvmOpcode::Write as u8 => {
                    verdict_bits::SEND_KQ | verdict_bits::WILL_COMPLETE_KQ
                }
                _ => verdict_bits::SEND_NQ | verdict_bits::WILL_COMPLETE_NQ,
            })
        }
    }

    /// A UIF that acknowledges everything immediately.
    struct AckUif;
    impl Uif for AckUif {
        fn work(&mut self, _req: &mut UifRequest<'_>) -> UifDisposition {
            UifDisposition::Respond(Status::SUCCESS)
        }
    }

    let telemetry = Telemetry::enabled();
    let cost = CostModel::default();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker());

    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 64,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();

    // Fast path.
    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);

    // Kernel path: dm-linear over its own device queue.
    let (ksq_p, ksq_c) = SqPair::new(64);
    let (kcq_p, kcq_c) = CqPair::new(64);
    ssd.add_queue(ksq_c, kcq_p, mem.clone(), CompletionMode::Polled);
    let dm = KernelDm::new(
        cost.clone(),
        DmConfig::Linear { offset: 0 },
        vec![(ksq_p, kcq_c)],
        mem.clone(),
    );
    let mut kpath = RouterKernelPath::new(dm);
    kpath.attach_telemetry(telemetry.register_worker());

    // Notify path: an immediately-acknowledging UIF.
    let (nsq_p, nsq_c) = SqPair::new(64);
    let (ncq_p, ncq_c) = CqPair::new(64);
    let host_mem = Arc::new(GuestMemory::new(1 << 20));
    let (bsq_p, _bsq_c) = SqPair::new(64);
    let (_bcq_p, bcq_c) = CqPair::new(64);
    let mut uif = UifRunner::new(
        "uif-ack",
        cost.clone(),
        nsq_c,
        ncq_p,
        mem.clone(),
        (bsq_p, bcq_c),
        host_mem,
        Box::new(AckUif),
        1,
        false,
    );
    uif.attach_telemetry(telemetry.register_worker());

    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(256)
        .telemetry(&telemetry)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: Some(Box::new(kpath)),
            notify: Some(NotifyBinding {
                nsq: nsq_p,
                ncq: ncq_c,
            }),
            classifier: Classifier::Native(Box::new(ByOpcode)),
        })
        .build();
    let mut router = engine.into_shards().pop().unwrap();

    // One request per route, all in flight together so tags stay distinct.
    let mut read = SubmissionEntry::read(1, 0, 8, 0x1000, 0);
    read.cid = 10;
    let mut write = SubmissionEntry::write(1, 64, 8, 0x1000, 0);
    write.cid = 11;
    let mut flush = SubmissionEntry::flush(1);
    flush.cid = 12;
    gsq.push(read).unwrap();
    gsq.push(write).unwrap();
    gsq.push(flush).unwrap();

    // Drive the actors by hand (fixed virtual-time steps) so the router
    // stays accessible for the RouterStats comparison afterwards.
    let mut completions = Vec::new();
    let mut now = 0u64;
    while completions.len() < 3 && now < 50_000_000 {
        router.poll(now);
        ssd.poll(now);
        uif.poll(now);
        while let Some(cqe) = gcq.pop() {
            completions.push(cqe);
        }
        now += 200;
    }
    assert_eq!(completions.len(), 3, "all three routes must complete");
    assert!(completions.iter().all(|c| !c.status().is_error()));

    // (a) Telemetry counters agree with the router's own stats.
    let stats = router.stats();
    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::Accepted), stats.accepted);
    assert_eq!(snap.get(Metric::ClassifierRuns), stats.classifier_runs);
    assert_eq!(snap.get(Metric::SentFast), stats.sent_hq);
    assert_eq!(snap.get(Metric::SentKernel), stats.sent_kq);
    assert_eq!(snap.get(Metric::SentNotify), stats.sent_nq);
    assert_eq!(snap.get(Metric::Multicasts), stats.multicasts);
    assert_eq!(snap.get(Metric::Completed), stats.completed);
    assert_eq!(snap.get(Metric::Errors), stats.errors);
    assert_eq!(snap.get(Metric::Spurious), stats.spurious);
    assert_eq!(snap.get(Metric::SentFast), 1);
    assert_eq!(snap.get(Metric::SentKernel), 1);
    assert_eq!(snap.get(Metric::SentNotify), 1);
    assert_eq!(
        snap.get(Metric::DeviceIos),
        2,
        "fast read + DM-backed write"
    );
    assert_eq!(snap.get(Metric::KernelIos), 1);
    assert_eq!(snap.get(Metric::UifRequests), 1);
    assert_eq!(snap.get(Metric::UifResponses), 1);

    // (b) Each route's lifecycle reassembles with its full stage sequence.
    let requests = snap.requests();
    assert_eq!(requests.len(), 3);
    let expected = [
        Stage::DeviceService, // read → fast
        Stage::KernelService, // write → kernel
        Stage::UifService,    // flush → notify
    ];
    for (req, service) in requests.iter().zip(expected) {
        let stages = snap.lifecycle_stages(req.vm, req.vsq, req.tag);
        for want in [
            Stage::VsqFetch,
            Stage::Classified,
            Stage::Dispatched,
            service,
            Stage::VcqComplete,
        ] {
            assert!(
                stages.contains(&want),
                "route with {service:?}: missing {want:?} in {stages:?}"
            );
        }
    }

    // Per-route latency histograms each saw exactly one request.
    use nvmetro::telemetry::Route;
    for r in Route::ALL {
        assert_eq!(snap.route_hist(r).count(), 1, "route {}", r.name());
    }
}
