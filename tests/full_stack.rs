//! Workspace-level integration tests: the complete evaluation pipeline
//! through the facade crate, checking the paper's headline *shapes* hold
//! on small runs.

use nvmetro::sim::MS;
use nvmetro::workloads::fio::{FioConfig, FioMode};
use nvmetro::workloads::rig::{RigOptions, SolutionKind};
use nvmetro::workloads::runner::run_fio;
use nvmetro::workloads::ycsb::{run_ycsb, YcsbWorkload};

fn cfg(bs: usize, mode: FioMode, qd: u32, jobs: usize) -> FioConfig {
    let mut c = FioConfig::new(bs, mode, qd, jobs);
    c.duration = 40 * MS;
    c
}

#[test]
fn nvmetro_matches_mdev_within_a_few_percent() {
    // §V-B: "NVMetro with a dummy eBPF classifier performs similarly to
    // MDev-NVMe" — the routing layer must not cost real throughput.
    let opts = RigOptions::default();
    for qd in [1u32, 128] {
        let c = cfg(512, FioMode::RandRead, qd, 1);
        let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
        let mdev = run_fio(SolutionKind::Mdev, &c, &opts);
        let ratio = nvmetro.iops / mdev.iops;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "qd={qd}: NVMetro/MDev ratio {ratio}"
        );
    }
}

#[test]
fn nvmetro_tracks_passthrough_throughput() {
    let opts = RigOptions::default();
    let c = cfg(512, FioMode::RandRead, 128, 4);
    let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
    let pass = run_fio(SolutionKind::Passthrough, &c, &opts);
    let ratio = nvmetro.iops / pass.iops;
    assert!(
        ratio > 0.85,
        "NVMetro should track passthrough under load, got {ratio}"
    );
}

#[test]
fn qemu_catches_up_at_high_queue_depth() {
    // §V-B: QEMU is far behind at QD1 but regains at QD128 16K where
    // batching + merging amortize its per-request costs.
    let opts = RigOptions::default();
    let qd1 = cfg(512, FioMode::RandRead, 1, 1);
    let n1 = run_fio(SolutionKind::Nvmetro, &qd1, &opts);
    let q1 = run_fio(SolutionKind::Qemu, &qd1, &opts);
    assert!(n1.iops / q1.iops > 1.8, "QD1: {} vs {}", n1.iops, q1.iops);

    let hi = cfg(16 * 1024, FioMode::SeqRead, 128, 1);
    let nh = run_fio(SolutionKind::Nvmetro, &hi, &opts);
    let qh = run_fio(SolutionKind::Qemu, &hi, &opts);
    assert!(
        qh.iops > nh.iops * 0.95,
        "16K/QD128: QEMU {} should catch (or beat) NVMetro {}",
        qh.iops,
        nh.iops
    );
}

#[test]
fn latency_ordering_matches_fig4() {
    let opts = RigOptions::default();
    let mut c = cfg(512, FioMode::RandRead, 1, 1);
    c.rate_iops = Some(10_000);
    c.duration = 60 * MS;
    let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
    let pass = run_fio(SolutionKind::Passthrough, &c, &opts);
    let vhost = run_fio(SolutionKind::Vhost, &c, &opts);
    let qemu = run_fio(SolutionKind::Qemu, &c, &opts);
    let spdk = run_fio(SolutionKind::Spdk, &c, &opts);
    // Polling paths cluster; passthrough pays interrupt forwarding; vhost
    // pays wakeups; QEMU pays double handoffs.
    assert!(pass.median_ns > nvmetro.median_ns, "passthrough > NVMetro");
    assert!(vhost.median_ns > pass.median_ns, "vhost > passthrough");
    assert!(qemu.median_ns > vhost.median_ns, "QEMU worst");
    let spdk_ratio = spdk.median_ns as f64 / nvmetro.median_ns as f64;
    assert!(
        (0.8..=1.2).contains(&spdk_ratio),
        "SPDK ~ NVMetro median, got {spdk_ratio}"
    );
}

#[test]
fn encryption_beats_dm_crypt_and_loses_sgx_at_scale() {
    let opts = RigOptions::default();
    // Low parallelism: NVMetro encryptor ahead of dm-crypt.
    let c1 = cfg(16 * 1024, FioMode::SeqRead, 1, 1);
    let e1 = run_fio(SolutionKind::NvmetroEncrypt { sgx: false }, &c1, &opts);
    let d1 = run_fio(SolutionKind::DmCrypt, &c1, &opts);
    assert!(
        e1.iops > d1.iops * 1.2,
        "QD1: encryptor {} vs dm-crypt {} (paper 1.5x)",
        e1.iops,
        d1.iops
    );
    // High parallelism: the gap widens; SGX falls behind non-SGX.
    let c2 = cfg(16 * 1024, FioMode::SeqRead, 128, 4);
    let e2 = run_fio(SolutionKind::NvmetroEncrypt { sgx: false }, &c2, &opts);
    let d2 = run_fio(SolutionKind::DmCrypt, &c2, &opts);
    let s2 = run_fio(SolutionKind::NvmetroEncrypt { sgx: true }, &c2, &opts);
    assert!(
        e2.iops > d2.iops * 2.0,
        "QD128/4j: encryptor {} vs dm-crypt {} (paper 3.2x)",
        e2.iops,
        d2.iops
    );
    assert!(
        s2.iops < e2.iops * 0.85,
        "SGX {} must trail non-SGX {} at high load",
        s2.iops,
        e2.iops
    );
}

#[test]
fn replication_reads_outrun_dm_mirror() {
    let opts = RigOptions::default();
    let c = cfg(512, FioMode::RandRead, 128, 4);
    let n = run_fio(SolutionKind::NvmetroReplicate, &c, &opts);
    let d = run_fio(SolutionKind::DmMirror, &c, &opts);
    assert!(
        n.iops > d.iops * 1.5,
        "reads: NVMetro repl {} vs dm-mirror {} (paper 3.2x)",
        n.iops,
        d.iops
    );
}

#[test]
fn cpu_ordering_matches_fig11() {
    let opts = RigOptions::default();
    let c = cfg(512, FioMode::RandRead, 128, 4);
    let pass = run_fio(SolutionKind::Passthrough, &c, &opts);
    let nvmetro = run_fio(SolutionKind::Nvmetro, &c, &opts);
    let vhost = run_fio(SolutionKind::Vhost, &c, &opts);
    let spdk = run_fio(SolutionKind::Spdk, &c, &opts);
    assert!(
        pass.cpu_cores < vhost.cpu_cores,
        "passthrough must be cheapest"
    );
    assert!(
        vhost.cpu_cores < nvmetro.cpu_cores,
        "vhost second-cheapest (no polling)"
    );
    assert!(
        spdk.cpu_cores >= nvmetro.cpu_cores,
        "SPDK most expensive under load"
    );
}

#[test]
fn ycsb_single_job_compresses_solution_differences() {
    let opts = RigOptions::default();
    let dur = 40 * MS;
    let pass1 = run_ycsb(SolutionKind::Passthrough, YcsbWorkload::A, 1, dur, &opts);
    let qemu1 = run_ycsb(SolutionKind::Qemu, YcsbWorkload::A, 1, dur, &opts);
    let gap1 = pass1.kops_per_sec / qemu1.kops_per_sec;
    let pass4 = run_ycsb(SolutionKind::Passthrough, YcsbWorkload::A, 4, dur, &opts);
    let qemu4 = run_ycsb(SolutionKind::Qemu, YcsbWorkload::A, 4, dur, &opts);
    let gap4 = pass4.kops_per_sec / qemu4.kops_per_sec;
    assert!(
        gap4 > gap1,
        "the gap must widen when I/O bound: 1 job {gap1:.2} vs 4 jobs {gap4:.2}"
    );
}
