//! Insight integration: the stall watchdog rides the executor over a live
//! datapath. An injected device stall must be detected within one tick of
//! the grace period elapsing, surface as a `QueueStalled` verdict in the
//! shared [`HealthLog`], and clear with a `QueueRecovered` verdict once
//! the device completes the delayed commands — all while span assembly
//! keeps full coverage of the run.

use nvmetro::core::classify::Classifier;
use nvmetro::core::engine::RouterBuilder;
use nvmetro::core::router::VmBinding;
use nvmetro::core::{passthrough_program, Partition, VirtualController, VmConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
use nvmetro::insight::{HealthVerdict, StallWatchdog, WatchdogConfig};
use nvmetro::nvme::{CqPair, SqPair, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Executor, MS, US};
use nvmetro::telemetry::{Metric, Stage, Telemetry};

const STALL: u64 = 2 * MS;
const INTERVAL: u64 = 100 * US;
const GRACE: u64 = 150 * US;

/// Builds the single-shard read rig with every read stalled by `STALL`,
/// runs it to completion with the watchdog aboard, and returns the health
/// log plus the telemetry registry.
fn run_stalled_rig(reads: u16) -> (nvmetro::insight::HealthLog, Telemetry, u64) {
    let telemetry = Telemetry::enabled();
    let plan = FaultPlan::new(0x57A11).rule(
        FaultRule::new(FaultSite::Device, FaultAction::Stall(STALL)).classes(CmdClass::Read.bit()),
    );
    let mut ssd = SimSsd::new(
        "stalling-ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            faults: plan,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker_named("ssd"));
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 64,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(128)
        .telemetry(&telemetry)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        })
        .build();
    for i in 0..reads {
        let mut cmd = SubmissionEntry::read(1, i as u64 * 8, 8, 0x1000, 0);
        cmd.cid = i;
        gsq.push(cmd).unwrap();
    }
    let (wd, log) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: INTERVAL,
            stall_grace: GRACE,
            keep_spans: true,
            ..WatchdogConfig::default()
        },
    );
    let shared = wd.shared();
    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.add(Box::new(shared.clone()));
    let report = ex.run(u64::MAX);
    shared.with(|w| w.flush(report.duration + 1));

    let mut done = 0;
    while let Some(cqe) = gcq.pop() {
        assert!(!cqe.status().is_error(), "stalled reads still succeed");
        done += 1;
    }
    assert_eq!(done, reads as u64, "every read answered despite the stall");
    (log, telemetry, report.duration)
}

#[test]
fn watchdog_detects_injected_stall_and_clears_on_recovery() {
    let (log, telemetry, duration) = run_stalled_rig(8);
    let reports = log.reports();
    assert!(!reports.is_empty(), "watchdog must have ticked");

    // Detection: the queue stalls at submission time, so the verdict must
    // land within one tick of the grace period elapsing.
    let first_stall = reports
        .iter()
        .find(|r| {
            r.verdicts
                .iter()
                .any(|v| matches!(v, HealthVerdict::QueueStalled { vm: 0, .. }))
        })
        .expect("injected stall must produce a QueueStalled verdict");
    assert!(
        first_stall.at <= GRACE + 2 * INTERVAL,
        "stall flagged at {}us, later than one tick past the grace period",
        first_stall.at / US
    );
    assert!(!first_stall.healthy);
    let stalled_queue = first_stall
        .queues
        .iter()
        .find(|q| q.stalled)
        .expect("stalled queue surfaces in queue health");
    assert!(stalled_queue.open > 0);
    assert!(stalled_queue.oldest_age_ns >= GRACE);

    // Recovery: once the device releases the delayed completions (at
    // ~STALL), the next tick clears the verdict.
    let recovered = reports
        .iter()
        .find(|r| {
            r.verdicts
                .iter()
                .any(|v| matches!(v, HealthVerdict::QueueRecovered { vm: 0, .. }))
        })
        .expect("recovery must produce a QueueRecovered verdict");
    assert!(recovered.at > first_stall.at);
    assert!(
        recovered.at >= STALL,
        "recovery can't precede the stall window"
    );
    assert!(
        reports.last().unwrap().healthy,
        "run ends healthy after recovery"
    );

    // Verdicts also surface as metrics.
    let counters = telemetry.counters();
    assert!(counters[Metric::StallsDetected as usize] >= 1);
    assert!(counters[Metric::StallsCleared as usize] >= 1);
    assert!(counters[Metric::WatchdogTicks as usize] >= 2);
    assert!(log.saw_stall());

    // Span assembly kept working through the stall: full coverage, one
    // terminal completion per span, latencies dominated by the stall.
    assert_eq!(log.drain_missed(), 0);
    let spans = log.spans();
    let complete: Vec<_> = spans.iter().filter(|s| s.complete).collect();
    assert_eq!(complete.len(), 8, "all stalled reads reconstructed");
    for s in &complete {
        assert_eq!(s.count(Stage::VcqComplete), 1);
        assert!(s.latency_ns() >= STALL, "span latency includes the stall");
    }
    assert!(duration >= STALL);
}

#[test]
fn healthy_run_reports_no_stalls() {
    let telemetry = Telemetry::enabled();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            move_data: false,
            ..Default::default()
        },
    );
    ssd.attach_telemetry(telemetry.register_worker_named("ssd"));
    let mut vc = VirtualController::new(VmConfig {
        mem_bytes: 1 << 20,
        queue_depth: 64,
        ..Default::default()
    });
    let mem = vc.memory();
    let (gsq, gcq) = vc.take_guest_queue(0);
    let (vsqs, vcqs) = vc.take_router_queues();
    let (hsq_p, hsq_c) = SqPair::new(64);
    let (hcq_p, hcq_c) = CqPair::new(64);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(CostModel::default())
        .table_capacity(128)
        .telemetry(&telemetry)
        .vm(VmBinding {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            vsqs,
            vcqs,
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Bpf(passthrough_program()),
        })
        .build();
    for i in 0..32u16 {
        let mut cmd = SubmissionEntry::read(1, i as u64 * 8, 8, 0x1000, 0);
        cmd.cid = i;
        gsq.push(cmd).unwrap();
    }
    let (wd, log) = StallWatchdog::new(
        &telemetry,
        WatchdogConfig {
            interval: INTERVAL,
            stall_grace: GRACE,
            ..WatchdogConfig::default()
        },
    );
    let shared = wd.shared();
    let mut ex = Executor::new();
    engine.run_virtual(&mut ex);
    ex.add(Box::new(ssd));
    ex.add(Box::new(shared.clone()));
    let report = ex.run(u64::MAX);
    shared.with(|w| w.flush(report.duration + 1));

    let mut done = 0;
    while gcq.pop().is_some() {
        done += 1;
    }
    assert_eq!(done, 32);
    assert!(!log.saw_stall(), "healthy run must not flag stalls");
    assert!(log.reports().iter().all(|r| r.healthy));
    let counters = telemetry.counters();
    assert_eq!(counters[Metric::StallsDetected as usize], 0);
    assert_eq!(counters[Metric::StallsCleared as usize], 0);
}
