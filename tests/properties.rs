//! Property-based tests over the core data structures and invariants.
//!
//! Each property is exercised over many seeded-random cases drawn from
//! [`SimRng`], so the suite is deterministic (no external proptest dep,
//! which the offline build environment cannot fetch) while still covering
//! a wide input space. A failing case prints its seed for replay.

use nvmetro::crypto::Xts;
use nvmetro::mem::{build_prps, prp_segments, GuestMemory};
use nvmetro::nvme::{CompletionEntry, CqPair, SqPair, Status, SubmissionEntry};
use nvmetro::sim::SimRng;
use nvmetro::stats::Histogram;
use nvmetro::vbpf::isa::Insn;

/// Runs `body` over `cases` independently-seeded random cases.
fn for_cases(cases: u64, mut body: impl FnMut(&mut SimRng)) {
    for seed in 0..cases {
        let mut rng = SimRng::new(0xA5A5_0000 + seed);
        body(&mut rng);
    }
}

/// SQ rings deliver every command exactly once, in order, across
/// arbitrary interleavings of pushes and pops.
#[test]
fn sq_ring_is_fifo_and_lossless() {
    for_cases(64, |rng| {
        let (prod, cons) = SqPair::new(16);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        let ops = 1 + rng.below(199);
        for _ in 0..ops {
            if rng.chance(0.5) {
                let cmd = SubmissionEntry::read(1, next_push, 1, 0, 0);
                if prod.push(cmd).is_ok() {
                    next_push += 1;
                }
            } else if let Some((cmd, _)) = cons.pop() {
                assert_eq!(cmd.slba(), next_pop);
                next_pop += 1;
            }
        }
        // Drain and check completeness.
        while let Some((cmd, _)) = cons.pop() {
            assert_eq!(cmd.slba(), next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push);
    });
}

/// CQ phase tags always alternate correctly no matter the traffic.
#[test]
fn cq_phase_tag_tracks_wraps() {
    for_cases(64, |rng| {
        let (prod, cons) = CqPair::new(8);
        let mut popped = 0u64;
        let batches = 1 + rng.below(49);
        for _ in 0..batches {
            let batch = 1 + rng.below(7);
            for i in 0..batch {
                if prod
                    .push(CompletionEntry::new(i as u16, Status::SUCCESS))
                    .is_err()
                {
                    break;
                }
            }
            while let Some(e) = cons.pop() {
                // The phase of entry k (0-indexed) must be !(k/8 % 2 == 1).
                let expected = (popped / 8).is_multiple_of(2);
                assert_eq!(e.phase(), expected);
                popped += 1;
            }
        }
    });
}

/// XTS decrypt(encrypt(x)) == x for arbitrary sector-aligned data.
#[test]
fn xts_round_trips() {
    for_cases(32, |rng| {
        let key: Vec<u8> = (0..64).map(|_| rng.below(256) as u8).collect();
        let sectors = 1 + rng.below(4) as usize;
        let first = rng.below(1_000_000);
        let seed = rng.below(256) as u8;
        let xts = Xts::new(&key);
        let original: Vec<u8> = (0..sectors * 512)
            .map(|i| (i as u8).wrapping_mul(seed | 1))
            .collect();
        let mut buf = original.clone();
        xts.encrypt_sectors(first, &mut buf);
        assert_ne!(&buf, &original);
        xts.decrypt_sectors(first, &mut buf);
        assert_eq!(buf, original);
    });
}

/// PRP build + walk tiles the exact byte range, contiguously.
#[test]
fn prp_segments_tile_the_buffer() {
    for_cases(48, |rng| {
        let len = 1 + rng.below(299_999) as usize;
        let offset = rng.below(4096);
        let mem = GuestMemory::new(1 << 30);
        let base = mem.alloc(len + 4096);
        let gpa = base + (offset % 4096);
        let (p1, p2) = build_prps(&mem, gpa, len);
        let segs = prp_segments(&mem, p1, p2, len).unwrap();
        let total: usize = segs.iter().map(|(_, l)| l).sum();
        assert_eq!(total, len);
        let mut expect = gpa;
        for (addr, l) in segs {
            assert_eq!(addr, expect);
            expect = addr + l as u64;
        }
    });
}

/// Histogram quantiles are monotone and within the recorded range.
#[test]
fn histogram_quantiles_are_sane() {
    for_cases(64, |rng| {
        let n = 1 + rng.below(499) as usize;
        let samples: Vec<u64> = (0..n).map(|_| rng.below(10_000_000_000)).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last);
            assert!(v >= min && v <= max);
            last = v;
        }
        assert_eq!(h.count(), samples.len() as u64);
    });
}

/// `Histogram::merge` is exact: merging any random split of a sample set
/// must preserve the total count, sum, extrema, and report every quantile
/// identical to a histogram that recorded the whole set directly.
#[test]
fn histogram_merge_preserves_count_and_quantiles() {
    for_cases(64, |rng| {
        let n = 1 + rng.below(400) as usize;
        let samples: Vec<u64> = (0..n)
            .map(|_| {
                // Mix tiny exact-bucket values with large log-bucketed ones.
                if rng.chance(0.3) {
                    rng.below(64)
                } else {
                    rng.below(5_000_000_000)
                }
            })
            .collect();

        // Record the whole set directly.
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }

        // Record a random partition into up to 4 shards, then merge.
        let shard_count = 1 + rng.below(4) as usize;
        let mut shards: Vec<Histogram> = (0..shard_count).map(|_| Histogram::new()).collect();
        for &s in &samples {
            let which = rng.below(shard_count as u64) as usize;
            shards[which].record(s);
        }
        let mut merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }

        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert_eq!(merged.mean(), whole.mean(), "sum must merge exactly");
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(
                merged.quantile(q),
                whole.quantile(q),
                "quantile {q} diverged after merge"
            );
        }
    });
}

/// The vbpf verifier never panics on arbitrary instruction streams —
/// it either accepts or returns a typed error (a crashing verifier
/// would be a kernel DoS in the real system).
#[test]
fn verifier_total_on_arbitrary_programs() {
    for_cases(128, |rng| {
        let len = 8 + rng.below(504) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let len = bytes.len() - bytes.len() % 8;
        if let Ok(insns) = Insn::decode_program(&bytes[..len]) {
            let cfg = nvmetro::vbpf::verifier::VerifierConfig {
                ctx_size: 48,
                ctx_writable: 16..48,
            };
            let _ = nvmetro::vbpf::verify(insns, vec![], &cfg);
        }
    });
}

/// Any program the verifier accepts runs to completion in the
/// interpreter without runtime errors (the safety contract).
#[test]
fn verified_programs_execute_safely() {
    for_cases(128, |rng| {
        let len = 8 + rng.below(248) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let len = bytes.len() - bytes.len() % 8;
        if let Ok(insns) = Insn::decode_program(&bytes[..len]) {
            let cfg = nvmetro::vbpf::verifier::VerifierConfig {
                ctx_size: 48,
                ctx_writable: 16..48,
            };
            if let Ok(prog) = nvmetro::vbpf::verify(insns, vec![], &cfg) {
                let mut vm = nvmetro::vbpf::Vm::new(prog);
                let mut ctx = [0u8; 48];
                assert!(vm.run(&mut ctx).is_ok(), "verified program trapped");
            }
        }
    });
}

/// lsmkv agrees with an in-memory reference model under arbitrary
/// operation sequences (including flush-inducing volumes).
#[test]
fn lsmkv_matches_reference_model() {
    use lsmkv::{DbConfig, LsmKv, MemStorage};
    use std::collections::HashMap;
    for_cases(24, |rng| {
        let mut db = LsmKv::create(
            MemStorage::new(64 << 20),
            DbConfig {
                memtable_bytes: 1 << 10,
                l0_limit: 2,
                wal_bytes: 1 << 20,
            },
        );
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let ops = 1 + rng.below(299);
        for _ in 0..ops {
            let op = rng.below(3);
            let key_n = rng.below(200);
            let key = format!("k{key_n:05}").into_bytes();
            match op {
                0 => {
                    let val = vec![rng.below(256) as u8; 24];
                    db.put(&key, &val);
                    model.insert(key, val);
                }
                1 => {
                    db.delete(&key);
                    model.remove(&key);
                }
                _ => {
                    assert_eq!(db.get(&key), model.get(&key).cloned());
                }
            }
        }
        for (key, val) in &model {
            assert_eq!(db.get(key), Some(val.clone()));
        }
    });
}
