//! Property-based tests over the core data structures and invariants.

use nvmetro::crypto::Xts;
use nvmetro::mem::{build_prps, prp_segments, GuestMemory};
use nvmetro::nvme::{CqPair, CompletionEntry, SqPair, Status, SubmissionEntry};
use nvmetro::stats::Histogram;
use nvmetro::vbpf::isa::Insn;
use proptest::prelude::*;

proptest! {
    /// SQ rings deliver every command exactly once, in order, across
    /// arbitrary interleavings of pushes and pops.
    #[test]
    fn sq_ring_is_fifo_and_lossless(ops in proptest::collection::vec(0u8..2, 1..200)) {
        let (prod, cons) = SqPair::new(16);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for op in ops {
            if op == 0 {
                let cmd = SubmissionEntry::read(1, next_push, 1, 0, 0);
                if prod.push(cmd).is_ok() {
                    next_push += 1;
                }
            } else if let Some((cmd, _)) = cons.pop() {
                prop_assert_eq!(cmd.slba(), next_pop);
                next_pop += 1;
            }
        }
        // Drain and check completeness.
        while let Some((cmd, _)) = cons.pop() {
            prop_assert_eq!(cmd.slba(), next_pop);
            next_pop += 1;
        }
        prop_assert_eq!(next_pop, next_push);
    }

    /// CQ phase tags always alternate correctly no matter the traffic.
    #[test]
    fn cq_phase_tag_tracks_wraps(batches in proptest::collection::vec(1usize..8, 1..50)) {
        let (prod, cons) = CqPair::new(8);
        let mut popped = 0u64;
        for batch in batches {
            for i in 0..batch {
                if prod.push(CompletionEntry::new(i as u16, Status::SUCCESS)).is_err() {
                    break;
                }
            }
            while let Some(e) = cons.pop() {
                // The phase of entry k (0-indexed) must be !(k/8 % 2 == 1).
                let expected = (popped / 8) % 2 == 0;
                prop_assert_eq!(e.phase(), expected);
                popped += 1;
            }
        }
    }

    /// XTS decrypt(encrypt(x)) == x for arbitrary sector-aligned data.
    #[test]
    fn xts_round_trips(
        key in proptest::collection::vec(any::<u8>(), 64..=64),
        sectors in 1usize..5,
        first in 0u64..1_000_000,
        seed in any::<u8>(),
    ) {
        let xts = Xts::new(&key);
        let original: Vec<u8> = (0..sectors * 512)
            .map(|i| (i as u8).wrapping_mul(seed | 1))
            .collect();
        let mut buf = original.clone();
        xts.encrypt_sectors(first, &mut buf);
        prop_assert_ne!(&buf, &original);
        xts.decrypt_sectors(first, &mut buf);
        prop_assert_eq!(buf, original);
    }

    /// PRP build + walk tiles the exact byte range, contiguously.
    #[test]
    fn prp_segments_tile_the_buffer(len in 1usize..300_000, offset in 0u64..4096) {
        let mem = GuestMemory::new(1 << 30);
        let base = mem.alloc(len + 4096);
        let gpa = base + (offset % 4096);
        let (p1, p2) = build_prps(&mem, gpa, len);
        let segs = prp_segments(&mem, p1, p2, len).unwrap();
        let total: usize = segs.iter().map(|(_, l)| l).sum();
        prop_assert_eq!(total, len);
        let mut expect = gpa;
        for (addr, l) in segs {
            prop_assert_eq!(addr, expect);
            expect = addr + l as u64;
        }
    }

    /// Histogram quantiles are monotone and within the recorded range.
    #[test]
    fn histogram_quantiles_are_sane(samples in proptest::collection::vec(0u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= last);
            prop_assert!(v >= min && v <= max);
            last = v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// The vbpf verifier never panics on arbitrary instruction streams —
    /// it either accepts or returns a typed error (a crashing verifier
    /// would be a kernel DoS in the real system).
    #[test]
    fn verifier_total_on_arbitrary_programs(bytes in proptest::collection::vec(any::<u8>(), 8..512)) {
        let len = bytes.len() - bytes.len() % 8;
        if let Ok(insns) = Insn::decode_program(&bytes[..len]) {
            let cfg = nvmetro::vbpf::verifier::VerifierConfig {
                ctx_size: 48,
                ctx_writable: 16..48,
            };
            let _ = nvmetro::vbpf::verify(insns, vec![], &cfg);
        }
    }

    /// Any program the verifier accepts runs to completion in the
    /// interpreter without runtime errors (the safety contract).
    #[test]
    fn verified_programs_execute_safely(bytes in proptest::collection::vec(any::<u8>(), 8..256)) {
        let len = bytes.len() - bytes.len() % 8;
        if let Ok(insns) = Insn::decode_program(&bytes[..len]) {
            let cfg = nvmetro::vbpf::verifier::VerifierConfig {
                ctx_size: 48,
                ctx_writable: 16..48,
            };
            if let Ok(prog) = nvmetro::vbpf::verify(insns, vec![], &cfg) {
                let mut vm = nvmetro::vbpf::Vm::new(prog);
                let mut ctx = [0u8; 48];
                prop_assert!(vm.run(&mut ctx).is_ok(), "verified program trapped");
            }
        }
    }

    /// lsmkv agrees with an in-memory reference model under arbitrary
    /// operation sequences (including flush-inducing volumes).
    #[test]
    fn lsmkv_matches_reference_model(
        ops in proptest::collection::vec((0u8..3, 0u16..200, any::<u8>()), 1..300)
    ) {
        use lsmkv::{DbConfig, LsmKv, MemStorage};
        use std::collections::HashMap;
        let mut db = LsmKv::create(
            MemStorage::new(64 << 20),
            DbConfig { memtable_bytes: 1 << 10, l0_limit: 2, wal_bytes: 1 << 20 },
        );
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (op, key_n, val_b) in ops {
            let key = format!("k{key_n:05}").into_bytes();
            match op {
                0 => {
                    let val = vec![val_b; 24];
                    db.put(&key, &val);
                    model.insert(key, val);
                }
                1 => {
                    db.delete(&key);
                    model.remove(&key);
                }
                _ => {
                    prop_assert_eq!(db.get(&key), model.get(&key).cloned());
                }
            }
        }
        for (key, val) in &model {
            prop_assert_eq!(db.get(key), Some(val.clone()));
        }
    }
}
