//! Live servicing integration: quiesce → snapshot → restore with
//! exactly-once completions under seeded chaos, online resharding under
//! QD-128 fleet load, hot VM attach/detach, and the stats/generation
//! regressions that ride along.
//!
//! The invariants under test:
//!
//! * **Exactly-once across a restore** — a mid-flight snapshot quarantines
//!   every outstanding tag under the old generation and replays the
//!   request under the new one; the guest sees exactly one answer per
//!   command, proven per-CID and by span reconstruction.
//! * **Epoch fencing** — a completion produced by the pre-snapshot engine
//!   can never satisfy a post-restore request: it lands on the
//!   quarantined old-generation tag and is dropped as epoch-late.
//! * **Elastic resharding** — `shards: N→M` under load loses and
//!   duplicates nothing, and per-tenant throttle cells carry over.
//! * **Hot attach/detach** — tenants come and go on a running engine
//!   without another tenant's queues so much as moving slots.
//!
//! Like `chaos.rs`, the `CHAOS_SEED` environment variable appends an
//! extra seed to the fixed matrix so CI can sweep seeds.

use nvmetro::core::classify::{verdict_bits, Classifier, NativeClassifier, RequestCtx, Verdict};
use nvmetro::core::engine::{Engine, EngineVm, QueueBinding, RouterBuilder};
use nvmetro::core::{passthrough_program, Partition, RecoveryConfig, ServiceError, ServiceState};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
use nvmetro::fleet::{FleetConfig, RateLimit, TenantGovernor, TenantSpec, FULL_RATE};
use nvmetro::insight::{StallWatchdog, WatchdogConfig};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Actor, Ns, MS, US};
use nvmetro::telemetry::{Metric, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything to the fast path.
struct AlwaysFast;
impl NativeClassifier for AlwaysFast {
    fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
        Verdict(verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
    }
}

/// Deterministic cost model: no device jitter.
fn deterministic_cost() -> CostModel {
    CostModel {
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

/// One queue group's plumbing: rings built, host pair registered on the
/// device, guest ends returned.
fn queue_group(
    ssd: &mut SimSsd,
    mem: &Arc<GuestMemory>,
    native: bool,
) -> (QueueBinding, SqProducer, CqConsumer) {
    let (vsq_p, vsq_c) = SqPair::new(256);
    let (vcq_p, vcq_c) = CqPair::new(256);
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let classifier = if native {
        Classifier::Native(Box::new(AlwaysFast))
    } else {
        Classifier::Bpf(passthrough_program())
    };
    let binding = QueueBinding {
        vsqs: vec![vsq_c],
        vcqs: vec![vcq_p],
        hsq: hsq_p,
        hcq: hcq_c,
        kernel: None,
        notify: None,
        classifier,
    };
    (binding, vsq_p, vcq_c)
}

/// Engine over `queue_pairs` groups on one VM, driven by hand (the
/// servicing API consumes the engine, so no executor).
#[allow(clippy::type_complexity)]
fn build_rig(
    shards: usize,
    queue_pairs: usize,
    cost: CostModel,
    faults: FaultPlan,
    recovery: Option<RecoveryConfig>,
    telemetry: &Telemetry,
) -> (Engine, SimSsd, Vec<(SqProducer, CqConsumer)>) {
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 11,
            faults,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut guest_ends = Vec::new();
    let mut queues = Vec::new();
    for _ in 0..queue_pairs {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem, true);
        queues.push(binding);
        guest_ends.push((sq, cq));
    }
    let mut builder = RouterBuilder::new("router")
        .cost(cost)
        .shards(shards)
        .table_capacity(2048)
        .telemetry(telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            queues,
        });
    if let Some(cfg) = recovery {
        builder = builder.recovery(cfg);
    }
    (builder.build(), ssd, guest_ends)
}

/// The fixed seed matrix plus an optional `CHAOS_SEED` from the env.
fn seeds() -> Vec<u64> {
    let mut s = vec![0x00C0_FFEE, 0x00BE_EF01, 0x005E_ED42];
    if let Ok(v) = std::env::var("CHAOS_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            s.push(n);
        }
    }
    s
}

/// Mid-flight snapshot under seeded device chaos (media errors, stalls,
/// dropped completions), serialized through the byte format, restored
/// into a fresh engine: every command is answered exactly once — per-CID
/// on every queue pair and by span reconstruction (no span ever sees two
/// terminals; every guest CQE maps to exactly one completed span).
#[test]
fn snapshot_restore_mid_chaos_is_exactly_once() {
    const N: u16 = 40;
    const QPS: usize = 4;
    for seed in seeds() {
        for shards in [1usize, 4] {
            let telemetry = Telemetry::enabled();
            let plan = FaultPlan::new(seed)
                .rule(
                    FaultRule::new(FaultSite::Device, FaultAction::DropCompletion)
                        .classes(CmdClass::Read.bit())
                        .max_hits(2),
                )
                .rule(
                    FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                        .classes(CmdClass::Read.bit())
                        .probability(0.1),
                )
                .rule(
                    FaultRule::new(FaultSite::Device, FaultAction::Stall(150 * US))
                        .classes(CmdClass::Read.bit())
                        .probability(0.1),
                );
            let (mut engine, mut ssd, guest_ends) = build_rig(
                shards,
                QPS,
                deterministic_cost(),
                plan,
                Some(RecoveryConfig {
                    cmd_timeout: 20 * MS,
                    max_retries: 4,
                    backoff_base: 20 * US,
                    backoff_max: 200 * US,
                    breaker_threshold: 1_000,
                    breaker_cooldown: 2 * MS,
                    zombie_linger: 5 * MS,
                }),
                &telemetry,
            );
            let (mut watchdog, health) = StallWatchdog::new(
                &telemetry,
                WatchdogConfig {
                    interval: 100 * US,
                    keep_spans: true,
                    ..Default::default()
                },
            );
            for (qp, (sq, _)) in guest_ends.iter().enumerate() {
                for i in 0..N {
                    let mut cmd =
                        SubmissionEntry::read(1, (qp as u64 * 8192) + i as u64 * 8, 8, 0x1000, 0);
                    cmd.cid = i;
                    sq.push(cmd).unwrap();
                }
            }
            let mut counts: Vec<HashMap<u16, u32>> = vec![HashMap::new(); QPS];
            let mut delivered = 0u64;
            let mut now: Ns = 0;
            let pump = |engine: &mut Engine,
                        ssd: &mut SimSsd,
                        watchdog: &mut StallWatchdog,
                        counts: &mut Vec<HashMap<u16, u32>>,
                        delivered: &mut u64,
                        now: Ns| {
                engine.poll_all(now);
                ssd.poll(now);
                watchdog.poll(now);
                for (qp, (_, cq)) in guest_ends.iter().enumerate() {
                    while let Some(cqe) = cq.pop() {
                        *counts[qp].entry(cqe.cid).or_insert(0) += 1;
                        *delivered += 1;
                    }
                }
            };

            // Phase 1: run hot, then quiesce with a deadline short enough
            // that the chaos (20 ms drop-recovery, 150 us stalls) cannot
            // drain — the snapshot must happen mid-flight.
            while now < 100 * US {
                pump(
                    &mut engine,
                    &mut ssd,
                    &mut watchdog,
                    &mut counts,
                    &mut delivered,
                    now,
                );
                now += 5 * US;
            }
            engine.begin_quiesce();
            let quiesce_deadline = now + 100 * US;
            while now < quiesce_deadline && !engine.quiesced() {
                pump(
                    &mut engine,
                    &mut ssd,
                    &mut watchdog,
                    &mut counts,
                    &mut delivered,
                    now,
                );
                now += 5 * US;
            }
            assert!(
                engine.live_in_flight() > 0,
                "seed {seed:#x} shards {shards}: rig drained before the snapshot"
            );

            // Snapshot, push through the byte format, restore fresh.
            let (state, parts) = engine.snapshot(now);
            assert!(!state.requests.is_empty(), "seed {seed:#x} shards {shards}");
            let state = ServiceState::from_bytes(&state.to_bytes()).expect("round trip");
            let mut engine = Engine::restore(parts, &state, now).unwrap();
            assert_eq!(engine.generation(), 2);

            // Phase 2: run the restored engine to completion.
            let total = (QPS as u64) * N as u64;
            while delivered < total && now < 500 * MS {
                pump(
                    &mut engine,
                    &mut ssd,
                    &mut watchdog,
                    &mut counts,
                    &mut delivered,
                    now,
                );
                now += 5 * US;
            }
            // Let the watchdog take its final drains: the loop above exits
            // the instant the last CQE pops, possibly mid-interval.
            for _ in 0..5 {
                now += 100 * US;
                engine.poll_all(now);
                watchdog.poll(now);
            }
            for (qp, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.len(),
                    N as usize,
                    "seed {seed:#x} shards {shards}: queue pair {qp} must answer every cid"
                );
                for (cid, n) in c {
                    assert_eq!(
                        *n, 1,
                        "seed {seed:#x} shards {shards}: qp {qp} cid {cid} answered {n} times"
                    );
                }
            }
            let stats = engine.stats();
            assert_eq!(
                stats.total.completed, total,
                "seed {seed:#x} shards {shards}: carried + post-restore counters must agree"
            );
            let snap = telemetry.snapshot();
            assert!(
                snap.get(Metric::ReplayedRequests) >= 1,
                "seed {seed:#x} shards {shards}: a mid-flight snapshot must replay something"
            );
            assert_eq!(snap.get(Metric::SnapshotsTaken), 1);
            assert_eq!(snap.get(Metric::Restores), 1);
            // Span reconstruction agrees: replays open fresh spans, the
            // old attempt's span stays open without a terminal, and every
            // guest CQE is exactly one completed span.
            let s = health.stats();
            assert_eq!(
                health.drain_missed(),
                0,
                "seed {seed:#x} shards {shards}: ring overflow poisons the proof"
            );
            assert_eq!(
                s.duplicate_terminals, 0,
                "seed {seed:#x} shards {shards}: a span saw two terminals"
            );
            assert_eq!(
                s.spans_completed, delivered,
                "seed {seed:#x} shards {shards}: span coverage mismatch: {s:?}"
            );
        }
    }
}

/// Satellite 2 regression: a completion minted by the pre-snapshot engine
/// arrives after the restore carrying the old tag. It must land on the
/// old-generation quarantine and be dropped as epoch-late — never
/// delivered to the guest a second time, never matched to whatever now
/// owns the tag.
#[test]
fn stale_generation_completion_never_satisfies_restored_request() {
    let telemetry = Telemetry::enabled();
    // One read stalls inside the device for 2 ms — long past the snapshot
    // point — and then completes carrying its pre-snapshot CID (the old
    // engine's tag).
    let plan = FaultPlan::new(7).rule(
        FaultRule::new(FaultSite::Device, FaultAction::Stall(2 * MS))
            .classes(CmdClass::Read.bit())
            .max_hits(1),
    );
    let (mut engine, mut ssd, guest_ends) =
        build_rig(1, 1, deterministic_cost(), plan, None, &telemetry);
    let (sq, cq) = &guest_ends[0];
    let mut cmd = SubmissionEntry::read(1, 0, 8, 0x1000, 0);
    cmd.cid = 0;
    sq.push(cmd).unwrap();

    let mut counts: HashMap<u16, u32> = HashMap::new();
    let mut now: Ns = 0;
    while now < 100 * US {
        engine.poll_all(now);
        ssd.poll(now);
        while let Some(cqe) = cq.pop() {
            *counts.entry(cqe.cid).or_insert(0) += 1;
        }
        now += 5 * US;
    }
    engine.begin_quiesce();
    engine.poll_all(now);
    assert_eq!(
        engine.live_in_flight(),
        1,
        "the stalled read must still be in flight at the snapshot"
    );
    let (state, parts) = engine.snapshot(now);
    assert_eq!(state.requests.len(), 1);
    let mut engine = Engine::restore(parts, &state, now).unwrap();

    // The restored engine admits fresh traffic right away.
    for i in 1..8u16 {
        let mut cmd = SubmissionEntry::read(1, i as u64 * 8, 8, 0x1000, 0);
        cmd.cid = i;
        sq.push(cmd).unwrap();
    }
    // Run well past the 2 ms stall: the replay and the new reads answer
    // the guest; the stale leg arrives at ~2 ms on the old tag and must
    // be fenced by the generation check, not delivered a second time.
    while now < 5 * MS {
        engine.poll_all(now);
        ssd.poll(now);
        while let Some(cqe) = cq.pop() {
            *counts.entry(cqe.cid).or_insert(0) += 1;
        }
        now += 5 * US;
    }
    assert_eq!(counts.len(), 8, "every cid must be answered");
    for (cid, n) in &counts {
        assert_eq!(*n, 1, "cid {cid} answered {n} times");
    }
    let stats = engine.stats();
    assert_eq!(
        stats.total.epoch_late_drops, 1,
        "the stale leg must be dropped as epoch-late, not swallowed silently"
    );
    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::EpochLateDrops), 1);
    assert_eq!(snap.get(Metric::ReplayedRequests), 1);
}

/// Closed-loop (or paced) reader driven by hand; counts per-CID answers.
struct Driver {
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    period: Ns,
    next_at: Ns,
    outstanding: usize,
    next_cid: u16,
    submitted: u64,
    counts: HashMap<u16, u32>,
    lba_base: u64,
}

impl Driver {
    fn new(sq: SqProducer, cq: CqConsumer, qd: usize, period: Ns, lba_base: u64) -> Self {
        Driver {
            sq,
            cq,
            qd,
            period,
            next_at: 0,
            outstanding: 0,
            next_cid: 0,
            submitted: 0,
            counts: HashMap::new(),
            lba_base,
        }
    }

    fn submit_one(&mut self) -> bool {
        let mut cmd = SubmissionEntry::read(
            1,
            self.lba_base + (self.next_cid as u64 % 64) * 8,
            8,
            0x1000,
            0,
        );
        cmd.cid = self.next_cid;
        if self.sq.push(cmd).is_err() {
            return false;
        }
        self.next_cid = self.next_cid.wrapping_add(1);
        self.outstanding += 1;
        self.submitted += 1;
        true
    }

    /// Reap completions; submit while `open` and under queue depth.
    fn pump(&mut self, now: Ns, open: bool) {
        while let Some(cqe) = self.cq.pop() {
            self.outstanding -= 1;
            *self.counts.entry(cqe.cid).or_insert(0) += 1;
        }
        if !open {
            return;
        }
        if self.period == 0 {
            while self.outstanding < self.qd && self.submit_one() {}
        } else {
            while self.next_at <= now {
                if self.outstanding < self.qd {
                    self.submit_one();
                }
                self.next_at += self.period;
            }
        }
    }

    fn settled(&self) -> bool {
        self.outstanding == 0
    }

    fn assert_exactly_once(&self, who: &str) {
        assert!(self.submitted > 0, "{who} never submitted");
        assert_eq!(
            self.counts.len() as u64,
            self.submitted,
            "{who}: lost completions"
        );
        for (cid, n) in &self.counts {
            assert_eq!(*n, 1, "{who}: cid {cid} answered {n} times");
        }
    }
}

/// Satellite 4: online resharding 2→4 and 4→2 under QD-128 noisy-neighbor
/// fleet load. Every outstanding tag completes on its old shard or is
/// replayed on its new one — never both — and the per-tenant governor
/// cells (throttle knob, admission counters) carry across both reshards.
#[test]
fn online_reshard_under_fleet_load_is_exactly_once() {
    const VICTIM: u32 = 0;
    const AGGRESSOR: u32 = 1;
    let telemetry = Telemetry::enabled();
    let cost = deterministic_cost();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 11,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let governor = TenantGovernor::new();
    let fleet_cfg = FleetConfig {
        governor: governor.clone(),
        ..Default::default()
    }
    .tenant(TenantSpec {
        tenant: VICTIM,
        weight: 1,
        rate: None,
    })
    .tenant(TenantSpec {
        tenant: AGGRESSOR,
        weight: 1,
        // A bucket generous at full rate; the 500‰ throttle below halves
        // its effective refill, which the QD-128 flood must then hit.
        rate: Some(RateLimit {
            iops: 400_000,
            burst: 32,
        }),
    });
    let mut builder = RouterBuilder::new("router")
        .cost(cost)
        .shards(2)
        .table_capacity(2048)
        .telemetry(&telemetry)
        .fleet(fleet_cfg);
    let mut drivers = Vec::new();
    for vm in [VICTIM, AGGRESSOR] {
        let mut queues = Vec::new();
        let mut ends = Vec::new();
        for _ in 0..2 {
            let (binding, sq, cq) = queue_group(&mut ssd, &mem, false);
            queues.push(binding);
            ends.push((sq, cq));
        }
        builder = builder.vm(EngineVm {
            vm_id: vm,
            mem: mem.clone(),
            partition: Partition::whole(1 << 20),
            queues,
        });
        for (sq, cq) in ends {
            // The aggressor floods at QD-64 per pair (128 per tenant);
            // the victim paces one read per 50 us per pair.
            drivers.push(if vm == AGGRESSOR {
                Driver::new(sq, cq, 64, 0, 1 << 14)
            } else {
                Driver::new(sq, cq, 4, 50 * US, 0)
            });
        }
    }
    let mut engine = builder.build();
    assert_eq!(engine.shard_count(), 2);

    let stop = 3 * MS;
    let mut now: Ns = 0;
    while now < MS {
        engine.poll_all(now);
        ssd.poll(now);
        for d in drivers.iter_mut() {
            d.pump(now, now < stop);
        }
        now += 2 * US;
    }
    // The control plane throttles the aggressor (as the insight feedback
    // loop would); the cell must survive both reshards.
    governor.set_throttle(AGGRESSOR, 500);
    let admitted_before = governor.cell(AGGRESSOR).admitted();
    assert!(admitted_before > 0, "aggressor was never admitted");

    let mut engine = engine.reshard(4, now).unwrap();
    assert_eq!(engine.shard_count(), 4);
    assert_eq!(engine.generation(), 2);
    while now < 2 * MS {
        engine.poll_all(now);
        ssd.poll(now);
        for d in drivers.iter_mut() {
            d.pump(now, now < stop);
        }
        now += 2 * US;
    }
    let admitted_mid = governor.cell(AGGRESSOR).admitted();
    assert!(
        admitted_mid > admitted_before,
        "admission counters must keep growing in the same cell after 2→4"
    );
    assert_eq!(
        governor.throttle_of(AGGRESSOR),
        500,
        "throttle cell lost in 2→4 reshard"
    );

    let mut engine = engine.reshard(2, now).unwrap();
    assert_eq!(engine.shard_count(), 2);
    assert_eq!(engine.generation(), 3);
    // Run past the submission window, then drain everything outstanding.
    while now < 100 * MS && !(now >= stop && drivers.iter().all(|d| d.settled())) {
        engine.poll_all(now);
        ssd.poll(now);
        for d in drivers.iter_mut() {
            d.pump(now, now < stop);
        }
        now += 2 * US;
    }

    for (i, d) in drivers.iter().enumerate() {
        d.assert_exactly_once(&format!("driver {i}"));
    }
    assert_eq!(
        governor.throttle_of(AGGRESSOR),
        500,
        "throttle cell lost in 4→2 reshard"
    );
    assert_eq!(governor.throttle_of(VICTIM), FULL_RATE);
    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::Reshards), 2);
    assert!(
        snap.get(Metric::ReplayedRequests) >= 1,
        "QD-128 load must have tags in flight across a reshard"
    );
    assert!(
        governor.cell(AGGRESSOR).throttled() > 0,
        "a 500‰ throttle under flood must deny admissions"
    );
    // Per-tenant state is visible at the engine level after resharding.
    let stats = engine.stats();
    assert!(stats.tenants.iter().any(|t| t.view.tenant == AGGRESSOR));
}

/// Tentpole (c): hot VM attach/detach on a running engine. A new tenant
/// attaches mid-run and does I/O; detaching it while busy is refused;
/// after pause + drain it detaches cleanly, its queue groups come back
/// intact, and it can re-attach later — all while the resident tenant's
/// traffic never stops or duplicates.
#[test]
fn hot_attach_detach_leaves_neighbors_undisturbed() {
    let telemetry = Telemetry::enabled();
    let cost = deterministic_cost();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 5,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut queues = Vec::new();
    let mut ends = Vec::new();
    for _ in 0..2 {
        let (binding, sq, cq) = queue_group(&mut ssd, &mem, true);
        queues.push(binding);
        ends.push((sq, cq));
    }
    let mut engine = RouterBuilder::new("router")
        .cost(cost)
        .shards(2)
        .table_capacity(1024)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem: mem.clone(),
            partition: Partition::whole(1 << 20),
            queues,
        })
        .build();
    let mut resident: Vec<Driver> = ends
        .into_iter()
        .map(|(sq, cq)| Driver::new(sq, cq, 8, 0, 0))
        .collect();

    // Unknown VMs are refused by every per-VM verb.
    assert_eq!(engine.pause_vm(9).unwrap_err(), ServiceError::UnknownVm(9));
    match engine.detach_vm(9) {
        Err(e) => assert_eq!(e, ServiceError::UnknownVm(9)),
        Ok(_) => panic!("detaching an unknown VM must be refused"),
    }

    let stop = 2 * MS;
    let mut now: Ns = 0;
    while now < 500 * US {
        engine.poll_all(now);
        ssd.poll(now);
        for d in resident.iter_mut() {
            d.pump(now, now < stop);
        }
        now += 2 * US;
    }
    let resident_before_attach: u64 = resident.iter().map(|d| d.counts.len() as u64).sum();
    assert!(resident_before_attach > 0, "resident tenant too idle");

    // Hot attach: VM 1 joins the running engine with one queue group.
    let (binding, g_sq, g_cq) = queue_group(&mut ssd, &mem, true);
    let placements = engine.attach_vm(EngineVm {
        vm_id: 1,
        mem: mem.clone(),
        partition: Partition::whole(1 << 20),
        queues: vec![binding],
    });
    assert_eq!(placements.len(), 1);
    let mut newcomer = Driver::new(g_sq, g_cq, 8, 0, 1 << 12);

    while now < MS {
        engine.poll_all(now);
        ssd.poll(now);
        for d in resident.iter_mut() {
            d.pump(now, now < stop);
        }
        newcomer.pump(now, true);
        now += 2 * US;
    }
    assert!(
        !newcomer.counts.is_empty(),
        "attached VM never saw a completion"
    );

    // Detach while busy is refused: the newcomer keeps QD-8 in flight.
    match engine.detach_vm(1) {
        Err(e) => assert_eq!(e, ServiceError::VmBusy(1)),
        Ok(_) => panic!("detaching a busy VM must be refused"),
    }

    // Pause admission for VM 1 only, drain it, then detach for real.
    engine.pause_vm(1).unwrap();
    while now < 10 * MS && !engine.vm_quiesced(1) {
        engine.poll_all(now);
        ssd.poll(now);
        for d in resident.iter_mut() {
            d.pump(now, now < stop);
        }
        newcomer.pump(now, false);
        now += 2 * US;
    }
    assert!(engine.vm_quiesced(1), "paused VM never drained");
    let departed = engine.detach_vm(1).unwrap();
    assert_eq!(departed.vm_id, 1);
    assert_eq!(departed.queues.len(), 1);
    assert!(newcomer.settled());
    newcomer.assert_exactly_once("newcomer");

    // The resident tenant kept flowing through attach, pause, and detach.
    let during = now;
    while now < 100 * MS && !(now >= stop && resident.iter().all(|d| d.settled())) {
        engine.poll_all(now);
        ssd.poll(now);
        for d in resident.iter_mut() {
            d.pump(now, now < stop);
        }
        now += 2 * US;
    }
    let _ = during;
    for (i, d) in resident.iter().enumerate() {
        d.assert_exactly_once(&format!("resident pair {i}"));
        assert!(
            d.counts.len() as u64 > resident_before_attach / 4,
            "resident pair {i} stalled during servicing"
        );
    }

    // Round trip: the departed VM re-attaches and does I/O again.
    let placements = engine.attach_vm(departed);
    assert_eq!(placements.len(), 1);
    let reopen = now + 200 * US;
    while now < reopen || !newcomer.settled() {
        engine.poll_all(now);
        ssd.poll(now);
        newcomer.pump(now, now < reopen);
        now += 2 * US;
        assert!(now < 200 * MS, "re-attached VM never completed");
    }
    newcomer.assert_exactly_once("re-attached newcomer");

    let snap = telemetry.snapshot();
    assert_eq!(snap.get(Metric::VmAttaches), 2);
    assert_eq!(snap.get(Metric::VmDetaches), 1);
}

/// Satellite 1 regression: `Engine::stats` reads each shard once —
/// counters, occupancy, high-water, and breaker states all describe the
/// same instant — and pre-restore totals are carried so the aggregate
/// never goes backwards across servicing operations.
#[test]
fn engine_stats_are_one_pass_and_carry_across_restore() {
    const N: u16 = 32;
    let telemetry = Telemetry::enabled();
    let (mut engine, mut ssd, guest_ends) = build_rig(
        2,
        2,
        deterministic_cost(),
        FaultPlan::none(),
        Some(RecoveryConfig::default()),
        &telemetry,
    );
    for (qp, (sq, _)) in guest_ends.iter().enumerate() {
        for i in 0..N {
            let mut cmd = SubmissionEntry::read(1, (qp as u64 * 4096) + i as u64 * 8, 8, 0x1000, 0);
            cmd.cid = i;
            sq.push(cmd).unwrap();
        }
    }
    // Admit and dispatch without letting the device answer: the station
    // costs mean ingress work applies a few polls into virtual time.
    for i in 0..40u64 {
        engine.poll_all(i * 5 * US);
    }
    let stats = engine.stats();
    assert!(stats.occupancy > 0, "nothing in flight after admission");
    assert_eq!(
        stats.occupancy,
        engine.live_in_flight(),
        "occupancy and live in-flight must come from the same instant"
    );
    // High-water is a per-shard peak (occupancy sums across shards), so
    // with the load split two ways it must be at least half.
    assert!(stats.high_water >= stats.occupancy / 2);
    assert_eq!(
        stats.breakers.len(),
        2,
        "one breaker per bound queue group under recovery"
    );
    assert!(stats.breakers.iter().all(|b| !b.open));
    assert_eq!(stats.per_shard.len(), 2);

    // Drain, snapshot, restore: totals and peaks carry over. (Time
    // continues past the admission polls above — never backwards.)
    let mut now: Ns = 200 * US;
    let mut delivered = 0u64;
    while delivered < 2 * N as u64 && now < 100 * MS {
        engine.poll_all(now);
        ssd.poll(now);
        for (_, cq) in guest_ends.iter() {
            while cq.pop().is_some() {
                delivered += 1;
            }
        }
        now += 5 * US;
    }
    assert_eq!(delivered, 2 * N as u64);
    let before = engine.stats();
    assert_eq!(before.total.completed, 2 * N as u64);
    let high_water = before.high_water;
    assert!(high_water > 0);

    let (state, parts) = engine.snapshot(now);
    let engine = Engine::restore(parts, &state, now).unwrap();
    let after = engine.stats();
    assert_eq!(
        after.total.completed,
        2 * N as u64,
        "restored engine must carry pre-restore completion totals"
    );
    assert_eq!(
        after.high_water, high_water,
        "restored engine must carry the pre-restore table peak"
    );
    assert_eq!(after.occupancy, 0, "drained snapshot restores empty");
}
