//! Sharded-datapath integration: per-queue FIFO completion order, batched
//! CQ posting with doorbell coalescing, cross-shard exactly-once delivery
//! under seeded chaos, and queue-pair fairness under flood.
//!
//! Like `chaos.rs`, the `CHAOS_SEED` environment variable appends an extra
//! seed to the fixed matrix so CI can sweep seeds without recompiling.

use nvmetro::core::classify::{verdict_bits, Classifier, NativeClassifier, RequestCtx, Verdict};
use nvmetro::core::engine::{EngineVm, QueueBinding, RouterBuilder};
use nvmetro::core::{passthrough_program, Partition, RecoveryConfig};
use nvmetro::device::{CompletionMode, SimSsd, SsdConfig};
use nvmetro::faults::{CmdClass, FaultAction, FaultPlan, FaultRule, FaultSite};
use nvmetro::mem::GuestMemory;
use nvmetro::nvme::{CqConsumer, CqPair, SqPair, SqProducer, SubmissionEntry};
use nvmetro::sim::cost::CostModel;
use nvmetro::sim::{Actor, Executor, Ns, Progress, MS, US};
use nvmetro::telemetry::{Metric, Telemetry};
use std::sync::Arc;

/// Everything to the fast path.
struct AlwaysFast;
impl NativeClassifier for AlwaysFast {
    fn classify(&mut self, _ctx: &mut RequestCtx) -> Verdict {
        Verdict(verdict_bits::SEND_HQ | verdict_bits::WILL_COMPLETE_HQ)
    }
}

/// A deterministic cost model: no device jitter, so equal-size commands
/// complete in submission order.
fn deterministic_cost() -> CostModel {
    CostModel {
        ssd_jitter: 0.0,
        ..Default::default()
    }
}

/// Builds an engine over `queue_pairs` fast-path queue groups on one VM,
/// returning the guest-side ends of each pair.
#[allow(clippy::type_complexity)]
fn build_sharded_rig(
    shards: usize,
    queue_pairs: usize,
    cost: CostModel,
    faults: FaultPlan,
    recovery: Option<RecoveryConfig>,
    telemetry: &Telemetry,
) -> (Executor, SimSsd, Vec<(SqProducer, CqConsumer)>) {
    let ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 11,
            faults,
            ..Default::default()
        },
    );
    let mut ssd = ssd;
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut guest_ends = Vec::new();
    let mut queues = Vec::new();
    for _ in 0..queue_pairs {
        let (vsq_p, vsq_c) = SqPair::new(256);
        let (vcq_p, vcq_c) = CqPair::new(256);
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        queues.push(QueueBinding {
            vsqs: vec![vsq_c],
            vcqs: vec![vcq_p],
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Native(Box::new(AlwaysFast)),
        });
        guest_ends.push((vsq_p, vcq_c));
    }
    let mut builder = RouterBuilder::new("router")
        .cost(cost)
        .shards(shards)
        .table_capacity(2048)
        .telemetry(telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            queues,
        });
    if let Some(cfg) = recovery {
        builder = builder.recovery(cfg);
    }
    let mut ex = Executor::new();
    builder.build().run_virtual(&mut ex);
    (ex, ssd, guest_ends)
}

#[test]
fn completions_stay_fifo_within_each_queue_pair() {
    // Two queue pairs on two shards, zero device jitter, equal-size reads:
    // each pair's completions must come back in submission order even
    // though the shards interleave on the device.
    const N: u16 = 64;
    let telemetry = Telemetry::disabled();
    let (mut ex, ssd, guest_ends) = build_sharded_rig(
        2,
        2,
        deterministic_cost(),
        FaultPlan::none(),
        None,
        &telemetry,
    );
    for (qp, (sq, _)) in guest_ends.iter().enumerate() {
        for i in 0..N {
            let mut cmd = SubmissionEntry::read(1, (qp as u64 * 4096) + i as u64 * 8, 8, 0x1000, 0);
            cmd.cid = i;
            sq.push(cmd).unwrap();
        }
    }
    ex.add(Box::new(ssd));
    ex.run(u64::MAX);
    for (qp, (_, cq)) in guest_ends.iter().enumerate() {
        let mut cids = Vec::new();
        while let Some(cqe) = cq.pop() {
            assert!(!cqe.status().is_error());
            cids.push(cqe.cid);
        }
        let expected: Vec<u16> = (0..N).collect();
        assert_eq!(cids, expected, "queue pair {qp} reordered completions");
    }
}

#[test]
fn cq_batches_coalesce_doorbells_under_coarse_polling() {
    // Drive the shard by hand at coarse time steps so completions pile up
    // in the HCQ between router visits: the router must post them as
    // batches with ONE notify per drained batch, not one per entry.
    const N: u16 = 64;
    let telemetry = Telemetry::enabled();
    let cost = deterministic_cost();
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 3,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let (vsq_p, vsq_c) = SqPair::new(256);
    let (vcq_p, vcq_c) = CqPair::new(256);
    let (hsq_p, hsq_c) = SqPair::new(256);
    let (hcq_p, hcq_c) = CqPair::new(256);
    ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
    let engine = RouterBuilder::new("router")
        .cost(cost)
        .table_capacity(256)
        .telemetry(&telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            queues: vec![QueueBinding {
                vsqs: vec![vsq_c],
                vcqs: vec![vcq_p],
                hsq: hsq_p,
                hcq: hcq_c,
                kernel: None,
                notify: None,
                classifier: Classifier::Bpf(passthrough_program()),
            }],
        })
        .build();
    let mut router = engine.into_shards().pop().unwrap();
    let batch = router.batch() as u64;

    for i in 0..N {
        let mut cmd = SubmissionEntry::read(1, i as u64 * 8, 8, 0x1000, 0);
        cmd.cid = i;
        vsq_p.push(cmd).unwrap();
    }
    let mut done = 0u64;
    let mut now: Ns = 0;
    while done < N as u64 && now < 100 * MS {
        // Coarse steps: 20 us per visit, far above per-command costs, so
        // many completions accumulate between router polls.
        router.poll(now);
        ssd.poll(now);
        while vcq_c.pop().is_some() {
            done += 1;
        }
        now += 20 * US;
    }
    assert_eq!(done, N as u64, "all reads must complete");

    let snap = telemetry.snapshot();
    let batches = snap.get(Metric::CqBatches);
    let notifies = snap.get(Metric::CqNotifies);
    assert_eq!(snap.get(Metric::Completed), N as u64);
    assert!(
        notifies <= batches,
        "one queue pair: at most one notify per flushed batch ({notifies} > {batches})"
    );
    assert!(
        notifies < N as u64,
        "coalescing must beat one doorbell per completion ({notifies} for {N})"
    );
    // Each flush drains at most `batch` entries, so the batch count is
    // bounded below by completions/batch — and notifies by construction.
    assert!(batches >= N as u64 / batch);
}

/// The fixed seed matrix plus an optional `CHAOS_SEED` from the env.
fn seeds() -> Vec<u64> {
    let mut s = vec![0x00C0_FFEE, 0x00BE_EF01, 0x005E_ED42];
    if let Ok(v) = std::env::var("CHAOS_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            s.push(n);
        }
    }
    s
}

#[test]
fn chaos_exactly_once_across_shard_counts() {
    // Seeded device faults (drops, media errors, stalls) against 4 queue
    // pairs at 1 and 4 shards: every command must be answered exactly once
    // per queue pair with a valid status, and dropped completions must be
    // recovered by the per-shard deadline/retry machinery.
    const N: u16 = 40;
    for seed in seeds() {
        for shards in [1usize, 4] {
            let telemetry = Telemetry::enabled();
            let plan = FaultPlan::new(seed)
                .rule(
                    FaultRule::new(FaultSite::Device, FaultAction::DropCompletion)
                        .classes(CmdClass::Read.bit())
                        .max_hits(2),
                )
                .rule(
                    FaultRule::new(FaultSite::Device, FaultAction::MediaError { dnr: false })
                        .classes(CmdClass::Read.bit())
                        .probability(0.1),
                )
                .rule(
                    FaultRule::new(FaultSite::Device, FaultAction::Stall(150 * US))
                        .classes(CmdClass::Read.bit())
                        .probability(0.1),
                );
            let (mut ex, ssd, guest_ends) = build_sharded_rig(
                shards,
                4,
                deterministic_cost(),
                plan,
                Some(RecoveryConfig {
                    cmd_timeout: 20 * MS,
                    max_retries: 4,
                    backoff_base: 20 * US,
                    backoff_max: 200 * US,
                    // High threshold: no kernel path to fail over to, so
                    // keep the breakers out of this test's way.
                    breaker_threshold: 1_000,
                    breaker_cooldown: 2 * MS,
                    zombie_linger: 5 * MS,
                }),
                &telemetry,
            );
            for (qp, (sq, _)) in guest_ends.iter().enumerate() {
                for i in 0..N {
                    let mut cmd =
                        SubmissionEntry::read(1, (qp as u64 * 8192) + i as u64 * 8, 8, 0x1000, 0);
                    cmd.cid = i;
                    sq.push(cmd).unwrap();
                }
            }
            ex.add(Box::new(ssd));
            ex.run(u64::MAX);

            for (qp, (_, cq)) in guest_ends.iter().enumerate() {
                let mut counts = std::collections::HashMap::new();
                while let Some(cqe) = cq.pop() {
                    *counts.entry(cqe.cid).or_insert(0u32) += 1;
                }
                assert_eq!(
                    counts.len(),
                    N as usize,
                    "seed {seed:#x} shards {shards}: queue pair {qp} must answer every cid"
                );
                for (cid, n) in counts {
                    assert_eq!(
                        n, 1,
                        "seed {seed:#x} shards {shards}: qp {qp} cid {cid} answered {n} times"
                    );
                }
            }
            let snap = telemetry.snapshot();
            assert_eq!(
                snap.get(Metric::Completed),
                4 * N as u64,
                "seed {seed:#x} shards {shards}"
            );
            assert!(
                snap.get(Metric::Aborts) >= 2,
                "seed {seed:#x} shards {shards}: dropped completions need deadline aborts"
            );
            assert!(
                snap.get(Metric::Retries) >= 2,
                "seed {seed:#x} shards {shards}: aborted attempts must be retried"
            );
        }
    }
}

/// Closed-loop flooder: keeps `qd` reads outstanding until `deadline`.
struct Flooder {
    sq: SqProducer,
    cq: CqConsumer,
    qd: usize,
    outstanding: usize,
    deadline: Ns,
    next_cid: u16,
    completed: u64,
}

impl Actor for Flooder {
    fn name(&self) -> &str {
        "flooder"
    }
    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        while let Some(_cqe) = self.cq.pop() {
            self.outstanding -= 1;
            self.completed += 1;
            progressed = true;
        }
        if now < self.deadline {
            while self.outstanding < self.qd {
                let mut cmd = SubmissionEntry::read(1, 0, 8, 0x1000, 0);
                cmd.cid = self.next_cid;
                if self.sq.push(cmd).is_err() {
                    break;
                }
                self.next_cid = self.next_cid.wrapping_add(1);
                self.outstanding += 1;
                progressed = true;
            }
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }
    fn next_event(&self) -> Option<Ns> {
        None
    }
}

/// QD-1 probe: submits the next read only after the previous completed,
/// recording each round-trip latency.
struct Probe {
    sq: SqProducer,
    cq: CqConsumer,
    remaining: u32,
    in_flight: bool,
    submitted_at: Ns,
    latencies: Vec<Ns>,
}

impl Actor for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn poll(&mut self, now: Ns) -> Progress {
        let mut progressed = false;
        if self.in_flight {
            if let Some(_cqe) = self.cq.pop() {
                self.latencies.push(now - self.submitted_at);
                self.in_flight = false;
                progressed = true;
            }
        }
        if !self.in_flight && self.remaining > 0 {
            let mut cmd = SubmissionEntry::read(1, 4096, 8, 0x1000, 0);
            cmd.cid = self.remaining as u16;
            self.sq.push(cmd).unwrap();
            self.submitted_at = now;
            self.in_flight = true;
            self.remaining -= 1;
            progressed = true;
        }
        if progressed {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }
    fn next_event(&self) -> Option<Ns> {
        None
    }
}

#[test]
fn flooded_queue_pair_does_not_starve_its_neighbor() {
    // One shard, two queue pairs: pair 0 keeps 128 reads outstanding, pair
    // 1 runs QD-1 probes. Bounded per-queue batch draining must keep the
    // probe's round trips near the uncontended service time instead of
    // letting the flooder monopolize the shard. Driven by hand so the
    // probe's latency record stays accessible after the run.
    let telemetry = Telemetry::disabled();
    let mut cost = deterministic_cost();
    // A fast device so the shard is the contended resource.
    cost.ssd_channels = 64;
    cost.ssd_read_lat = 5_000;
    cost.ssd_cmd_overhead = 150;
    let (mut router, mut ssd, mut guest_ends) = build_sharded_rig_manual(1, 2, cost, &telemetry);
    let (probe_sq, probe_cq) = guest_ends.pop().unwrap();
    let (flood_sq, flood_cq) = guest_ends.pop().unwrap();
    let mut flooder = Flooder {
        sq: flood_sq,
        cq: flood_cq,
        qd: 128,
        outstanding: 0,
        deadline: 20 * MS,
        next_cid: 0,
        completed: 0,
    };
    let mut probe = Probe {
        sq: probe_sq,
        cq: probe_cq,
        remaining: 200,
        in_flight: false,
        submitted_at: 0,
        latencies: Vec::new(),
    };
    let mut now: Ns = 0;
    while probe.latencies.len() < 200 && now < 100 * MS {
        flooder.poll(now);
        probe.poll(now);
        router.poll(now);
        ssd.poll(now);
        now += 500;
    }
    assert_eq!(
        probe.latencies.len(),
        200,
        "probe starved: only {} round trips",
        probe.latencies.len()
    );
    let max = *probe.latencies.iter().max().unwrap();
    // Bounded per-queue draining admits the probe within one batch of the
    // flood, so its worst round trip is capped by the shard's in-service
    // backlog (~128 commands, a few hundred us). A starved queue pair
    // would instead wait out the flooder's whole 20 ms submission window.
    assert!(
        max < MS,
        "probe round trip {max}ns suggests the flooder starved the queue pair"
    );
    assert!(flooder.completed > 1_000, "flooder must actually flood");
}

/// Manual-polling variant of the rig builder: returns the single shard
/// instead of an executor.
fn build_sharded_rig_manual(
    shards: usize,
    queue_pairs: usize,
    cost: CostModel,
    telemetry: &Telemetry,
) -> (nvmetro::core::Router, SimSsd, Vec<(SqProducer, CqConsumer)>) {
    assert_eq!(shards, 1);
    let mut ssd = SimSsd::new(
        "ssd",
        SsdConfig {
            capacity_lbas: 1 << 20,
            cost: cost.clone(),
            move_data: false,
            seed: 11,
            ..Default::default()
        },
    );
    let mem = Arc::new(GuestMemory::new(1 << 20));
    let mut guest_ends = Vec::new();
    let mut queues = Vec::new();
    for _ in 0..queue_pairs {
        let (vsq_p, vsq_c) = SqPair::new(256);
        let (vcq_p, vcq_c) = CqPair::new(256);
        let (hsq_p, hsq_c) = SqPair::new(256);
        let (hcq_p, hcq_c) = CqPair::new(256);
        ssd.add_queue(hsq_c, hcq_p, mem.clone(), CompletionMode::Polled);
        queues.push(QueueBinding {
            vsqs: vec![vsq_c],
            vcqs: vec![vcq_p],
            hsq: hsq_p,
            hcq: hcq_c,
            kernel: None,
            notify: None,
            classifier: Classifier::Native(Box::new(AlwaysFast)),
        });
        guest_ends.push((vsq_p, vcq_c));
    }
    let engine = RouterBuilder::new("router")
        .cost(cost)
        .shards(shards)
        .table_capacity(2048)
        .telemetry(telemetry)
        .vm(EngineVm {
            vm_id: 0,
            mem,
            partition: Partition::whole(1 << 20),
            queues,
        })
        .build();
    let router = engine.into_shards().pop().unwrap();
    (router, ssd, guest_ends)
}
